"""Shared benchmark helpers, importable by name (not via ``conftest``).

Living in a uniquely named module keeps imports unambiguous when the
benchmark suite is collected together with ``tests/`` (both directories
carry a ``conftest.py``; importing either *as* ``conftest`` is a
collision waiting to happen).
"""

from __future__ import annotations

from repro.network.topology import build_deployment
from repro.workload.scenarios import Scenario


def tiny_bench_deployment(seed: int):
    """Module-level factory so benchmark scenarios pickle into the
    sharded runner's worker processes."""
    return build_deployment(24, 3, seed=seed)


def tiny_series_scenario() -> Scenario:
    """A small but complete scenario for serial-vs-sharded series
    benches: 2 measurement points x 4 distributed approaches."""
    return Scenario(
        key="tiny-bench",
        title="tiny bench scenario",
        deployment_factory=tiny_bench_deployment,
        paper_subscription_counts=(60, 120),
        attrs_min=3,
        attrs_max=5,
    )


def render_and_record(benchmark, figure) -> None:
    """Attach the reproduced series to the benchmark record and print it."""
    text = figure.render()
    print("\n" + text)
    benchmark.extra_info["figure"] = figure.figure_id
    benchmark.extra_info["xs"] = list(figure.xs)
    benchmark.extra_info["series"] = {k: list(v) for k, v in figure.series.items()}
