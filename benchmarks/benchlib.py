"""Shared benchmark helpers, importable by name (not via ``conftest``).

Living in a uniquely named module keeps imports unambiguous when the
benchmark suite is collected together with ``tests/`` (both directories
carry a ``conftest.py``; importing either *as* ``conftest`` is a
collision waiting to happen).
"""

from __future__ import annotations


def render_and_record(benchmark, figure) -> None:
    """Attach the reproduced series to the benchmark record and print it."""
    text = figure.render()
    print("\n" + text)
    benchmark.extra_info["figure"] = figure.figure_id
    benchmark.extra_info["xs"] = list(figure.xs)
    benchmark.extra_info["series"] = {k: list(v) for k, v in figure.series.items()}
