"""Benchmark-suite configuration.

Every figure benchmark runs the corresponding experiment harness once
(the underlying scenario runs are shared through the figures cache),
prints the same series the paper plots and asserts the *shape* claims:
who wins, in which direction, with sane margins.  Workload scale comes
from ``REPRO_SCALE`` (default 0.1 — node counts are the paper's, the
subscription axis is scaled).

Shared helpers live in :mod:`benchlib`; this file only defines fixtures.
"""

from __future__ import annotations

import pytest

from repro.workload.scenarios import default_scale


@pytest.fixture(scope="session")
def scale() -> float:
    return default_scale()
