"""Ablation benches for the design choices DESIGN.md calls out.

1. Set-filter error probability: the Section VI-F traffic/recall dial.
2. Binary-join false positives versus attribute count: the paper's
   explanation for the growing FSF-vs-multi-join margin ("binary joins
   are equivalent to multi-joins with two attributes, but become
   approximations for multi-joins over three attributes; the quality of
   the approximation degrades with increasing numbers of attributes").
"""

import pytest

from repro.baselines.multijoin import multijoin_approach
from repro.core.filter_split_forward import FSFConfig, filter_split_forward_approach
from repro.experiments.runner import REPLAY_START, run_point
from repro.metrics.oracle import compute_truth
from repro.network.topology import build_deployment
from repro.workload.scenarios import SMALL
from repro.workload.sensorscope import ReplayConfig, build_replay
from repro.workload.subscriptions import (
    SubscriptionWorkloadConfig,
    generate_subscriptions,
)


def _small_arena(n_subs):
    deployment = SMALL.deployment()
    replay = build_replay(deployment, SMALL.replay)
    workload = generate_subscriptions(
        deployment,
        replay.medians,
        SMALL.workload_config(n_subs),
        spreads=replay.spreads,
    )
    events = replay.shifted(REPLAY_START)
    truths = compute_truth(
        [p.subscription for p in workload], deployment, events
    )
    return deployment, events, workload, truths


def test_ablation_error_probability(benchmark):
    """Sweeping the probabilistic filter: exact filtering is the
    recall-optimal anchor; aggressive sampling trades recall for the
    same or less traffic, never more."""
    deployment, events, workload, truths = _small_arena(60)

    def sweep():
        rows = {}
        for label, config in (
            ("exact", FSFConfig(exact_filtering=True)),
            ("eps=0.05", FSFConfig(error_probability=0.05)),
            ("eps=0.5,gap=0.5", FSFConfig(error_probability=0.5, gap_fraction=0.5)),
        ):
            result = run_point(
                filter_split_forward_approach(config),
                deployment,
                workload,
                events,
                truths=truths,
            )
            rows[label] = result
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for label, r in rows.items():
        print(
            f"{label:16s} sub={r.subscription_load:6d} "
            f"evt={r.event_load:7d} recall={r.recall:.3f}"
        )
    assert rows["eps=0.5,gap=0.5"].recall <= rows["exact"].recall
    assert (
        rows["eps=0.5,gap=0.5"].subscription_load
        <= rows["exact"].subscription_load
    )
    benchmark.extra_info["recalls"] = {k: r.recall for k, r in rows.items()}


def test_ablation_false_positives_vs_attribute_count(benchmark):
    """Multi-join false-positive rate grows with the join width."""
    deployment = build_deployment(60, 10, seed=3)
    replay = build_replay(deployment, ReplayConfig(rounds=16, seed=3))

    def sweep():
        rates = {}
        for k in (2, 3, 5):
            workload = generate_subscriptions(
                deployment,
                replay.medians,
                SubscriptionWorkloadConfig(
                    n_subscriptions=40, attrs_min=k, attrs_max=k, seed=9
                ),
                spreads=replay.spreads,
            )
            events = replay.shifted(REPLAY_START)
            truths = compute_truth(
                [p.subscription for p in workload], deployment, events
            )
            result = run_point(
                multijoin_approach(), deployment, workload, events, truths=truths
            )
            rates[k] = result.false_positive_rate
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nmulti-join false-positive rate by attribute count: {rates}")
    # Binary joins are exact for 2 attributes, approximate beyond.
    assert rates[2] <= rates[3] + 0.02
    assert rates[5] > rates[2]
    benchmark.extra_info["fp_rates"] = rates
