"""Figures 4 and 5 — subscription and event load, small scale.

Paper claims: the naive approach is worst; operator placement and
multi-join reduce subscriptions via pair-wise coverage; FSF injects the
fewest subscriptions (~18% below the state of the art on average) and
beats the multi-join approach on event load by 10-30%.
"""

from repro.experiments import figures

from benchlib import render_and_record


def test_figure_4_subscription_load(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_4, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    last = {k: v[-1] for k, v in result.series.items()}
    assert last["fsf"] < last["operator_placement"] <= last["naive"]
    assert last["fsf"] < last["multijoin"]
    # FSF's set filtering beats pair-wise coverage by a real margin —
    # once there are enough overlapping subscriptions for unions to
    # subsume what no single subscription covers.  At the smoke preset
    # (a handful of subscriptions per group) the mosaic is too thin for
    # a 5% gap, so only the strict ordering is asserted there.
    margin = 0.95 if scale >= 0.1 else 1.0
    assert last["fsf"] <= margin * last["operator_placement"]


def test_figure_5_event_load(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_5, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    last = {k: v[-1] for k, v in result.series.items()}
    assert last["fsf"] < last["multijoin"] < last["naive"]
    assert last["operator_placement"] <= last["naive"]
    # Paper: 10-30% better than multi-join at small scale (we accept a
    # generous band — shapes, not absolutes).
    improvement = (last["multijoin"] - last["fsf"]) / last["multijoin"]
    assert improvement >= 0.08
