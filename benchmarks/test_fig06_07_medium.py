"""Figures 6 and 7 — subscription and event load, medium scale, with
the centralized comparison.

Paper claims: centralized has by far the lowest subscription load (it
unicasts once to the centre instead of splitting toward every sensor);
its event traffic has a large fixed component (every reading crosses
the network) that outweighs those gains; FSF beats the distributed
state of the art by 4.5-17.4% on subscriptions and the multi-join
approach by 48-55.9% on events.
"""

from repro.experiments import figures

from benchlib import render_and_record


def test_figure_6_subscription_load(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_6, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    last = {k: v[-1] for k, v in result.series.items()}
    assert last["centralized"] < last["fsf"], "centralized wins subscriptions"
    assert last["fsf"] < last["operator_placement"] <= last["naive"]


def test_figure_7_event_load(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_7, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    first = {k: v[0] for k, v in result.series.items()}
    last = {k: v[-1] for k, v in result.series.items()}
    # The fixed all-events-to-centre component dominates at low load ...
    assert first["centralized"] > first["fsf"]
    assert first["centralized"] > first["naive"]
    # ... and centralized stays above FSF throughout.
    assert last["centralized"] > last["fsf"]
    # FSF vs multi-join margin grows with 5-attribute subscriptions.
    improvement = (last["multijoin"] - last["fsf"]) / last["multijoin"]
    assert improvement >= 0.25
