"""Figures 8 and 9 — large scale #1: influence of the network size.

Paper claims: same orderings as the medium experiment; absolute totals
grow with network size (longer user-to-sensor paths); FSF's event-load
margin over multi-join widens (56-62%) because false positives travel
more links.
"""

from repro.experiments import figures

from benchlib import render_and_record


def test_figure_8_subscription_load(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_8, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    last = {k: v[-1] for k, v in result.series.items()}
    assert last["fsf"] < last["operator_placement"] <= last["naive"]
    # Larger network => more forwarded queries than the medium setting
    # at the same subscription count.
    medium = figures.figure_6(scale).series
    shared = min(len(medium["naive"]), len(result.series["naive"])) - 1
    assert result.series["naive"][shared] > medium["naive"][shared]


def test_figure_9_event_load(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_9, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    last = {k: v[-1] for k, v in result.series.items()}
    assert last["fsf"] < last["multijoin"] < last["naive"]
    improvement = (last["multijoin"] - last["fsf"]) / last["multijoin"]
    assert improvement >= 0.25
