"""Figures 10 and 11 — large scale #2: influence of the number of
distinct data sources (20 base-station groups instead of 10).

Paper claims: with subscriptions spread over twice the groups, the
candidate sets for subsumption shrink and subscription-load reduction
opportunities decrease; the event-load advantage of the
filter-split-forward phases persists regardless (54-68% over
multi-join).
"""

from repro.experiments import figures

from benchlib import render_and_record


def test_figure_10_subscription_load(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_10, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    last = {k: v[-1] for k, v in result.series.items()}
    assert last["fsf"] <= last["operator_placement"] <= last["naive"]
    # Reduced set-reduction opportunity: FSF's relative margin over
    # operator placement is smaller here than in large scale #1.
    l1 = figures.figure_8(scale).series
    margin_sources = 1 - last["fsf"] / last["operator_placement"]
    margin_network = 1 - l1["fsf"][-1] / l1["operator_placement"][-1]
    assert margin_sources <= margin_network + 0.02


def test_figure_11_event_load(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_11, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    last = {k: v[-1] for k, v in result.series.items()}
    assert last["fsf"] < last["multijoin"]
    assert last["fsf"] < last["naive"]
    # (The paper's multi-join-below-naive ordering needs its 100-900
    # subscription density; with 20 groups at scaled-down counts the
    # naive approach has little overlap to duplicate and the two curves
    # sit close together — see EXPERIMENTS.md, known deviations.)
    improvement = (last["multijoin"] - last["fsf"]) / last["multijoin"]
    assert improvement >= 0.25
