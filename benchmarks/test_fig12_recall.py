"""Figure 12 — end-user event recall of Filter-Split-Forward.

Paper claims: "The measured accuracy is 100% in some cases, and
generally around 98%.  However, for the small scale experiment and the
large scale experiment with small number of subscriptions, the recall
is around 93%" — all four settings stay comfortably above 90%, and the
deterministic competitors are at 100% by construction (asserted in the
unit suite).
"""

from repro.experiments import figures

from benchlib import render_and_record


def test_figure_12_recall(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_12, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    for setting, values in result.series.items():
        assert all(v >= 85.0 for v in values), (setting, values)
        assert max(values) >= 95.0, (setting, values)
    overall = [v for values in result.series.values() for v in values]
    assert sum(overall) / len(overall) >= 92.0
