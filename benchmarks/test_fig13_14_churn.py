"""Figures 13-14 — the churn-and-burst family (beyond the paper).

A two-day drifting, Pareto-bursty replay on the small-scale deployment
with 25% of the sensors leaving and rejoining mid-campaign.  Shape
claims asserted here:

* FSF still forwards no more event units than the multi-join baseline —
  the savings survive a live advertisement channel;
* re-flood traffic is genuinely measured (every approach pays the same
  retraction/re-flood bill, the flooding being approach-independent);
* the deterministic approaches hold (near-)100% recall against the
  churn-aware oracle: a credited trigger beats the retraction flood
  whenever they share a path, and the residual race (a closer trigger
  arriving after a farther retraction fenced its filler) is bounded by
  hop-difference x latency — a sliver of the delta_t window.
"""

from repro.experiments import figures
from repro.metrics.report import traffic_accounting

from benchlib import render_and_record


def test_figure_13_event_load_under_churn(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_13, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    fsf = result.series["fsf"]
    multijoin = result.series["multijoin"]
    assert all(f <= m for f, m in zip(fsf, multijoin)), (fsf, multijoin)
    # The advertisement channel was live: re-floods happened and the
    # accounting includes them.
    run = figures.scenario_series(figures.CHURN, scale)
    for key, results in run.results.items():
        totals = traffic_accounting(results)
        assert totals["reflood_units"] > 0, key
        assert totals["advertisement_units"] > totals["reflood_units"], key


def test_figure_14_recall_under_churn(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_14, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    for key in ("naive", "operator_placement", "multijoin"):
        # Not a hard 100: a trigger from a near host can, in principle,
        # reach a broker after a farther sensor's retraction fenced its
        # filler (a hops x latency window inside delta_t).  The current
        # scales measure 100.0; the floor only tolerates that race.
        assert all(v >= 99.0 for v in result.series[key]), key
    assert all(v >= 85.0 for v in result.series["fsf"])
