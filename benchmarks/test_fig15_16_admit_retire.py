"""Figures 15-16 — the query admit/retire family (beyond the paper).

The small-scale deployment under a two-day replay while queries keep
arriving (Poisson) and retiring (exponential holds), swept over the
admit rate, all five approaches.  Shape claims asserted here:

* the oracle fences every query's truth to its scheduled lifetime, so
  steady-state recall stays high: the deterministic approaches lose
  only the admission-lag / retirement-edge races (hops x latency
  slivers), FSF additionally its probabilistic filter margin;
* teardown traffic is genuinely measured and reported **separately**
  from registration traffic — the `UnsubscribeMessage` channel the
  lifecycle API added is visible at figure scale;
* more admissions cost more lifecycle traffic: the registration +
  teardown bill grows with the admit rate.
"""

from repro.experiments import figures

from benchlib import render_and_record


def test_figure_15_recall_under_admit_retire(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_15, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    for key in ("centralized", "naive", "operator_placement", "multijoin"):
        # Not a hard 100: a trigger published while the registration
        # flood is still placing the operator (admission lag) or just
        # before the teardown lands (retirement edge) can be missed —
        # both are hops x latency windows inside delta_t.
        assert all(v >= 90.0 for v in result.series[key]), key
    assert all(v >= 80.0 for v in result.series["fsf"])


def test_figure_16_traffic_split_under_admit_retire(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_16, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    for rate_idx in range(len(figures.ADMIT_RATE_AXIS)):
        for key, label in figures.APPROACH_LABELS.items():
            # Teardown happened everywhere, and is reported separately
            # from (and below) the registration lane.
            teardown = result.series[f"{label} - teardown"][rate_idx]
            registration = result.series[f"{label} - registration"][rate_idx]
            assert teardown > 0, (key, rate_idx)
            assert registration > teardown, (key, rate_idx)
    for key, label in figures.APPROACH_LABELS.items():
        lifecycle_bill = [
            result.series[f"{label} - registration"][i]
            + result.series[f"{label} - teardown"][i]
            for i in range(len(figures.ADMIT_RATE_AXIS))
        ]
        assert lifecycle_bill == sorted(lifecycle_bill), key
