"""Figures 17-18 — the unreliable-transport family (beyond the paper).

The small-scale deployment swept over per-link loss rates with the
reliability layer (acked control traffic + soft-state refresh) on and
off, all five approaches.  Shape claims asserted here:

* at zero loss every approach measures full recall in both modes —
  the fault lane and the refresh rounds perturb nothing by themselves;
* recall decays as loss grows: a complex match needs all of its
  participant events to survive independent multi-hop journeys;
* at 10% per-link loss, reliability-on recall strictly beats
  reliability-off for every approach (the acceptance criterion):
  protecting setup state alone recovers real recall, because a lost
  advertisement or operator poisons every later match while a lost
  event costs only itself;
* the reliability bill is real and loss-shaped: refresh units are a
  loss-independent floor, retransmissions grow with the drop rate.
"""

from repro.experiments import figures

from benchlib import render_and_record


def test_figure_17_recall_vs_loss(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_17, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    assert result.xs[0] == 0.0 and result.xs[-1] == 0.1
    for key, label in figures.APPROACH_LABELS.items():
        reliable = result.series[f"{label} (reliable)"]
        best_effort = result.series[f"{label} (no reliability)"]
        # Clean zero-loss baseline in both modes.
        assert reliable[0] == 100.0, key
        assert best_effort[0] == 100.0, key
        # The acceptance criterion, at the endpoint of the loss axis.
        assert reliable[-1] > best_effort[-1], (key, reliable, best_effort)
        # Loss genuinely hurts: the endpoint sits below the baseline.
        assert reliable[-1] < reliable[0], key


def test_figure_18_reliability_overhead_vs_loss(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_18, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    for key, label in figures.APPROACH_LABELS.items():
        refresh = result.series[f"{label} - refresh"]
        retransmit = result.series[f"{label} - retransmit"]
        # The refresh floor is paid even on a perfect network...
        assert all(v > 0 for v in refresh), key
        # ...while retransmissions are loss-triggered: none at zero
        # loss, some at the lossy end of the axis.
        assert retransmit[0] == 0.0, key
        assert retransmit[-1] > 0.0, key
