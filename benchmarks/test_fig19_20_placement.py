"""Figures 19-20 — the placement-compiler family (beyond the paper).

The tiered small-scale deployment (motes at the edge, base-station
group heads, a cloud uplink on the backbone) under a skewed
cross-group workload: every query correlates a wide-filter group — a
partial-match flood — with a narrow one.  Two lanes per approach: the
paper heuristic (split at the natural divergence node) vs the
cost-model placement compiler (split delayed toward the flooding
group's head).  Shape claims asserted here:

* the acceptance criterion: at the largest measured point, the
  compiled lane's *total* message units strictly undercut the paper
  heuristic's for every approach in the family;
* the safety half: every lane — both modes, every approach — holds
  100% recall (FSF runs with exact filtering here), so the traffic
  win is free of result loss.
"""

from repro.experiments import figures

from benchlib import render_and_record


def _family_labels(result):
    labels = set()
    for name in result.series:
        label, _, mode = name.rpartition(" (")
        labels.add(label)
    return sorted(labels)


def test_figure_19_total_traffic_compiled_vs_paper(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_19, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    for label in _family_labels(result):
        paper = result.series[f"{label} (paper)"]
        compiled = result.series[f"{label} (compiled)"]
        # The acceptance criterion, at the end of the query axis.
        assert compiled[-1] < paper[-1], (label, compiled, paper)


def test_figure_20_recall_compiled_vs_paper(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_20, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    for name, lane in result.series.items():
        assert all(v == 100.0 for v in lane), (name, lane)
