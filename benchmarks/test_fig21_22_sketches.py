"""Figures 21-22 — the approximate-answer family (beyond the paper).

A single-attribute workload where every query is a sketch-eligible
single-slot range filter, over a long replay (the regime where
bounded-size digests beat raw shipping).  The five exact approaches
form the traffic frontier; one approximate lane per q-digest
resolution ``k`` answers the same queries from merged broker digests
pushed along reverse-ad-path trees.  Shape claims asserted here:

* the acceptance criterion: at the largest measured point, every
  approximate lane spends strictly fewer total message units than
  every exact approach — including centralized raw shipping;
* the certificate half: every approximate answer's observed error
  stays within the deterministic q-digest guarantee (zero bound
  violations at every measured point), so the traffic win carries a
  machine-checked accuracy contract rather than a hope.
"""

from repro.experiments import figures

from benchlib import render_and_record


def _split_lanes(result):
    exact, approx = {}, {}
    for name, values in result.series.items():
        (approx if name.startswith("Approximate lane") else exact)[name] = values
    return exact, approx


def test_figure_21_approximate_lanes_undercut_exact_frontier(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_21, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    exact, approx = _split_lanes(result)
    assert approx and exact
    # The acceptance criterion, at the end of the subscription axis:
    # every approximate lane strictly under every exact approach.
    for lane_name, lane in approx.items():
        for exact_name, frontier in exact.items():
            assert lane[-1] < frontier[-1], (lane_name, exact_name)


def test_figure_22_certified_error_within_guarantee(benchmark, scale):
    result = benchmark.pedantic(
        figures.figure_22, args=(scale,), rounds=1, iterations=1
    )
    render_and_record(benchmark, result)
    for k in figures.SKETCH_K_AXIS:
        runs = figures.scenario_series(
            figures.sketches_variant(k), scale
        ).results["fsf"]
        for run in runs:
            # Every measured point answered queries, and every
            # certificate held: observed error within the q-digest
            # bound, bracket containing the truth.
            assert run.approx_queries > 0, (k, run.subscriptions)
            assert run.approx_bound_violations == 0, (k, run.subscriptions)
    assert "0 violations" in result.notes
