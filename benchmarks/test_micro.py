"""Micro-benchmarks of the hot inner loops (real repeated timing)."""

import numpy as np

from repro.metrics.oracle import EventIndex
from repro.model import (
    IdentifiedSubscription,
    Interval,
    Location,
    SimpleEvent,
    matches_involving,
    operator_from_identified,
)
from repro.network.eventstore import EventStore
from repro.subsumption import ProbabilisticSetFilter


def _operator(width=5):
    ranges = {f"d{i}": ("t", 0.0, 50.0) for i in range(width)}
    return operator_from_identified(
        IdentifiedSubscription.from_ranges("s", ranges, 5.0), "n"
    )


def _events(n_per_sensor=50, width=5):
    rng = np.random.default_rng(0)
    events = []
    for i in range(width):
        for seq in range(n_per_sensor):
            events.append(
                SimpleEvent(
                    f"d{i}",
                    "t",
                    Location(0, 0),
                    float(rng.uniform(0, 60)),
                    10.0 * seq + float(rng.uniform(0, 4)),
                    seq,
                )
            )
    return events


def test_bench_setfilter_decide(benchmark):
    rng = np.random.default_rng(1)
    f = ProbabilisticSetFilter(0.01, 0.05, rng=rng)
    target = tuple(Interval(10, 40) for _ in range(5))
    cover = [
        tuple(Interval(float(lo), float(lo) + 35.0) for lo in rng.uniform(0, 15, 5))
        for _ in range(30)
    ]
    benchmark(f.is_subsumed, target, cover)


def test_bench_setfilter_product_mode(benchmark):
    rng = np.random.default_rng(2)
    f = ProbabilisticSetFilter(0.01, 0.05, rng=rng)
    target = tuple(Interval(10, 40) for _ in range(5))
    per_dim = [
        [Interval(float(lo), float(lo) + 20.0) for lo in rng.uniform(0, 25, 12)]
        for _ in range(5)
    ]
    benchmark(f.is_product_subsumed, target, per_dim)


def test_bench_matches_involving(benchmark):
    op = _operator()
    idx = EventIndex(_events())
    probe = SimpleEvent("d0", "t", Location(0, 0), 25.0, 255.0, 99)
    benchmark(matches_involving, op, idx, probe)


def test_bench_eventstore_insert_and_query(benchmark):
    events = _events(n_per_sensor=100)

    def run():
        store = EventStore(validity=50.0)
        now = 0.0
        for e in events:
            now = max(now, e.timestamp)
            store.add(e, now)
        return sum(
            len(store.events_for_sensor("d0", t, t + 5.0)) for t in range(0, 900, 10)
        )

    benchmark(run)


def test_bench_operator_coverage_check(benchmark):
    wide = _operator()
    narrow = operator_from_identified(
        IdentifiedSubscription.from_ranges(
            "n", {f"d{i}": ("t", 10.0, 40.0) for i in range(5)}, 5.0
        ),
        "n",
    )
    benchmark(wide.covers, narrow)
