"""Tables I and II plus the Figure 3 walkthrough."""

from repro.experiments.tables import (
    render_table_2,
    render_table_i,
    run_fig3_walkthrough,
)


def test_table1(benchmark):
    """Table I: the subsumption example, checked end to end — s3 is
    jointly subsumed and generates zero subscription traffic."""
    walkthrough = benchmark.pedantic(
        run_fig3_walkthrough, kwargs={"exact_filtering": True}, rounds=1, iterations=1
    )
    print("\n" + render_table_i())
    print(walkthrough.render())
    assert walkthrough.covered["n6"] == ["s3[a,b,c]"]
    assert walkthrough.subscription_units == 8
    benchmark.extra_info["subscription_units"] = walkthrough.subscription_units


def test_table2(benchmark):
    """Table II: the approach feature matrix, generated from code."""
    text = benchmark.pedantic(render_table_2, rounds=1, iterations=1)
    print("\n" + text)
    for fragment in (
        "Centralized",
        "Naive approach",
        "Distributed operator placement",
        "Distributed multi-join",
        "Filter-Split-Forward",
        "Set filtering",
        "Binary joins",
        "Per neighbor",
        "Full result sets",
    ):
        assert fragment in text
