#!/usr/bin/env python
"""Head-to-head comparison of the five approaches on one workload.

Runs the paper's small-scale deployment (60 nodes, 10 base stations)
with one batch of subscriptions under each of: centralized, naive,
distributed operator placement, distributed multi-join, and
Filter-Split-Forward — then prints the Section VI metrics: subscription
load, publication (event) load, end-user recall and the multi-join
baseline's false-positive rate.

Run:  python examples/approach_comparison.py [n_subscriptions]
"""

import sys

from repro.experiments.runner import REPLAY_START, run_point
from repro.metrics.oracle import compute_truth
from repro.protocols.registry import all_approaches
from repro.workload.scenarios import SMALL
from repro.workload.sensorscope import build_replay
from repro.workload.subscriptions import generate_subscriptions

n_subs = int(sys.argv[1]) if len(sys.argv) > 1 else 60

deployment = SMALL.deployment()
replay = build_replay(deployment, SMALL.replay)
workload = generate_subscriptions(
    deployment, replay.medians, SMALL.workload_config(n_subs), spreads=replay.spreads
)
events = replay.shifted(REPLAY_START)
truths = compute_truth([p.subscription for p in workload], deployment, events)
total_true = sum(t.n_instances for t in truths.values())

print(f"small-scale deployment: {deployment.n_nodes} nodes, "
      f"{len(deployment.sensors)} sensors, {n_subs} subscriptions, "
      f"{replay.n_events} replayed events, {total_true} true match instances\n")

header = f"{'approach':32s} {'sub load':>9s} {'event load':>11s} {'recall':>7s} {'FP rate':>8s}"
print(header)
print("-" * len(header))
for key, approach in all_approaches().items():
    result = run_point(approach, deployment, workload, events, truths=truths)
    print(
        f"{approach.name:32s} {result.subscription_load:9d} "
        f"{result.event_load:11d} {result.recall:7.3f} "
        f"{result.false_positive_rate:8.3f}"
    )

print(
    "\nReading the table (paper, Section VI): the naive approach pays for "
    "every overlapping result stream; operator placement trims covered "
    "operators but still duplicates result sets; the multi-join baseline "
    "shares streams but hauls binary-join false positives to the user; "
    "Filter-Split-Forward shares streams *and* forwards only full "
    "correlations, at the price of a (small) probabilistic recall loss. "
    "The centralized scheme wins on subscription traffic and loses on "
    "event traffic — every reading crosses the network to the centre."
)
