#!/usr/bin/env python
"""The paper's Table I / Figure 3 walkthrough, end to end.

Reproduces the illustrative example of Section V-B: three subscriptions
over sensors a, b, c registered at node n6 of a 6-node network.  s1 and
s2 are placed as operators along the reverse advertisement paths; s3 —
although no single subscription covers it — is jointly subsumed by
{s1, s2} and generates *zero* subscription traffic.  The event phase
then shows that s3's user still receives its matches (regenerated from
the covering operators' streams).

Run:  python examples/fig3_walkthrough.py
"""

from repro.experiments.tables import (
    render_table_i,
    run_fig3_walkthrough,
    table_i_subscriptions,
)
from repro.model import SimpleEvent

print(render_table_i())
print()

walkthrough = run_fig3_walkthrough(exact_filtering=True)
print(walkthrough.render())
network = walkthrough.network

# --------------------------------------------------------------------------
# Event phase, round 1: a=60, b=25, c=10 — matches s1, s2 AND s3.
# s3 was never forwarded, yet its user reconstructs the full complex
# event from the streams s1 and s2 already pull to n6.
# --------------------------------------------------------------------------
deployment = network.deployment


def publish_round(readings: dict[str, float], seq: int) -> None:
    t0 = network.sim.now + 100.0
    for i, (sensor_id, value) in enumerate(sorted(readings.items())):
        placement = deployment.sensor_by_id(sensor_id)
        event = SimpleEvent(
            sensor_id, "t", placement.location, value, t0 + 0.5 * i, seq=seq
        )
        network.sim.at(
            event.timestamp,
            lambda e=event, p=placement: network.publish(p.node_id, e),
        )
    network.run_to_quiescence()


def report(title: str) -> None:
    print(f"\n{title}")
    for sub in table_i_subscriptions():
        delivered = network.delivery.delivered(sub.sub_id)
        got = sorted(f"{e.sensor_id}={e.value:g}" for e in delivered.values())
        print(f"  {sub.sub_id} received: {got}")


publish_round({"a": 60.0, "b": 25.0, "c": 10.0}, seq=0)
report("round 1 (a=60, b=25, c=10 — b inside both s1 and s2):")
print(
    "  -> s3 reconstructs its full complex event although it generated "
    "zero subscription traffic:\n     its members ride the result streams "
    "of the covering operators s1 and s2."
)

# --------------------------------------------------------------------------
# Round 2: a=61, b=32, c=11.  b=32 lies outside s1 (10..30), so the pair
# (a, b) matches no *forwarded* operator — 'a' never leaves its source and
# s3 misses this instance.  This is precisely the (rare) coverage gap the
# paper's recall experiment (Fig. 12) quantifies: joint coverage of the
# value space does not always cover every correlation context.
# --------------------------------------------------------------------------
publish_round({"a": 61.0, "b": 32.0, "c": 11.0}, seq=1)
report("round 2 (a=61, b=32, c=11 — b outside s1):")
print(
    "  -> s2 still matches (b, c); s3's instance is lost because no "
    "forwarded operator pulls 'a'\n     in this context — the structural "
    "part of Filter-Split-Forward's <100% recall (Fig. 12)."
)
