#!/usr/bin/env python
"""Quickstart: a Filter-Split-Forward network in ~40 lines.

Builds a small grouped deployment, registers one multi-sensor
subscription, publishes a round of correlated readings and shows the
complex event arriving at the user — plus the traffic the network spent
doing it.

Run:  python examples/quickstart.py
"""

from repro import IdentifiedSubscription, SimpleEvent, quick_network

# A 24-node overlay: 3 base-station groups x 5 sensors + 9 relays.
# Sensors are already attached and advertised.
network, deployment = quick_network(n_nodes=24, n_groups=3, seed=11)

# Pick group 0's ambient- and surface-temperature sensors and subscribe
# to the correlated condition "ambient in [-5, 5] AND surface in [-10, 10]
# within delta_t = 5s", from a user on relay r2.
group = deployment.sensors_of_group(0)
ambient = next(s for s in group if s.attribute.name == "ambient_temperature")
surface = next(s for s in group if s.attribute.name == "surface_temperature")

subscription = IdentifiedSubscription.from_ranges(
    "freeze-watch",
    {
        ambient.sensor_id: ("ambient_temperature", -5.0, 5.0),
        surface.sensor_id: ("surface_temperature", -10.0, 10.0),
    },
    delta_t=5.0,
)
network.inject_subscription("r2", subscription)
network.run_to_quiescence()
print(f"subscription placed; operator units forwarded: "
      f"{network.meter.subscription_units}")

# One publication round: both sensors report within the correlation
# window (timestamps 100.0 and 101.5, well inside delta_t).
t0 = network.sim.now + 100.0
for placement, value, offset in ((ambient, 1.5, 0.0), (surface, -3.0, 1.5)):
    event = SimpleEvent(
        placement.sensor_id,
        placement.attribute.name,
        placement.location,
        value,
        timestamp=t0 + offset,
        seq=0,
    )
    network.sim.at(event.timestamp, lambda e=event, p=placement: network.publish(p.node_id, e))
network.run_to_quiescence()

delivered = network.delivery.delivered("freeze-watch")
print(f"user received {len(delivered)} simple events "
      f"({network.delivery.complex_deliveries['freeze-watch']} complex deliveries):")
for key, event in sorted(delivered.items()):
    print(f"  {event}")
print(f"event units on the wire: {network.meter.event_units}")

# A reading outside the subscribed range is filtered at the source: it
# never crosses a link.
before = network.meter.event_units
cold = SimpleEvent(
    ambient.sensor_id, "ambient_temperature", ambient.location, -25.0,
    timestamp=network.sim.now + 50.0, seq=1,
)
network.sim.at(cold.timestamp, lambda: network.publish(ambient.node_id, cold))
network.run_to_quiescence()
print(f"non-matching reading cost {network.meter.event_units - before} units "
      "(dropped at the sensor's node)")
