#!/usr/bin/env python
"""Quickstart: a live query session in ~30 lines.

Creates a Filter-Split-Forward session on a small deployment, submits
one correlated query through the fluent builder, pushes a round of
readings and reads the structured matches off the query handle — plus
the traffic the network spent doing it, and the cancel() that retires
the query again.

Run:  python examples/quickstart.py
"""

from repro import Query, Session

# A 24-node overlay: 3 base-station groups x 5 sensors + 9 relays.
# Sensors are attached and advertised; the session owns the clock.
session = Session.create(approach="fsf", nodes=24, groups=3, seed=11)

# Pick group 0's ambient- and surface-temperature sensors and subscribe
# to the correlated condition "ambient in [-5, 5] AND surface in [-10, 10]
# within delta_t = 5s", from a user on relay r2.
group = session.deployment.sensors_of_group(0)
ambient = next(s for s in group if s.attribute.name == "ambient_temperature")
surface = next(s for s in group if s.attribute.name == "surface_temperature")

handle = session.submit(
    Query()
    .named("freeze-watch")
    .where(ambient.sensor_id, -5.0, 5.0)
    .where(surface.sensor_id, -10.0, 10.0)
    .within(5.0),
    at="r2",
)
print(f"query placed; operator units forwarded: "
      f"{handle.stats().registration_units}")

# One publication round, pushed straight into the session: both sensors
# report within the correlation window (1.5s apart, well inside delta_t).
t0 = session.now + 100.0
session.ingest(ambient.sensor_id, 1.5, timestamp=t0)
session.ingest(surface.sensor_id, -3.0, timestamp=t0 + 1.5)
session.drain()

for match in handle.matches():
    print(f"user received a complex event at t={match.timestamp:g}:")
    for event in match.events:
        print(f"  {event}")
print(f"event units on the wire: {session.traffic.event_units}")

# A reading outside the subscribed range is filtered at the source: it
# never crosses a link.
before = session.traffic.event_units
session.ingest(ambient.sensor_id, -25.0, timestamp=session.now + 50.0)
session.drain()
print(f"non-matching reading cost {session.traffic.event_units - before} units "
      "(dropped at the sensor's node)")

# Retire the query: the cancellation retraces the placement paths and
# leaves the network as if the query never existed.
handle.cancel()
print(f"query cancelled for {handle.stats().cancellation_units} units; "
      f"active queries: {session.active_queries()}")
