#!/usr/bin/env python
"""The traffic/recall trade-off of the probabilistic set filter.

Section VI-F: "Reducing either the traffic, either the number of missed
events creates a tradeoff, upon which the user has to decide."  This
example sweeps the set filter's error probability (and the coarsening
mitigation the paper sketches) on one workload and prints the frontier:
subscription load and event load versus end-user recall.

Run:  python examples/recall_tradeoff.py
"""

from repro.core.filter_split_forward import FSFConfig, filter_split_forward_approach
from repro.experiments.runner import REPLAY_START, run_point
from repro.metrics.oracle import compute_truth
from repro.workload.scenarios import SMALL
from repro.workload.sensorscope import build_replay
from repro.workload.subscriptions import generate_subscriptions

N_SUBS = 80

deployment = SMALL.deployment()
replay = build_replay(deployment, SMALL.replay)
workload = generate_subscriptions(
    deployment, replay.medians, SMALL.workload_config(N_SUBS), spreads=replay.spreads
)
events = replay.shifted(REPLAY_START)
truths = compute_truth([p.subscription for p in workload], deployment, events)

print(f"{N_SUBS} subscriptions on the small-scale deployment; "
      f"{sum(t.n_instances for t in truths.values())} true instances\n")
header = (f"{'configuration':42s} {'sub load':>9s} {'event load':>11s} "
          f"{'recall':>7s}")
print(header)
print("-" * len(header))

configs = [
    ("exact set filtering (no sampling error)", FSFConfig(exact_filtering=True)),
    ("error probability 0.01", FSFConfig(error_probability=0.01)),
    ("error probability 0.05 (default)", FSFConfig(error_probability=0.05)),
    ("error probability 0.25", FSFConfig(error_probability=0.25)),
    ("aggressive: error 0.5, gap 0.5 (2 samples)", FSFConfig(error_probability=0.5, gap_fraction=0.5)),
    ("error probability 0.25 + coarsening 0.5", FSFConfig(error_probability=0.25, coarsening=0.5)),
    ("coarsening 1.0 (wider filters)", FSFConfig(coarsening=1.0)),
]
for label, config in configs:
    approach = filter_split_forward_approach(config)
    result = run_point(approach, deployment, workload, events, truths=truths)
    print(f"{label:42s} {result.subscription_load:9d} "
          f"{result.event_load:11d} {result.recall:7.3f}")

print(
    "\nLower error probabilities spend more samples and filter less "
    "aggressively wrongly (higher recall); coarsening widens every "
    "forwarded range so covered gaps shrink, recovering recall at the "
    "price of extra event traffic — exactly the dial the paper describes."
)
