#!/usr/bin/env python
"""The traffic/recall trade-off of the probabilistic set filter.

Section VI-F: "Reducing either the traffic, either the number of missed
events creates a tradeoff, upon which the user has to decide."  This
example sweeps the set filter's error probability (and the coarsening
mitigation the paper sketches) on one workload and prints the frontier:
subscription load and event load versus end-user recall.

Each configuration runs as one live :class:`repro.api.Session`: the
generated queries are submitted through the facade, the replayed
campaign is pushed with ``ingest_events``, and recall comes from the
session's own oracle — no agenda lambdas, no raw delivery dicts.

Run:  python examples/recall_tradeoff.py
"""

from repro.api import Session
from repro.core.filter_split_forward import FSFConfig, filter_split_forward_approach
from repro.experiments.runner import REPLAY_START
from repro.metrics.recall import measure_recall
from repro.workload.scenarios import SMALL
from repro.workload.sensorscope import build_replay
from repro.workload.subscriptions import generate_subscriptions

N_SUBS = 80

deployment = SMALL.deployment()
replay = build_replay(deployment, SMALL.replay)
workload = generate_subscriptions(
    deployment, replay.medians, SMALL.workload_config(N_SUBS), spreads=replay.spreads
)


def run_config(config: FSFConfig, truths=None):
    """One full measurement point on a fresh session.

    Every configuration replays at the same fixed virtual start time
    (``REPLAY_START`` sits far beyond any registration activity), so
    event timestamps — and therefore the oracle ground truth, which
    only depends on the queries and the replay — are identical across
    configurations; the first session's ``session.truth`` is shared
    instead of being recomputed seven times.
    """
    session = Session.create(
        approach=filter_split_forward_approach(config), deployment=deployment
    )
    for placed in workload:
        session.submit(placed.subscription, at=placed.node_id)
    after_subs = session.traffic.snapshot()
    events = replay.shifted(REPLAY_START)
    session.ingest_events(events)
    session.drain()
    traffic = session.traffic.snapshot().minus(after_subs)
    if truths is None:
        truths = session.truth(events)
    report = measure_recall(truths, session.delivery)
    return after_subs.subscription_units, traffic.event_units, report, truths


configs = [
    ("exact set filtering (no sampling error)", FSFConfig(exact_filtering=True)),
    ("error probability 0.01", FSFConfig(error_probability=0.01)),
    ("error probability 0.05 (default)", FSFConfig(error_probability=0.05)),
    ("error probability 0.25", FSFConfig(error_probability=0.25)),
    ("aggressive: error 0.5, gap 0.5 (2 samples)", FSFConfig(error_probability=0.5, gap_fraction=0.5)),
    ("error probability 0.25 + coarsening 0.5", FSFConfig(error_probability=0.25, coarsening=0.5)),
    ("coarsening 1.0 (wider filters)", FSFConfig(coarsening=1.0)),
]

truths = None
rows = []
for label, config in configs:
    sub_load, event_load, report, truths = run_config(config, truths)
    rows.append((label, sub_load, event_load, report))

print(f"{N_SUBS} subscriptions on the small-scale deployment; "
      f"{rows[0][3].true_instances} true instances\n")
header = (f"{'configuration':42s} {'sub load':>9s} {'event load':>11s} "
          f"{'recall':>7s}")
print(header)
print("-" * len(header))
for label, sub_load, event_load, report in rows:
    print(f"{label:42s} {sub_load:9d} {event_load:11d} {report.recall:7.3f}")

print(
    "\nLower error probabilities spend more samples and filter less "
    "aggressively wrongly (higher recall); coarsening widens every "
    "forwarded range so covered gaps shrink, recovering recall at the "
    "price of extra event traffic — exactly the dial the paper describes."
)
