#!/usr/bin/env python
"""Swiss-Experiment-style environmental monitoring with *abstract*
queries.

The paper's motivating scenario: heterogeneous alpine deployments run
by different organisations, users subscribing to *regions* rather than
named sensors — "one or more sensors within a particular spatial
region".  This example opens a live session on a multi-site deployment,
submits an abstract query (attribute types + region + spatial
correlation distance delta_l) through the fluent builder and shows it
being resolved against flooded advertisements, placed, and matched —
including the delta_l rule that correlates only co-located readings.

Run:  python examples/swiss_experiment.py
"""

from repro import Query, Session
from repro.model import bounding_rect

session = Session.create(approach="fsf", nodes=30, groups=4, seed=3)

# ---------------------------------------------------------------------------
# An abstract query: "storm watch" — high wind speed together with a
# humidity surge, anywhere inside the rectangle around station 1's site,
# readings at most 200 m apart (delta_l) and 5 s apart (delta_t).
# ---------------------------------------------------------------------------
site = session.deployment.sensors_of_group(1)
region = bounding_rect((s.location for s in site), margin=3.0)

storm_watch = session.submit(
    Query()
    .named("storm-watch")
    .where("wind_speed", 12.0, 40.0)
    .where("relative_humidity", 85.0, 100.0)
    .within(5.0)
    .near(region, delta_l=200.0),
    at="r1",
)

wind = next(s for s in site if s.attribute.name == "wind_speed")
humid = next(s for s in site if s.attribute.name == "relative_humidity")
print("abstract query resolved against advertised sensors:")
print(f"  wind_speed        -> {wind.sensor_id} @ {wind.location}")
print(f"  relative_humidity -> {humid.sensor_id} @ {humid.location}")
print(f"  operator units forwarded: {storm_watch.stats().registration_units}")

# ---------------------------------------------------------------------------
# A storm front passes the site: wind spike and humidity surge 2 s apart.
# ---------------------------------------------------------------------------
t0 = session.now + 60.0
session.ingest(wind.sensor_id, 17.5, timestamp=t0)
session.ingest(humid.sensor_id, 91.0, timestamp=t0 + 2.0)
session.drain()

for match in storm_watch.matches():
    print(f"\nstorm watch fired with {len(match)} correlated readings:")
    for event in match.events:
        print(f"  {event}")

# ---------------------------------------------------------------------------
# A matching wind spike at a *different* site does not correlate: outside
# the query's region, it is dropped at its source.
# ---------------------------------------------------------------------------
other = session.deployment.sensors_of_group(3)
far_wind = next(s for s in other if s.attribute.name == "wind_speed")
before = session.traffic.event_units
session.ingest(far_wind.sensor_id, 20.0, timestamp=session.now + 30.0)
session.drain()
print(f"\nwind spike at a distant site cost "
      f"{session.traffic.event_units - before} event units (out of region)")
