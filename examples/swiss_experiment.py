#!/usr/bin/env python
"""Swiss-Experiment-style environmental monitoring with *abstract*
subscriptions.

The paper's motivating scenario: heterogeneous alpine deployments run
by different organisations, users subscribing to *regions* rather than
named sensors — "one or more sensors within a particular spatial
region".  This example builds a multi-site deployment, registers an
abstract subscription (attribute types + region + spatial correlation
distance delta_l) and shows it being resolved against flooded
advertisements, placed, and matched — including the delta_l rule that
correlates only co-located readings.

Run:  python examples/swiss_experiment.py
"""

from repro import (
    AbstractSubscription,
    SimpleEvent,
    quick_network,
)
from repro.model import RectRegion, Interval, bounding_rect

network, deployment = quick_network(n_nodes=30, n_groups=4, seed=3)

# ---------------------------------------------------------------------------
# An abstract subscription: "storm watch" — high wind speed together with a
# humidity surge, anywhere inside the rectangle around station 1's site,
# readings at most 200 m apart (delta_l) and 5 s apart (delta_t).
# ---------------------------------------------------------------------------
site = deployment.sensors_of_group(1)
region = bounding_rect((s.location for s in site), margin=3.0)

storm_watch = AbstractSubscription.from_ranges(
    "storm-watch",
    {"wind_speed": (12.0, 40.0), "relative_humidity": (85.0, 100.0)},
    region=region,
    delta_t=5.0,
    delta_l=200.0,
)
network.inject_subscription("r1", storm_watch)
network.run_to_quiescence()

wind = next(s for s in site if s.attribute.name == "wind_speed")
humid = next(s for s in site if s.attribute.name == "relative_humidity")
print("abstract subscription resolved against advertised sensors:")
print(f"  wind_speed        -> {wind.sensor_id} @ {wind.location}")
print(f"  relative_humidity -> {humid.sensor_id} @ {humid.location}")
print(f"  operator units forwarded: {network.meter.subscription_units}")

# ---------------------------------------------------------------------------
# A storm front passes the site: wind spike and humidity surge 2 s apart.
# ---------------------------------------------------------------------------
t0 = network.sim.now + 60.0
readings = [
    SimpleEvent(wind.sensor_id, "wind_speed", wind.location, 17.5, t0, 0),
    SimpleEvent(humid.sensor_id, "relative_humidity", humid.location, 91.0, t0 + 2.0, 0),
]
for placement, event in zip((wind, humid), readings):
    network.sim.at(event.timestamp, lambda e=event, p=placement: network.publish(p.node_id, e))
network.run_to_quiescence()

delivered = network.delivery.delivered("storm-watch")
print(f"\nstorm watch fired with {len(delivered)} correlated readings:")
for _, event in sorted(delivered.items()):
    print(f"  {event}")

# ---------------------------------------------------------------------------
# A matching wind spike at a *different* site does not correlate: outside
# the subscription's region, it is dropped at its source.
# ---------------------------------------------------------------------------
other = deployment.sensors_of_group(3)
far_wind = next(s for s in other if s.attribute.name == "wind_speed")
before = network.meter.event_units
stray = SimpleEvent(
    far_wind.sensor_id, "wind_speed", far_wind.location, 20.0,
    network.sim.now + 30.0, 1,
)
network.sim.at(stray.timestamp, lambda: network.publish(far_wind.node_id, stray))
network.run_to_quiescence()
print(f"\nwind spike at a distant site cost "
      f"{network.meter.event_units - before} event units (out of region)")
