"""repro — reproduction of *Continuous Query Evaluation over Distributed
Sensor Networks* (Jurca, Michel, Herrmann, Aberer — ICDE 2010).

A publish/subscribe system for continuous multi-join queries over
distributed sensor data streams, processed by an acyclic overlay of
nodes with local knowledge only.  The package provides:

* :mod:`repro.model` — the data model: events, advertisements, filters,
  identified/abstract subscriptions, correlation operators, matching;
* :mod:`repro.sim` — a deterministic discrete-event simulation kernel;
* :mod:`repro.network` — topology, links, node storage, traffic meters;
* :mod:`repro.subsumption` — pair-wise, exact and probabilistic
  set-subsumption checking;
* :mod:`repro.core` — the paper's Filter-Split-Forward protocol
  (Algorithms 1-5);
* :mod:`repro.baselines` — centralized, naive, distributed operator
  placement and distributed multi-join comparison systems;
* :mod:`repro.workload` — SensorScope-style synthetic replay, the
  Pareto subscription generator and declarative workload programs
  (replay + sensor churn + Poisson query admit/retire in one picklable
  value, executed through the session facade);
* :mod:`repro.metrics` / :mod:`repro.experiments` — oracle, recall,
  traffic metrics and the harness regenerating every table and figure;
* :mod:`repro.api` — the live query-session facade (fluent ``Query``
  builder, push-based ``Session``, ``QueryHandle`` lifecycle handles
  with cancellation) — the public way to use all of the above.

Quickstart::

    from repro import Query, Session
    session = Session.create(approach="fsf")     # FSF on a small overlay
    handle = session.submit(Query().where(...).within(5.0))
    session.ingest("s0001", 1.5)
    session.drain()
    handle.matches()
    handle.cancel()

See ``examples/quickstart.py`` for a complete runnable tour and
``docs/API.md`` for the session API reference.
"""

from __future__ import annotations

from .api import ComplexMatch, Query, QueryError, QueryHandle, QueryStats, Session
from .core import FSFConfig, FilterSplitForwardNode, filter_split_forward_approach
from .deprecation import ReproDeprecationWarning, warn_deprecated
from .model import (
    AbstractSubscription,
    Advertisement,
    ComplexEvent,
    IdentifiedSubscription,
    Interval,
    Location,
    SimpleEvent,
    SimpleFilter,
)
from .network import Deployment, Network, build_deployment
from .sim import Simulator
from .workload.program import (
    QueryLifecycleConfig,
    WorkloadProgram,
    execute_program,
)

__version__ = "1.0.0"

__all__ = [
    "AbstractSubscription",
    "Advertisement",
    "ComplexEvent",
    "ComplexMatch",
    "Deployment",
    "FSFConfig",
    "FilterSplitForwardNode",
    "IdentifiedSubscription",
    "Interval",
    "Location",
    "Network",
    "Query",
    "QueryError",
    "QueryHandle",
    "QueryLifecycleConfig",
    "QueryStats",
    "ReproDeprecationWarning",
    "Session",
    "SimpleEvent",
    "SimpleFilter",
    "Simulator",
    "WorkloadProgram",
    "build_deployment",
    "execute_program",
    "filter_split_forward_approach",
    "quick_network",
    "__version__",
]


def quick_network(
    n_nodes: int = 24,
    n_groups: int = 3,
    seed: int = 0,
    config: FSFConfig | None = None,
) -> tuple[Network, Deployment]:
    """Deprecated: use :meth:`repro.api.Session.create` instead.

    Kept as a thin shim over the session facade — returns the
    session's network and deployment, exactly as before.
    """
    warn_deprecated("repro.quick_network", "repro.Session.create")
    session = Session.create(
        approach=filter_split_forward_approach(config),
        nodes=n_nodes,
        groups=n_groups,
        seed=seed,
    )
    return session.network, session.deployment
