"""repro — reproduction of *Continuous Query Evaluation over Distributed
Sensor Networks* (Jurca, Michel, Herrmann, Aberer — ICDE 2010).

A publish/subscribe system for continuous multi-join queries over
distributed sensor data streams, processed by an acyclic overlay of
nodes with local knowledge only.  The package provides:

* :mod:`repro.model` — the data model: events, advertisements, filters,
  identified/abstract subscriptions, correlation operators, matching;
* :mod:`repro.sim` — a deterministic discrete-event simulation kernel;
* :mod:`repro.network` — topology, links, node storage, traffic meters;
* :mod:`repro.subsumption` — pair-wise, exact and probabilistic
  set-subsumption checking;
* :mod:`repro.core` — the paper's Filter-Split-Forward protocol
  (Algorithms 1-5);
* :mod:`repro.baselines` — centralized, naive, distributed operator
  placement and distributed multi-join comparison systems;
* :mod:`repro.workload` — SensorScope-style synthetic replay and the
  Pareto subscription generator;
* :mod:`repro.metrics` / :mod:`repro.experiments` — oracle, recall,
  traffic metrics and the harness regenerating every table and figure.

Quickstart::

    from repro import quick_network
    net, deployment = quick_network()            # FSF on a small overlay
    ...

See ``examples/quickstart.py`` for a complete runnable tour.
"""

from __future__ import annotations

from .core import FSFConfig, FilterSplitForwardNode, filter_split_forward_approach
from .model import (
    AbstractSubscription,
    Advertisement,
    ComplexEvent,
    IdentifiedSubscription,
    Interval,
    Location,
    SimpleEvent,
    SimpleFilter,
)
from .network import Deployment, Network, build_deployment
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "AbstractSubscription",
    "Advertisement",
    "ComplexEvent",
    "Deployment",
    "FSFConfig",
    "FilterSplitForwardNode",
    "IdentifiedSubscription",
    "Interval",
    "Location",
    "Network",
    "SimpleEvent",
    "SimpleFilter",
    "Simulator",
    "build_deployment",
    "filter_split_forward_approach",
    "quick_network",
    "__version__",
]


def quick_network(
    n_nodes: int = 24,
    n_groups: int = 3,
    seed: int = 0,
    config: FSFConfig | None = None,
) -> tuple[Network, Deployment]:
    """A ready-to-use Filter-Split-Forward network on a small deployment.

    Sensors are attached and advertised; inject subscriptions with
    ``net.inject_subscription(node_id, subscription)`` and publish
    readings with ``net.publish(node_id, event)``, then call
    ``net.run_to_quiescence()``.
    """
    deployment = build_deployment(n_nodes, n_groups, seed=seed)
    network = Network(deployment, Simulator(seed=seed))
    filter_split_forward_approach(config).populate(network)
    network.attach_all_sensors()
    network.run_to_quiescence()
    return network, deployment
