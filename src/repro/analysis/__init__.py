"""Static analysis for the reproduction's own invariants.

The test suite *samples* the guarantees this repo depends on —
PYTHONHASHSEED-independent replay, sharded==serial bit-identity,
``FaultPlan.none()`` null-plan identity — by re-running a handful of
scenarios and diffing artifacts.  This package *machine-checks* the
source-level invariants behind those guarantees on every file:

* **determinism rules** — no wall-clock or entropy calls inside
  ``src/repro``, no unordered ``set`` iteration feeding ordered
  bookkeeping, every RNG stream derived via
  :func:`repro.seeding.derive_seed`;
* **layering rules** — the package import DAG declared in
  ``layers.toml`` (model at the bottom, experiments at the top), with
  cycle detection over the contract itself;
* **simulation-safety rules** — no negative/NaN literal delays, no
  mutation of frozen plan types outside constructors, no direct agenda
  access outside :mod:`repro.sim`.

Run it as ``repro-lint`` (console script) or
``python -m repro.analysis``.  Findings are suppressed inline with
``# repro-lint: ignore[rule] -- reason``; unused or malformed
suppressions are themselves findings, so the suppression inventory
can never rot silently.

The package deliberately imports nothing from the rest of ``repro``
(it sits in its own bottom layer of the contract) so it can lint a
broken tree.
"""

from .contract import ContractError, LayerContract, load_contract
from .engine import Finding, LintConfig, lint_paths, lint_source
from .report import format_findings
from .sanitizer import DeterminismViolation, forbid_nondeterminism

__all__ = [
    "ContractError",
    "DeterminismViolation",
    "Finding",
    "LayerContract",
    "LintConfig",
    "forbid_nondeterminism",
    "format_findings",
    "lint_paths",
    "lint_source",
    "load_contract",
]
