"""``repro-lint``: the console entry point (also ``python -m repro.analysis``).

Exit status is the gate contract CI relies on:

* ``0`` — every scanned file is clean (inline suppressions with
  reasons count as clean; *unused* suppressions do not);
* ``1`` — at least one finding;
* ``2`` — the run itself could not proceed (bad contract, bad flags).

Default scan set is the repository's own code: ``src``, ``tests``,
``benchmarks``, ``tools``, ``examples`` — rule families scope
themselves by category, so tests are only checked for suppression
hygiene while ``src/repro`` gets the full battery.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .contract import ContractError, load_contract
from .engine import CATEGORIES, LintConfig, lint_paths
from .report import format_findings

DEFAULT_PATHS = ("src", "tests", "benchmarks", "tools", "examples")

#: Every rule id, for ``--rules`` validation and ``--list-rules``.
ALL_RULES: dict[str, str] = {
    "wall-clock": "wall-clock reads (time.time, datetime.now, ...) in src/repro",
    "entropy": "ambient entropy (os.urandom, uuid4, global random/np.random)",
    "env-read": "os.environ/os.getenv reads outside the env-knob allowlist",
    "unordered-iter": "set iteration feeding an order-sensitive position",
    "rng-stream": "default_rng seeded without derive_seed",
    "layer-violation": "load-time import breaking the layers.toml DAG",
    "layer-unassigned": "repro module not owned by any contract layer",
    "literal-delay": "schedule/at with a negative or NaN literal delay",
    "frozen-mutation": "object.__setattr__ outside a constructor",
    "agenda-access": "Simulator._agenda/_rngs touched outside repro.sim",
    "bad-suppression": "malformed or reason-less repro-lint comment",
    "unused-suppression": "suppression that silenced nothing",
    "syntax-error": "file does not parse",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism, layering, and simulation-safety linter "
        "for the repro package.",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src tests benchmarks "
        "tools examples, relative to the current directory)",
    )
    parser.add_argument(
        "--contract", metavar="FILE", default=None,
        help="layers.toml to enforce (default: the contract shipped in "
        "repro.analysis)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", metavar="ID[,ID...]", default=None,
        help="only run these rule ids (suppression hygiene always runs)",
    )
    parser.add_argument(
        "--treat-as", choices=CATEGORIES, default=None,
        help="force every scanned file into one category (lint fixture "
        "snippets as if they lived under src/repro)",
    )
    parser.add_argument(
        "--module-name", metavar="DOTTED", default=None,
        help="force the dotted module name (single file only; lets a "
        "fixture pose as a repro.* module for the layering rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with a one-line description and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(rule) for rule in ALL_RULES)
        for rule in sorted(ALL_RULES):
            print(f"{rule:<{width}}  {ALL_RULES[rule]}")
        return 0

    rules = None
    if args.rules:
        rules = frozenset(r.strip() for r in args.rules.split(",") if r.strip())
        unknown = sorted(rules - set(ALL_RULES))
        if unknown:
            print(f"repro-lint: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    try:
        contract = load_contract(args.contract)
    except ContractError as exc:
        print(f"repro-lint: contract error: {exc}", file=sys.stderr)
        return 2

    config = LintConfig(
        contract=contract,
        rules=rules,
        treat_as=args.treat_as,
        module_override=args.module_name,
    )
    paths = args.paths or [p for p in DEFAULT_PATHS if Path(p).exists()]
    if args.module_name and len(paths) != 1:
        print("repro-lint: --module-name requires exactly one file path",
              file=sys.stderr)
        return 2
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"repro-lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    findings = lint_paths(paths, config)
    print(format_findings(findings, args.format))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
