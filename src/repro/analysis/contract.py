"""The machine-readable import-layer contract (``layers.toml``).

The repo's architecture docs have always *described* a layering —
model at the bottom, experiments at the top — but nothing enforced
it.  ``layers.toml`` encodes that DAG as data: each layer names the
``repro`` module prefixes it owns and the layers it may import at
module load time.  The loader validates the contract itself (unknown
layer references, duplicate ownership, cycles in the declared graph)
before any file is linted, so a bad contract fails loudly rather
than silently allowing everything.

Resolution is longest-prefix on dot boundaries: ``repro.network.node``
belongs to the layer owning ``repro.network``.  The bare root package
name (``repro``) is special-cased to match only the package
``__init__`` itself — otherwise every future unassigned package would
silently inherit the root layer's (maximal) privileges instead of
being flagged ``layer-unassigned``.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass
from pathlib import Path

#: The contract shipped next to this module; the CLI default.
DEFAULT_CONTRACT_PATH = Path(__file__).with_name("layers.toml")


class ContractError(ValueError):
    """The contract file itself is invalid (not a lint finding)."""


@dataclass(frozen=True, slots=True)
class Layer:
    name: str
    modules: tuple[str, ...]
    may_import: frozenset[str]


@dataclass(frozen=True, slots=True)
class LayerContract:
    root_package: str
    layers: tuple[Layer, ...]

    def layer_of(self, module: str) -> str | None:
        """Layer owning ``module``, by longest prefix; None if unassigned."""
        best: tuple[int, str] | None = None
        for layer in self.layers:
            for prefix in layer.modules:
                if prefix == self.root_package:
                    if module != prefix:
                        continue
                elif module != prefix and not module.startswith(prefix + "."):
                    continue
                if best is None or len(prefix) > best[0]:
                    best = (len(prefix), layer.name)
        return best[1] if best else None

    def allows(self, src_layer: str, dst_layer: str) -> bool:
        """May load-time code in ``src_layer`` import ``dst_layer``?"""
        if src_layer == dst_layer:
            return True
        by_name = {layer.name: layer for layer in self.layers}
        return dst_layer in by_name[src_layer].may_import

    def names(self) -> list[str]:
        return [layer.name for layer in self.layers]


def _detect_cycle(layers: tuple[Layer, ...]) -> list[str] | None:
    """First cycle in the declared may-import graph, as a name path."""
    edges = {layer.name: sorted(layer.may_import) for layer in layers}
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in edges}
    stack: list[str] = []

    def visit(name: str) -> list[str] | None:
        colour[name] = GREY
        stack.append(name)
        for succ in edges[name]:
            if colour[succ] == GREY:
                return stack[stack.index(succ) :] + [succ]
            if colour[succ] == WHITE:
                cycle = visit(succ)
                if cycle is not None:
                    return cycle
        stack.pop()
        colour[name] = BLACK
        return None

    for name in sorted(edges):
        if colour[name] == WHITE:
            cycle = visit(name)
            if cycle is not None:
                return cycle
    return None


def parse_contract(data: dict) -> LayerContract:
    """Validate raw TOML data into a :class:`LayerContract`."""
    meta = data.get("contract", {})
    root_package = meta.get("root-package", "repro")
    raw_layers = data.get("layer", [])
    if not raw_layers:
        raise ContractError("contract declares no [[layer]] tables")

    layers: list[Layer] = []
    seen_names: set[str] = set()
    owned: dict[str, str] = {}
    for raw in raw_layers:
        name = raw.get("name")
        if not name:
            raise ContractError("every [[layer]] needs a name")
        if name in seen_names:
            raise ContractError(f"duplicate layer name {name!r}")
        seen_names.add(name)
        modules = tuple(raw.get("modules", ()))
        if not modules:
            raise ContractError(f"layer {name!r} owns no modules")
        for prefix in modules:
            if prefix in owned:
                raise ContractError(
                    f"module prefix {prefix!r} owned by both "
                    f"{owned[prefix]!r} and {name!r}"
                )
            owned[prefix] = name
        layers.append(Layer(
            name=name,
            modules=modules,
            may_import=frozenset(raw.get("may-import", ())),
        ))

    for layer in layers:
        unknown = sorted(layer.may_import - seen_names)
        if unknown:
            raise ContractError(
                f"layer {layer.name!r} may-import unknown layers: {unknown}"
            )

    cycle = _detect_cycle(tuple(layers))
    if cycle is not None:
        raise ContractError(
            "layer contract is cyclic: " + " -> ".join(cycle)
        )
    return LayerContract(root_package=root_package, layers=tuple(layers))


def load_contract(path: str | Path | None = None) -> LayerContract:
    """Load and validate ``layers.toml`` (the shipped one by default)."""
    contract_path = Path(path) if path is not None else DEFAULT_CONTRACT_PATH
    try:
        with open(contract_path, "rb") as handle:
            data = tomllib.load(handle)
    except FileNotFoundError as exc:
        raise ContractError(f"contract file not found: {contract_path}") from exc
    except tomllib.TOMLDecodeError as exc:
        raise ContractError(f"contract is not valid TOML: {exc}") from exc
    return parse_contract(data)
