"""The rule engine: file walking, suppressions, and shared AST helpers.

A *rule family* is a module exposing ``check(ctx) -> list[Finding]``;
the engine owns everything rule-independent: categorising paths
(``src`` / ``tests`` / ``benchmarks`` / ...), computing dotted module
names, parsing inline suppressions, and the alias-resolution helpers
every family uses to turn ``np.random.default_rng`` back into
``numpy.random.default_rng``.

Suppression contract (checked here, not in the families):

* ``# repro-lint: ignore[rule-a,rule-b] -- reason`` on the finding's
  line silences exactly those rules on exactly that line;
* the reason is mandatory — a bare ``ignore[...]`` is a
  ``bad-suppression`` finding and silences nothing;
* a suppression that silenced nothing in the run is an
  ``unused-suppression`` finding, so stale exceptions surface the
  moment the underlying hazard is fixed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from .contract import LayerContract, load_contract

#: Path categories the rule families scope themselves by.
CATEGORIES = ("src", "tests", "benchmarks", "tools", "examples", "other")

#: Rules emitted by the engine itself; never suppressible (a
#: suppressible suppression-hygiene rule could hide its own rot).
ENGINE_RULES = ("bad-suppression", "unused-suppression", "syntax-error")


@dataclass(frozen=True, slots=True)
class Finding:
    """One linter finding, anchored to a source line."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(slots=True)
class Suppression:
    """A parsed ``# repro-lint: ignore[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    used: bool = False


@dataclass(slots=True)
class LintContext:
    """Everything a rule family sees about one file."""

    path: str
    module: str
    category: str
    is_package: bool
    tree: ast.Module
    lines: list[str]
    contract: LayerContract
    #: ``import`` alias map: local name -> dotted origin ("np" ->
    #: "numpy", "derive_seed" -> "repro.seeding.derive_seed").
    aliases: dict[str, str] = field(default_factory=dict)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(self.path, getattr(node, "lineno", 1), rule, message)


@dataclass(slots=True)
class LintConfig:
    """Run configuration shared by the CLI and the test harness."""

    contract: LayerContract
    #: Restrict to these rule ids (None = all).
    rules: frozenset[str] | None = None
    #: Force every file into one category (the fixture corpus is linted
    #: *as if* it lived under ``src/repro``).
    treat_as: str | None = None
    #: Force the dotted module name (single-file runs only; lets a
    #: corpus snippet pose as e.g. ``repro.model.bad`` for layering).
    module_override: str | None = None

    @classmethod
    def default(cls) -> "LintConfig":
        return cls(contract=load_contract())


# ----------------------------------------------------------------------
# path -> category / module name
# ----------------------------------------------------------------------

def categorize(path: str | Path) -> str:
    """Which scope a file belongs to, from its path segments."""
    parts = Path(path).as_posix().split("/")
    if "repro" in parts and "src" in parts:
        return "src"
    for category in ("tests", "benchmarks", "tools", "examples"):
        if category in parts:
            return category
    return "other"


def module_name_for(path: str | Path) -> str:
    """Dotted module name; ``src/repro/sim/core.py`` -> ``repro.sim.core``."""
    parts = list(Path(path).with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    elif "repro" in parts:
        parts = parts[parts.index("repro") :]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or Path(path).stem


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------

def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local-name -> dotted-origin map over *every* import in the file.

    Function-level imports are included: an aliased entropy call is
    just as nondeterministic inside a helper as at module scope.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def dotted_name(node: ast.expr, aliases: dict[str, str] | None = None) -> str | None:
    """Reduce ``a.b.c`` / aliased names to a dotted string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = node.id
    if aliases and head in aliases:
        head = aliases[head]
    parts.append(head)
    return ".".join(reversed(parts))


def module_level_imports(
    tree: ast.Module,
) -> Iterable[tuple[ast.Import | ast.ImportFrom, bool]]:
    """Yield ``(import_node, typing_only)`` for load-time imports.

    Imports inside ``if TYPE_CHECKING:`` are yielded with
    ``typing_only=True`` (they never execute, so they are exempt from
    the layer DAG); imports inside functions are not yielded at all —
    a deliberately lazy upward import is the sanctioned cycle-breaking
    idiom (see ``workload/program.py``).
    """
    def walk(body: Sequence[ast.stmt], typing_only: bool):
        for node in body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield node, typing_only
            elif isinstance(node, ast.If):
                test_name = dotted_name(node.test)
                guard = typing_only or (
                    test_name is not None and test_name.endswith("TYPE_CHECKING")
                )
                yield from walk(node.body, guard)
                yield from walk(node.orelse, typing_only)
            elif isinstance(node, ast.Try):
                for block in (node.body, node.orelse, node.finalbody):
                    yield from walk(block, typing_only)
                for handler in node.handlers:
                    yield from walk(handler.body, typing_only)

    yield from walk(tree.body, False)


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------

_SUPPRESSION = re.compile(
    r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_\-, ]+)\]"
    r"(?:\s*--\s*(\S.*?))?\s*$"
)
_MARKER = re.compile(r"#\s*repro-lint:")


def _comment_tokens(code: str) -> list[tuple[int, str]]:
    """``(lineno, comment_text)`` for every real comment token.

    Tokenizing (rather than regex over raw lines) keeps suppression
    syntax quoted inside strings and docstrings inert.
    """
    comments: list[tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(code).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparsable files surface as syntax-error findings
    return comments


def parse_suppressions(
    path: str, code: str
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Parse inline suppressions; malformed ones become findings."""
    table: dict[int, Suppression] = {}
    findings: list[Finding] = []
    for lineno, text in _comment_tokens(code):
        if not _MARKER.search(text):
            continue
        match = _SUPPRESSION.search(text)
        if match is None:
            findings.append(Finding(
                path, lineno, "bad-suppression",
                "malformed repro-lint comment; expected "
                "'# repro-lint: ignore[rule] -- reason'",
            ))
            continue
        rules = tuple(
            r.strip() for r in match.group(1).split(",") if r.strip()
        )
        reason = (match.group(2) or "").strip()
        if not rules or not reason:
            findings.append(Finding(
                path, lineno, "bad-suppression",
                "suppression needs both a rule list and a '-- reason'",
            ))
            continue
        table[lineno] = Suppression(lineno, rules, reason)
    return table, findings


def apply_suppressions(
    path: str, findings: list[Finding], table: dict[int, Suppression]
) -> list[Finding]:
    """Drop suppressed findings; surface unused suppressions."""
    kept: list[Finding] = []
    for finding in findings:
        suppression = table.get(finding.line)
        if (
            suppression is not None
            and finding.rule not in ENGINE_RULES
            and finding.rule in suppression.rules
        ):
            suppression.used = True
            continue
        kept.append(finding)
    for lineno in sorted(table):
        suppression = table[lineno]
        if not suppression.used:
            kept.append(Finding(
                path,
                lineno,
                "unused-suppression",
                f"suppression ignore[{','.join(suppression.rules)}] "
                "matched no finding; delete it or fix the rule list",
            ))
    return kept


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------

def _rule_families() -> list[Callable[[LintContext], list[Finding]]]:
    from . import rules_determinism, rules_layering, rules_simsafety

    return [
        rules_determinism.check,
        rules_layering.check,
        rules_simsafety.check,
    ]


def lint_source(
    code: str,
    *,
    path: str = "<memory>",
    module: str = "module",
    category: str = "other",
    is_package: bool = False,
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint one source string (the unit-test / corpus entry point)."""
    config = config or LintConfig.default()
    lines = code.splitlines()
    table, findings = parse_suppressions(path, code)
    try:
        tree = ast.parse(code, filename=path)
    except SyntaxError as exc:
        findings.append(Finding(
            path, exc.lineno or 1, "syntax-error", f"cannot parse: {exc.msg}"
        ))
        return findings
    ctx = LintContext(
        path=path,
        module=config.module_override or module,
        category=config.treat_as or category,
        is_package=is_package,
        tree=tree,
        lines=lines,
        contract=config.contract,
        aliases=import_aliases(tree),
    )
    for family in _rule_families():
        findings.extend(family(ctx))
    if config.rules is not None:
        findings = [
            f for f in findings
            if f.rule in config.rules or f.rule in ENGINE_RULES
        ]
    findings = apply_suppressions(path, findings, table)
    return sorted(findings, key=lambda f: (f.line, f.rule))


def lint_file(path: str | Path, config: LintConfig | None = None) -> list[Finding]:
    path = Path(path)
    return lint_source(
        path.read_text(encoding="utf-8"),
        path=str(path),
        module=module_name_for(path),
        category=categorize(path),
        is_package=path.name == "__init__.py",
        config=config,
    )


def lint_paths(
    paths: Iterable[str | Path], config: LintConfig | None = None
) -> list[Finding]:
    """Lint files and/or directory trees; order-stable output."""
    config = config or LintConfig.default()
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            # The fixture corpus is deliberately full of findings; it is
            # linted file-by-file (explicit paths) by its own test
            # harness, never swept up in a directory scan.
            files.extend(
                f for f in sorted(entry.rglob("*.py"))
                if "lint_corpus" not in f.parts
            )
        elif entry.suffix == ".py":
            files.append(entry)
    findings: list[Finding] = []
    for file in files:
        findings.extend(lint_file(file, config))
    return findings
