"""Finding formatters for the CLI: grouped text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from .engine import Finding


def format_findings(findings: Sequence[Finding], fmt: str = "text") -> str:
    if fmt == "json":
        return _format_json(findings)
    if fmt == "text":
        return _format_text(findings)
    raise ValueError(f"unknown format {fmt!r} (expected 'text' or 'json')")


def _format_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "repro-lint: clean"
    lines: list[str] = []
    current_path: str | None = None
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        if finding.path != current_path:
            current_path = finding.path
            lines.append(f"{finding.path}:")
        lines.append(f"  {finding.line}: [{finding.rule}] {finding.message}")
    by_rule = Counter(finding.rule for finding in findings)
    breakdown = ", ".join(
        f"{rule} x{count}" for rule, count in sorted(by_rule.items())
    )
    files = len({finding.path for finding in findings})
    lines.append("")
    lines.append(
        f"repro-lint: {len(findings)} finding(s) in {files} file(s) "
        f"({breakdown})"
    )
    return "\n".join(lines)


def _format_json(findings: Sequence[Finding]) -> str:
    payload = {
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in sorted(
                findings, key=lambda f: (f.path, f.line, f.rule)
            )
        ],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
