"""Determinism rules: the source-level side of "seedable and replayable".

Every rule here is the static shadow of an invariant the test suite
samples dynamically (PYTHONHASHSEED-subprocess bit-identity,
sharded==serial, facade==manual):

``wall-clock``
    No ``time.time()`` / ``datetime.now()`` etc. anywhere under
    ``src/repro``: virtual time comes from the simulator only.
``entropy``
    No ambient entropy — ``os.urandom``, ``uuid.uuid1/uuid4``,
    ``secrets.*``, module-level ``random.*`` draws, unseeded
    ``random.Random()``, and numpy's legacy global-state
    ``numpy.random.<draw>`` helpers.
``env-read``
    ``os.environ`` / ``os.getenv`` reads make behaviour depend on
    ambient shell state; only the documented knob modules
    (:data:`ENV_ALLOWLIST`) may read them.
``unordered-iter``
    Iterating a ``set``/``frozenset`` in an order-sensitive position:
    hash order of strings varies with PYTHONHASHSEED, so a bare
    ``for x in some_set`` feeding bookkeeping, scheduling, or
    serialization silently breaks cross-process identity.  Iteration
    into order-insensitive sinks (``len``/``any``/``all``/``min``/
    ``max``/``sum``/``set``/``frozenset``/``sorted``, or building
    another set) is allowed.
``rng-stream``
    ``numpy.random.default_rng(x)`` where ``x`` is neither a
    ``derive_seed(...)`` call nor an integer literal: ad-hoc seed
    arithmetic is exactly how the PR-2 PYTHONHASHSEED bug happened,
    and ``default_rng()`` with no argument draws from the OS.

All five apply only to ``category == "src"``; tests and benchmarks
may use wall clocks freely.  :data:`ENTROPY_ALLOWLIST` exempts the
modules whose *job* is ambient state: seed derivation, the CLI's
env-knob plumbing, and the sanitizer that patches these very calls.
"""

from __future__ import annotations

import ast

from .engine import Finding, LintContext, dotted_name

#: Modules exempt from wall-clock/entropy/env-read (their job is the
#: boundary itself).
ENTROPY_ALLOWLIST = frozenset({
    "repro.seeding",
    "repro.experiments.cli",
    "repro.analysis.sanitizer",
})

#: Modules exempt from env-read only (documented runtime knobs).
ENV_ALLOWLIST = ENTROPY_ALLOWLIST

WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

ENTROPY_CALLS = frozenset({
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
})

#: numpy.random module-level constructors that are deterministic and
#: seed-disciplined; everything else on numpy.random is legacy global
#: state.
NUMPY_RANDOM_OK = frozenset({
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.SeedSequence", "numpy.random.PCG64",
    "numpy.random.Philox", "numpy.random.BitGenerator",
})

#: Dotted suffixes known (by convention in this codebase) to denote
#: frozenset accessors: ``Slot.sensors`` / ``CorrelationOperator.sensors``
#: / ``.slot_ids`` are frozensets, while ``deployment.sensors`` is an
#: ordered tuple of placements — so the *suffix*, not the bare
#: attribute name, is what disambiguates.
SET_ATTRIBUTE_SUFFIXES = (
    "operator.sensors",
    "root.sensors",
    "slot.sensors",
    "operator.slot_ids",
    "subscription.sensor_ids",
)

#: Call sinks into which unordered iteration is order-insensitive.
ORDER_INSENSITIVE_SINKS = frozenset({
    "len", "any", "all", "min", "max", "sum", "set", "frozenset", "sorted",
})

SET_METHODS = frozenset({
    "intersection", "union", "difference", "symmetric_difference",
})


def _is_set_producing(node: ast.expr, set_vars: set[str]) -> bool:
    """Syntactically set-valued: literal, comp, set() call, set method,
    a known frozenset attribute, or a local assigned from one."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in SET_METHODS:
            return True
        return False
    if isinstance(node, ast.Attribute):
        dotted = dotted_name(node)
        if dotted is not None and any(
            dotted == suffix or dotted.endswith("." + suffix)
            for suffix in SET_ATTRIBUTE_SUFFIXES
        ):
            return True
        return False
    if isinstance(node, ast.Name) and node.id in set_vars:
        return True
    return False


def _scope_set_vars(scope: ast.AST) -> set[str]:
    """Names assigned *only* from set-producing expressions in ``scope``.

    A name ever rebound to a non-set expression is dropped — better to
    miss a hazard than to flag a false one (the dynamic sanitizer and
    the equivalence suites back this rule up).  Scopes are analysed
    per-function (via :func:`_collect_set_vars`), so a dict-valued
    ``sensors`` in one method does not shadow a set-valued ``sensors``
    in another.
    """
    candidates: set[str] = set()
    rebound: set[str] = set()
    for node in _walk_scope(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if _is_set_producing(node.value, set()):
                    candidates.add(target.id)
                else:
                    rebound.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = ast.unparse(node.annotation)
            if annotation.startswith(("set[", "frozenset[", "set", "frozenset")):
                candidates.add(node.target.id)
            else:
                rebound.add(node.target.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            if isinstance(target, ast.Name):
                rebound.add(target.id)
    return candidates - rebound


def _walk_scope(scope: ast.AST):
    """Descendants of ``scope`` without entering nested functions."""
    stack = [scope]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)
            yield child


def _scope_tables(tree: ast.Module) -> tuple[dict[ast.AST, ast.AST], dict[ast.AST, set[str]]]:
    """(node -> owning scope, scope -> set-typed names) for the file."""
    owner: dict[ast.AST, ast.AST] = {}
    tables: dict[ast.AST, set[str]] = {}
    scopes: list[ast.AST] = [tree] + [
        node for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for scope in scopes:
        tables[scope] = _scope_set_vars(scope)
        for node in _walk_scope(scope):
            owner[node] = scope
    return owner, tables


def check(ctx: LintContext) -> list[Finding]:
    if ctx.category != "src":
        return []
    findings: list[Finding] = []
    allow_entropy = ctx.module in ENTROPY_ALLOWLIST
    allow_env = ctx.module in ENV_ALLOWLIST
    scope_of, set_tables = _scope_tables(ctx.tree)

    def set_vars_at(node: ast.AST) -> set[str]:
        return set_tables.get(scope_of.get(node, ctx.tree), set())

    imports_stdlib_random = ctx.aliases.get("random") == "random" or any(
        origin == "random" or origin.startswith("random.")
        for origin in ctx.aliases.values()
    )

    #: generator-exps that appear as the sole argument of a safe sink
    safe_comps: set[ast.expr] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and len(node.args) == 1:
            name = dotted_name(node.func, ctx.aliases)
            if name in ORDER_INSENSITIVE_SINKS:
                safe_comps.add(node.args[0])

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            findings.extend(_check_call(
                ctx, node, allow_entropy, allow_env,
                imports_stdlib_random, set_vars_at(node),
            ))
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            if not allow_env and dotted_name(node.value, ctx.aliases) == "os.environ":
                findings.append(ctx.finding(
                    node, "env-read",
                    "os.environ read outside the env-knob allowlist; "
                    "thread the value through configuration instead",
                ))
        elif isinstance(node, ast.For):
            if _is_set_producing(node.iter, set_vars_at(node)):
                findings.append(ctx.finding(
                    node.iter, "unordered-iter",
                    "iterating a set in hash order (PYTHONHASHSEED-"
                    "dependent); wrap in sorted(...)",
                ))
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            if isinstance(node, ast.GeneratorExp) and node in safe_comps:
                continue
            for generator in node.generators:
                if _is_set_producing(generator.iter, set_vars_at(node)):
                    findings.append(ctx.finding(
                        generator.iter, "unordered-iter",
                        "comprehension over a set materialises hash "
                        "order; wrap the source in sorted(...)",
                    ))
    return findings


def _check_call(
    ctx: LintContext,
    node: ast.Call,
    allow_entropy: bool,
    allow_env: bool,
    imports_stdlib_random: bool,
    set_vars: set[str],
) -> list[Finding]:
    findings: list[Finding] = []
    name = dotted_name(node.func, ctx.aliases)
    if name is None:
        return findings

    if not allow_entropy:
        if name in WALL_CLOCK_CALLS:
            findings.append(ctx.finding(
                node, "wall-clock",
                f"{name}() reads the wall clock; simulation time comes "
                "from Simulator.now only",
            ))
        elif name in ENTROPY_CALLS or name.startswith("secrets."):
            findings.append(ctx.finding(
                node, "entropy",
                f"{name}() draws ambient entropy; derive randomness "
                "from the run seed via derive_seed",
            ))
        elif (
            imports_stdlib_random
            and name.startswith("random.")
            and name.count(".") == 1
        ):
            if name == "random.Random" and node.args:
                pass  # seeded instance: deterministic
            else:
                findings.append(ctx.finding(
                    node, "entropy",
                    f"{name}() uses the global random stream; use a "
                    "seeded generator derived via derive_seed",
                ))
        elif name.startswith("numpy.random.") and name not in NUMPY_RANDOM_OK:
            findings.append(ctx.finding(
                node, "entropy",
                f"{name}() mutates numpy's legacy global RNG state; "
                "use default_rng(derive_seed(...))",
            ))

    if not allow_env and name in ("os.getenv", "os.environ.get"):
        findings.append(ctx.finding(
            node, "env-read",
            f"{name}() reads the process environment outside the "
            "env-knob allowlist",
        ))

    if name in ("numpy.random.default_rng", "numpy.random.Generator"):
        findings.extend(_check_rng_stream(ctx, node))

    # list()/tuple() over a set materialises hash order into a sequence.
    if (
        isinstance(node.func, ast.Name)
        and node.func.id in ("list", "tuple")
        and len(node.args) == 1
        and _is_set_producing(node.args[0], set_vars)
    ):
        findings.append(ctx.finding(
            node, "unordered-iter",
            f"{node.func.id}() over a set freezes hash order into a "
            "sequence; use sorted(...)",
        ))
    return findings


def _check_rng_stream(ctx: LintContext, node: ast.Call) -> list[Finding]:
    if not node.args:
        return [ctx.finding(
            node, "rng-stream",
            "default_rng() with no seed draws OS entropy; pass "
            "derive_seed(...)",
        )]
    seed = node.args[0]
    if isinstance(seed, ast.Constant) and isinstance(seed.value, int):
        return []  # fixed literal: deterministic by construction
    if isinstance(seed, ast.Call):
        callee = dotted_name(seed.func, ctx.aliases)
        if callee is not None and callee.split(".")[-1] == "derive_seed":
            return []
    return [ctx.finding(
        node, "rng-stream",
        "RNG stream seeded by ad-hoc arithmetic; route the seed "
        "through derive_seed(...) so streams stay independent and "
        "PYTHONHASHSEED-free",
    )]
