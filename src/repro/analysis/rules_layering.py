"""Layering rules: enforce the ``layers.toml`` import contract.

``layer-violation``
    A module-level (load-time) import reaching a layer the importer's
    layer does not list in ``may-import``.  ``if TYPE_CHECKING:``
    imports are exempt (they never execute); function-local imports
    are exempt by design (the sanctioned lazy-upward idiom).
``layer-unassigned``
    A ``repro`` module — importer or importee — that no contract layer
    owns.  New sub-packages must be placed in the DAG explicitly; they
    do not inherit anything by default.

Contract-file problems (cycles, duplicate ownership, unknown layer
references) are :class:`~repro.analysis.contract.ContractError` at
load time, not findings: a broken contract must stop the run, not
produce a clean report.
"""

from __future__ import annotations

import ast

from .engine import Finding, LintContext, module_level_imports


def _resolve_relative(ctx: LintContext, node: ast.ImportFrom) -> str | None:
    """Absolute dotted target of a relative import, or None."""
    package_parts = ctx.module.split(".")
    if not ctx.is_package:
        package_parts = package_parts[:-1]
    hops_up = node.level - 1
    if hops_up > len(package_parts):
        return None
    base = package_parts[: len(package_parts) - hops_up]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _imported_modules(ctx: LintContext, node: ast.Import | ast.ImportFrom) -> list[str]:
    root = ctx.contract.root_package
    targets: list[str] = []
    if isinstance(node, ast.Import):
        for item in node.names:
            if item.name == root or item.name.startswith(root + "."):
                targets.append(item.name)
    else:
        if node.level:
            resolved = _resolve_relative(ctx, node)
            if resolved and (resolved == root or resolved.startswith(root + ".")):
                targets.append(resolved)
        elif node.module and (
            node.module == root or node.module.startswith(root + ".")
        ):
            targets.append(node.module)
    return targets


def check(ctx: LintContext) -> list[Finding]:
    root = ctx.contract.root_package
    if ctx.category != "src":
        return []
    if not (ctx.module == root or ctx.module.startswith(root + ".")):
        return []
    findings: list[Finding] = []

    src_layer = ctx.contract.layer_of(ctx.module)
    if src_layer is None:
        findings.append(Finding(
            ctx.path, 1, "layer-unassigned",
            f"module {ctx.module} belongs to no layer in layers.toml; "
            "add it to the contract",
        ))

    for node, typing_only in module_level_imports(ctx.tree):
        if typing_only:
            continue
        for target in _imported_modules(ctx, node):
            dst_layer = ctx.contract.layer_of(target)
            if dst_layer is None:
                findings.append(ctx.finding(
                    node, "layer-unassigned",
                    f"import target {target} belongs to no layer in "
                    "layers.toml",
                ))
                continue
            if src_layer is None:
                continue
            if not ctx.contract.allows(src_layer, dst_layer):
                findings.append(ctx.finding(
                    node, "layer-violation",
                    f"{ctx.module} (layer {src_layer!r}) must not import "
                    f"{target} (layer {dst_layer!r}) at load time; move "
                    "the import under TYPE_CHECKING, make it lazy, or "
                    "change layers.toml",
                ))
    return findings
