"""Simulation-safety rules: misuse the kernel rejects at runtime,
caught before the run.

``literal-delay``
    ``schedule(-1.0, ...)`` / ``at(float("nan"), ...)``: negative or
    NaN literal delays always raise :class:`SimulationError` at
    runtime — a literal one is a bug visible statically.
``frozen-mutation``
    ``object.__setattr__`` outside ``__init__``/``__post_init__``:
    the only sanctioned use is the frozen-dataclass constructor idiom;
    anywhere else it is defeating immutability of plan/model types
    (FaultPlan, WorkloadProgram, subscriptions) whose hashes and
    equality feed memo keys and bit-identity checks.
``agenda-access``
    Touching ``_agenda``/``_rngs`` (the Simulator's internals) outside
    :mod:`repro.sim`: bypassing the kernel skips its validation and
    the FIFO sequence numbers that make runs reproducible.  Use
    ``schedule``/``at``/``run``/``agenda_summary``.
"""

from __future__ import annotations

import ast

from .engine import Finding, LintContext, dotted_name

SCHEDULING_METHODS = frozenset({"schedule", "at", "schedule_timeline"})
PRIVATE_SIM_ATTRS = frozenset({"_agenda", "_rngs"})
CONSTRUCTOR_METHODS = frozenset({"__init__", "__post_init__", "__setstate__"})


def _delay_argument(node: ast.Call) -> ast.expr | None:
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg in ("delay", "time"):
            return keyword.value
    return None


def _is_bad_literal(expr: ast.expr) -> str | None:
    if (
        isinstance(expr, ast.UnaryOp)
        and isinstance(expr.op, ast.USub)
        and isinstance(expr.operand, ast.Constant)
        and isinstance(expr.operand.value, (int, float))
    ):
        return f"-{expr.operand.value:g}"
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "float"
        and expr.args
        and isinstance(expr.args[0], ast.Constant)
        and isinstance(expr.args[0].value, str)
        and expr.args[0].value.lower() == "nan"
    ):
        return "float('nan')"
    return None


def check(ctx: LintContext) -> list[Finding]:
    if ctx.category != "src":
        return []
    findings: list[Finding] = []
    in_sim_package = ctx.module.startswith("repro.sim")

    # map each node to its nearest enclosing function name
    enclosing: dict[ast.AST, str] = {}
    for parent in ast.walk(ctx.tree):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.walk(parent):
                enclosing.setdefault(child, parent.name)

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in SCHEDULING_METHODS
            ):
                delay = _delay_argument(node)
                bad = _is_bad_literal(delay) if delay is not None else None
                if bad is not None:
                    findings.append(ctx.finding(
                        node, "literal-delay",
                        f".{func.attr}({bad}, ...) always raises "
                        "SimulationError; delays must be >= 0 and finite",
                    ))
            if dotted_name(func, ctx.aliases) == "object.__setattr__":
                if enclosing.get(node) not in CONSTRUCTOR_METHODS:
                    findings.append(ctx.finding(
                        node, "frozen-mutation",
                        "object.__setattr__ outside a constructor mutates "
                        "a frozen type; build a new instance "
                        "(dataclasses.replace) instead",
                    ))
        elif isinstance(node, ast.Attribute) and not in_sim_package:
            if node.attr in PRIVATE_SIM_ATTRS:
                findings.append(ctx.finding(
                    node, "agenda-access",
                    f"direct {node.attr} access bypasses the Simulator; "
                    "use schedule/at/run/agenda_summary",
                ))
    return findings
