"""Runtime determinism sanitizer: the linter's dynamic companion.

The static rules prove ``src/repro`` *contains* no wall-clock or
entropy calls; this module proves none are *reached* — including via
third-party code paths the AST pass cannot see.  Inside
:func:`forbid_nondeterminism`, the module-level draw functions of
:mod:`time`, :mod:`random`, :mod:`uuid`, and ``os.urandom`` are
replaced with raisers, so any simulation code that touches ambient
state fails the equivalence suites immediately with a pointed error
instead of passing by luck on one machine.

The patch set is deliberately narrow:

* ``time``: only the *clock reads* (``time``, ``time_ns``,
  ``monotonic`` ...) — ``time.sleep`` and struct helpers stay, and
  pytest/hypothesis machinery that holds a direct reference to the
  original functions is unaffected (we patch attributes, not code);
* ``random``: only the global-stream draw functions —
  ``random.Random`` instances (hypothesis's engine, user code with
  explicit seeds) keep working, as do ``seed``/``getstate``/
  ``setstate`` which hypothesis's entropy management calls;
* ``uuid``: ``uuid1``/``uuid4`` (entropy); ``uuid3``/``uuid5`` are
  deterministic hashes and stay;
* ``os.urandom``: the root entropy source.

Used via the ``sanitize_determinism`` pytest fixture wired in
``tests/conftest.py`` for the equivalence suites, or directly as a
context manager around a simulation run.
"""

from __future__ import annotations

import os
import random
import sys
import time
import uuid
from contextlib import contextmanager
from typing import Iterator


class DeterminismViolation(RuntimeError):
    """A wall-clock or entropy call fired inside a sanitized region."""


#: Caller modules exempt from the patch: the *test harness* (hypothesis
#: times its examples with ``time.time``/``time.perf_counter``) and the
#: stdlib concurrency plumbing (``multiprocessing``/``concurrent``
#: worker management polls ``time.monotonic`` from its own threads —
#: raising there kills the pool's management thread and deadlocks the
#: run rather than failing it).  Simulation and repro code gets no
#: pass: the check is on the *direct* caller's module name, so repro
#: code cannot smuggle a clock read through an exempt frame.
_EXEMPT_CALLER_PREFIXES = (
    "hypothesis.", "_pytest.", "pluggy.",
    "multiprocessing.", "concurrent.", "threading", "queue",
    "selectors", "subprocess",
)


_TIME_ATTRS = (
    "time", "time_ns",
    "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns",
)
_RANDOM_ATTRS = (
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "paretovariate",
    "weibullvariate", "triangular", "vonmisesvariate", "getrandbits",
    "randbytes",
)
_UUID_ATTRS = ("uuid1", "uuid4")


def _raiser(qualified: str, original):
    def forbidden(*args: object, **kwargs: object) -> object:
        caller = sys._getframe(1).f_globals.get("__name__", "")
        if caller.startswith(_EXEMPT_CALLER_PREFIXES):
            return original(*args, **kwargs)
        raise DeterminismViolation(
            f"{qualified}() called inside a determinism-sanitized "
            "region: simulation code must take time from Simulator.now "
            "and randomness from a derive_seed'd stream "
            "(see repro.analysis)"
        )

    forbidden.__name__ = forbidden.__qualname__ = f"forbidden_{qualified}"
    return forbidden


@contextmanager
def forbid_nondeterminism() -> Iterator[None]:
    """Patch ambient time/entropy entry points to raise; restore on exit."""
    saved: list[tuple[object, str, object]] = []

    def patch(module: object, attr: str, qualified: str) -> None:
        original = getattr(module, attr)
        saved.append((module, attr, original))
        setattr(module, attr, _raiser(qualified, original))

    for attr in _TIME_ATTRS:
        patch(time, attr, f"time.{attr}")
    for attr in _RANDOM_ATTRS:
        patch(random, attr, f"random.{attr}")
    for attr in _UUID_ATTRS:
        patch(uuid, attr, f"uuid.{attr}")
    patch(os, "urandom", "os.urandom")
    try:
        yield
    finally:
        for module, attr, original in reversed(saved):
            setattr(module, attr, original)
