"""repro.api — the live query-session facade.

*The* way to use the system as the service the paper describes: users
continuously submit, observe and retire correlated-range queries over a
live sensor network.

* :class:`Query` — fluent builder compiling to identified/abstract
  subscriptions (``.where(...).within(delta_t).near(location, delta_l)``);
* :class:`Session` — one live run (deployment + network + simulator +
  approach) with push-based ingestion (``session.ingest(...)``) and
  explicit time control (``advance`` / ``run_until`` / ``drain``);
* :class:`QueryHandle` — the subscription lifecycle handle returned by
  ``session.submit``: structured :class:`ComplexMatch` results, per-query
  :class:`QueryStats` traffic attribution, and ``cancel()``.

See ``docs/API.md`` for the full tour and ``examples/quickstart.py``
for a runnable one.
"""

from __future__ import annotations

from .handle import ComplexMatch, QueryHandle, QueryStats
from .query import Query, QueryError
from .session import Session

__all__ = [
    "ComplexMatch",
    "Query",
    "QueryError",
    "QueryHandle",
    "QueryStats",
    "Session",
]
