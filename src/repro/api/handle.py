"""Subscription lifecycle handles.

A :class:`QueryHandle` is what :meth:`repro.api.Session.submit`
returns: the user-side view of one live subscription.  It exposes the
delivered results as structured :class:`ComplexMatch` records (the
per-instance grouping the raw delivery log flattens away), per-query
traffic attribution (:class:`QueryStats`), and — the lifecycle part —
``cancel()``, which starts the network-wide reverse-path operator
removal and fences the query out of the oracle's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import math

from ..matching.spatial import grid_instance_exists, participating
from ..model.events import SimpleEvent
from ..model.matching import window_candidates
from ..model.operators import CorrelationOperator
from ..model.subscriptions import Subscription

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import Session


@dataclass(frozen=True)
class ComplexMatch:
    """One delivered match instance, reconstructed user-side.

    ``trigger`` is the maximum-timestamp member identifying the
    instance; ``events`` are every delivered simple event participating
    in a valid combination anchored at that trigger (timestamp-sorted).
    """

    sub_id: str
    trigger: SimpleEvent
    events: tuple[SimpleEvent, ...]

    @property
    def timestamp(self) -> float:
        """The instance's event time ``t = max_i t_i``."""
        return self.trigger.timestamp

    def __len__(self) -> int:
        return len(self.events)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(str(e) for e in self.events)
        return f"{self.sub_id}@t={self.timestamp:g}: [{body}]"


@dataclass(frozen=True, slots=True)
class QueryStats:
    """Per-query lifecycle accounting.

    ``registration_units`` / ``cancellation_units`` are the
    subscription-channel data units the network spent placing /
    retiring this query (zero while the respective phase has not
    settled); ``delivered_events`` and ``complex_deliveries`` come from
    the delivery log.
    """

    sub_id: str
    active: bool
    accepted: bool
    registration_units: int
    cancellation_units: int
    delivered_events: int
    complex_deliveries: int
    matches: int


class QueryHandle:
    """The live view of one submitted query.

    Handles stay usable after cancellation: the delivered history
    remains readable, only new deliveries stop.  Resubmitting the same
    query id starts a fresh incarnation with an empty log — from then
    on the old handle reads the new incarnation's (reset) history.
    """

    def __init__(
        self,
        session: "Session",
        subscription: Subscription,
        node_id: str,
        registration_units: int,
        accepted: bool,
    ) -> None:
        self._session = session
        self.subscription = subscription
        self.node_id = node_id
        self._registration_units = registration_units
        self._cancellation_units = 0
        self._accepted = accepted
        self._active = accepted
        self.cancelled_at: float | None = None
        # matches() replays the final local check over the delivered
        # history; the log only ever grows within one incarnation, so
        # the reconstruction is memoised on (log generation, delivered
        # count) — the generation ticks when an id reuse resets the log
        # (stats() reads it too, and must stay cheap to poll).
        self._matches_cache: tuple[tuple[int, int], list[ComplexMatch]] | None = None
        # stats() freezes at cancellation: the accounting of a retired
        # query must not keep accruing from result streams that were
        # still in flight when the teardown was issued.
        self._final_stats: QueryStats | None = None

    # ------------------------------------------------------------------
    @property
    def sub_id(self) -> str:
        return self.subscription.sub_id

    @property
    def active(self) -> bool:
        """Whether the query is currently placed (accepted, not cancelled)."""
        return self._active

    @property
    def accepted(self) -> bool:
        """False when registration was dropped for absent sources."""
        return self._accepted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "active" if self._active else ("cancelled" if self._accepted else "dropped")
        return f"QueryHandle({self.sub_id!r} at {self.node_id!r}, {state})"

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def events(self) -> list[SimpleEvent]:
        """Every delivered simple event, in (timestamp, key) order."""
        delivered = self._session.network.delivery.delivered(self.sub_id)
        return sorted(delivered.values(), key=lambda e: (e.timestamp, e.key))

    def matches(self) -> list[ComplexMatch]:
        """The delivered match instances, as structured records.

        Replays the matching semantics over the delivered subset (the
        same reconstruction the recall metric performs): an instance
        exists for every delivered event that anchors a valid complex
        event within the delivered events, with the spatial check routed
        through the grid-pruned final check.  An instance's ``events``
        are the members of valid combinations *containing* the trigger
        — a spatially disjoint combination that merely shares the
        trigger's window is a different instance and stays out of the
        record.  Instances are returned in trigger (timestamp, key)
        order.
        """
        delivery = self._session.network.delivery
        delivered = delivery.delivered(self.sub_id)
        cache_key = (delivery.generation(self.sub_id), len(delivered))
        if self._matches_cache is not None and self._matches_cache[0] == cache_key:
            return list(self._matches_cache[1])
        if not delivered:
            self._matches_cache = (cache_key, [])
            return []
        operator = self._root_operator()
        view = delivery.view(self.sub_id)
        out: list[ComplexMatch] = []
        for trigger in sorted(
            delivered.values(), key=lambda e: (e.timestamp, e.key)
        ):
            if operator.slot_for_event(trigger) is None:
                continue
            if not grid_instance_exists(operator, view, trigger):
                continue
            found = _instance_participants(operator, view, trigger)
            if not found:
                continue
            members = {e.key: e for events in found.values() for e in events}
            out.append(
                ComplexMatch(
                    self.sub_id,
                    trigger,
                    tuple(
                        sorted(
                            members.values(), key=lambda e: (e.timestamp, e.key)
                        )
                    ),
                )
            )
        self._matches_cache = (cache_key, out)
        return list(out)

    def stats(self) -> QueryStats:
        """Lifecycle accounting snapshot.

        Live while the query is placed; **frozen at the cancellation
        instant** once :meth:`cancel` succeeds — result streams still
        in flight at the teardown (or a later incarnation reusing the
        id) never accrue to a retired query's accounting.  The
        delivered *history* stays readable live via :meth:`events` /
        :meth:`matches`.
        """
        if self._final_stats is not None:
            return self._final_stats
        delivery = self._session.network.delivery
        return QueryStats(
            sub_id=self.sub_id,
            active=self._active,
            accepted=self._accepted,
            registration_units=self._registration_units,
            cancellation_units=self._cancellation_units,
            delivered_events=delivery.delivered_count(self.sub_id),
            complex_deliveries=delivery.complex_deliveries[self.sub_id],
            matches=len(self.matches()),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def cancel(self, settle: bool = True) -> bool:
        """Retire the query from the whole network.

        Starts the reverse-path operator removal (see
        ``docs/ARCHITECTURE.md``, "Query lifecycle"); with ``settle``
        (the default) the simulator runs to quiescence so the teardown
        reaches every node before returning, and the subscription-channel
        units it cost are recorded in :meth:`stats`.  Idempotent: a
        second call (or cancelling a dropped query) returns False.
        """
        if not self._active:
            return False
        cancelled, units = self._session._cancel(self, settle=settle)
        if cancelled:
            self._active = False
            self._cancellation_units = units
            self.cancelled_at = self._session.cancellations[self.sub_id]
            self._final_stats = self.stats()
        return cancelled

    # ------------------------------------------------------------------
    def _root_operator(self) -> CorrelationOperator:
        from ..metrics.oracle import oracle_operator  # local: avoid cycle

        return oracle_operator(self.subscription, self._session.deployment)


def _instance_participants(
    operator: CorrelationOperator, view, trigger: SimpleEvent
) -> dict[str, list[SimpleEvent]] | None:
    """Per-slot members of valid combinations *containing* ``trigger``.

    Like the reference ``match_at_trigger`` but with the trigger's slot
    pinned to the trigger itself: a complex event holds one member per
    slot, so any combination containing the trigger uses it there, and
    for finite ``delta_l`` every other member must lie within
    ``delta_l`` of it.  Callers have already established the instance
    exists (``grid_instance_exists``); ``None`` means a concurrent
    mutation emptied the window.
    """
    candidates = window_candidates(operator, view, trigger.timestamp)
    own = operator.slot_for_event(trigger)
    assert own is not None
    ordered = sorted(candidates)
    if math.isinf(operator.delta_l):
        return {
            slot_id: (
                [trigger] if slot_id == own.slot_id else candidates[slot_id]
            )
            for slot_id in ordered
        }
    delta_l = operator.delta_l
    lists = []
    for slot_id in ordered:
        if slot_id == own.slot_id:
            lists.append([trigger])
        else:
            lists.append(
                [
                    e
                    for e in candidates[slot_id]
                    if e.location.distance_to(trigger.location) < delta_l
                ]
            )
    if any(not lst for lst in lists):
        return None
    kept = participating(lists, delta_l)
    if kept is None:
        return None
    return dict(zip(ordered, kept))
