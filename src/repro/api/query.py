"""The fluent query builder of the live-session API.

A :class:`Query` accumulates range clauses plus temporal/spatial
correlation constraints and compiles to the reproduction's model
objects — an :class:`~repro.model.subscriptions.IdentifiedSubscription`
when every clause names a concrete sensor, an
:class:`~repro.model.subscriptions.AbstractSubscription` when every
clause names an attribute *type*.  Builders are immutable: every fluent
call returns a new query, so partially built queries can be shared and
extended without aliasing surprises::

    base = Query().within(5.0)
    freeze = base.where("s0001", -5.0, 5.0).where("s0002", -10.0, 10.0)
    storm = (
        base.where("wind_speed", 12.0, 40.0)
        .where("relative_humidity", 85.0, 100.0)
        .near(Location(10.0, 20.0), delta_l=200.0)
    )

Compilation (``Query.build``) needs a deployment for name resolution —
normally supplied by :meth:`repro.api.Session.submit`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from ..model.filters import AbstractFilter, IdentifiedFilter, SimpleFilter
from ..model.intervals import Interval
from ..model.locations import CircleRegion, Location, Region, bounding_rect
from ..model.subscriptions import (
    UNBOUNDED,
    AbstractSubscription,
    IdentifiedSubscription,
    Subscription,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..network.topology import Deployment

DEFAULT_DELTA_T = 5.0
"""Temporal correlation distance used when ``within`` is never called
(the paper's experiments use delta_t = 5 s throughout)."""


class QueryError(ValueError):
    """A query cannot compile against the session's deployment."""


@dataclass(frozen=True, slots=True)
class _Clause:
    """One range clause, not yet classified as sensor- or type-targeted."""

    target: str
    interval: Interval


@dataclass(frozen=True)
class Query:
    """Immutable fluent builder for correlated range queries.

    ``where`` accepts either a sensor id (concrete/identified clause) or
    an attribute type name (abstract clause); classification happens at
    build time against the deployment, and mixing the two flavours in
    one query is rejected.  ``within`` sets the temporal correlation
    distance delta_t, ``near`` the spatial constraint of abstract
    queries (region + delta_l).
    """

    name: str | None = None
    clauses: tuple[_Clause, ...] = ()
    delta_t: float | None = None
    delta_l: float = UNBOUNDED
    region: Region | None = None

    # ------------------------------------------------------------------
    # fluent surface
    # ------------------------------------------------------------------
    def named(self, name: str) -> "Query":
        """Set the subscription id (otherwise the session generates one)."""
        return replace(self, name=name)

    def where(self, target: str, lo: float, hi: float) -> "Query":
        """Add a range clause over a sensor id or an attribute type."""
        if lo > hi:
            raise QueryError(f"empty range [{lo:g}, {hi:g}] for {target!r}")
        if any(c.target == target for c in self.clauses):
            raise QueryError(f"duplicate clause for {target!r}")
        return replace(
            self, clauses=self.clauses + (_Clause(target, Interval(lo, hi)),)
        )

    def within(self, delta_t: float) -> "Query":
        """Require all members within ``delta_t`` of the latest one."""
        if not delta_t > 0:
            raise QueryError("delta_t must be positive")
        return replace(self, delta_t=delta_t)

    def near(
        self,
        where: Location | Region,
        delta_l: float = UNBOUNDED,
    ) -> "Query":
        """Constrain an abstract query spatially.

        ``where`` is either a :class:`Region` (used as the query's
        region ``L`` verbatim) or a :class:`Location` — then the region
        becomes the open ``delta_l``-disc around it (sensors further
        than ``delta_l`` from the point could never pairwise-correlate
        with ones at it anyway).  ``delta_l`` is the pairwise spatial
        correlation distance; omit it to bound the region only.
        """
        if not delta_l > 0:
            raise QueryError("delta_l must be positive (or math.inf)")
        if isinstance(where, Location):
            if math.isinf(delta_l):
                raise QueryError(
                    "near(location) needs a finite delta_l to derive a region; "
                    "pass a Region explicitly for unbounded correlation"
                )
            region: Region = CircleRegion(where, delta_l)
        elif isinstance(where, Region):
            region = where
        else:
            raise QueryError(f"near() needs a Location or Region, got {where!r}")
        return replace(self, region=region, delta_l=delta_l)

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def build(self, deployment: "Deployment", sub_id: str | None = None) -> Subscription:
        """Compile to a model subscription against ``deployment``.

        Each clause target is resolved against the deployment: a known
        sensor id makes an identified clause (the filter attribute is
        the sensor's measured attribute), a known attribute type makes
        an abstract clause.  All clauses must agree on the flavour.
        """
        if not self.clauses:
            raise QueryError("a query needs at least one where() clause")
        name = sub_id if sub_id is not None else self.name
        if name is None:
            raise QueryError("query has no name; use .named() or submit via a Session")
        delta_t = self.delta_t if self.delta_t is not None else DEFAULT_DELTA_T
        placements = {p.sensor_id: p for p in deployment.sensors}
        attributes = {p.attribute.name for p in deployment.sensors}
        sensor_clauses = [c for c in self.clauses if c.target in placements]
        abstract_clauses = [c for c in self.clauses if c.target in attributes]
        unknown = [
            c.target
            for c in self.clauses
            if c.target not in placements and c.target not in attributes
        ]
        if unknown:
            raise QueryError(
                f"unknown targets {unknown}: neither deployed sensor ids "
                "nor attribute types of this deployment"
            )
        if sensor_clauses and abstract_clauses:
            raise QueryError(
                "cannot mix sensor-targeted and attribute-typed clauses: "
                f"sensors {[c.target for c in sensor_clauses]} vs "
                f"attributes {[c.target for c in abstract_clauses]}"
            )
        if sensor_clauses:
            if self.region is not None or not math.isinf(self.delta_l):
                raise QueryError(
                    "near() applies to abstract (attribute-typed) queries only"
                )
            return IdentifiedSubscription(
                name,
                (
                    IdentifiedFilter(
                        c.target,
                        SimpleFilter(
                            placements[c.target].attribute.name, c.interval
                        ),
                    )
                    for c in sensor_clauses
                ),
                delta_t,
            )
        region = self.region
        if region is None:
            # Unconstrained abstract queries span the whole deployment.
            region = bounding_rect(
                (p.location for p in deployment.sensors), margin=1.0
            )
        return AbstractSubscription(
            name,
            (
                AbstractFilter(SimpleFilter(c.target, c.interval), region)
                for c in abstract_clauses
            ),
            delta_t,
            self.delta_l,
        )
