"""The live query session — the facade over deployment, network,
simulator and approach.

One :class:`Session` owns one simulated run end to end::

    session = Session.create(approach="fsf", nodes=24, groups=3, seed=11)
    handle = session.submit(
        Query().where("s0001", -5.0, 5.0).where("s0002", -10.0, 10.0).within(5.0)
    )
    session.ingest("s0001", 1.5)
    session.ingest("s0002", -3.0, timestamp=session.now + 1.5)
    session.drain()
    for match in handle.matches():
        print(match)
    handle.cancel()

Ingestion is *push-based*: external sources call :meth:`Session.ingest`
with readings and the session turns them into simple events on the
right node — no agenda lambdas, no manual event construction.  Time is
driven explicitly (:meth:`advance` / :meth:`run_until` / :meth:`drain`),
so a session composes with replay harnesses and interactive use alike.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..model.events import SimpleEvent
from ..model.subscriptions import Subscription
from ..network.network import Network
from ..network.topology import Deployment, build_deployment
from ..protocols.base import Approach
from ..sim import Simulator
from .handle import QueryHandle
from .query import Query, QueryError


class Session:
    """A live run of one approach on one deployment.

    Build one with :meth:`create` (the common path — it assembles
    deployment, simulator, network and nodes, attaches and advertises
    every sensor) or wrap pre-built objects with the constructor for
    advanced setups (custom topologies, mid-run adoption).
    """

    def __init__(
        self,
        network: Network,
        deployment: Deployment,
        approach: Approach | None = None,
    ) -> None:
        self.network = network
        self.deployment = deployment
        self.approach = approach
        self._placements = {p.sensor_id: p for p in deployment.sensors}
        self._ingest_seq: dict[str, int] = {}
        self._query_counter = 0
        self.handles: dict[str, QueryHandle] = {}
        self.activations: dict[str, float] = {}
        self.cancellations: dict[str, float] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        approach: str | Approach = "fsf",
        nodes: int = 24,
        groups: int = 3,
        seed: int | None = None,
        matching: str = "incremental",
        latency: float = 0.05,
        delta_t: float = 5.0,
        deployment: Deployment | None = None,
        fsf_config=None,
        faults=None,
        reliability=None,
        answer_mode: str = "exact",
        sketch=None,
    ) -> "Session":
        """Assemble a ready-to-use session.

        ``approach`` is a registry key (``"fsf"``, ``"naive"``,
        ``"operator_placement"``, ``"multijoin"``, ``"centralized"``) or
        an :class:`Approach` instance; ``matching`` selects the node
        matcher (the ``"incremental"`` engine, the ``"columnar"``
        shared-lane engine or the ``"reference"`` oracle);
        ``deployment`` overrides the generated topology.
        ``seed`` defaults to the deployment's own seed when one is
        passed (so a pre-built deployment reproduces the experiment
        runner's simulator streams), else 0.  Sensors are attached and
        their advertisements flooded before the session is returned.
        ``faults``/``reliability`` switch the network onto the seeded
        unreliable transport (:mod:`repro.network.faults`) and the
        opt-in ack/refresh layer (:mod:`repro.network.reliability`).
        ``answer_mode="approximate"`` (optionally with a
        :class:`~repro.sketches.SketchConfig`) turns on the broker
        sketch lane: single-slot range queries are answered from merged
        q-digests with a certified error bracket instead of raw events
        (:meth:`approx_answers`); the default ``"exact"`` is
        machine-checked bit-identical to a session created without the
        argument.
        """
        from ..protocols.registry import all_approaches  # local: avoid cycle

        if isinstance(approach, str):
            approaches = all_approaches(fsf_config)
            if approach not in approaches:
                raise ValueError(
                    f"unknown approach {approach!r}; "
                    f"known: {sorted(approaches)}"
                )
            resolved = approaches[approach]
        else:
            resolved = approach
        if answer_mode == "approximate" and not resolved.supports_sketches:
            raise ValueError(
                f"approach {resolved.key!r} does not support the "
                "approximate answer lane (it has no per-subscription "
                "event forwarding to trade for digest pushes)"
            )
        if seed is None:
            seed = deployment.seed if deployment is not None else 0
        if deployment is None:
            deployment = build_deployment(nodes, groups, seed=seed)
        network = Network(
            deployment,
            Simulator(seed=seed),
            latency=latency,
            delta_t=delta_t,
            matching=matching,
            faults=faults,
            reliability=reliability,
            answer_mode=answer_mode,
            sketch=sketch,
        )
        resolved.populate(network)
        network.attach_all_sensors()
        network.run_to_quiescence()
        return cls(network, deployment, resolved)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time of the underlying simulator."""
        return self.network.sim.now

    def advance(self, dt: float) -> float:
        """Run the simulation ``dt`` time units forward; returns ``now``."""
        if dt < 0:
            raise ValueError(f"cannot advance by negative dt {dt:g}")
        return self.network.sim.run(until=self.now + dt)

    def run_until(self, t: float) -> float:
        """Run the simulation up to absolute time ``t``; returns ``now``."""
        if t < self.now:
            raise ValueError(f"cannot run to {t:g}; now is {self.now:g}")
        return self.network.sim.run(until=t)

    def drain(self) -> float:
        """Run to quiescence (every scheduled message processed)."""
        return self.network.run_to_quiescence()

    # ------------------------------------------------------------------
    # push-based ingestion
    # ------------------------------------------------------------------
    def ingest(
        self,
        sensor_id: str,
        value: float,
        timestamp: float | None = None,
        seq: int | None = None,
    ) -> SimpleEvent:
        """Push one sensor reading into the network.

        The reading becomes a :class:`SimpleEvent` of the sensor's
        attribute/location, published at the sensor's hosting node —
        immediately when ``timestamp`` is now or omitted or in the past
        (late arrivals are the store's business: within the validity
        window they still correlate), scheduled on the agenda when it
        lies in the future.  ``seq`` defaults to a per-sensor counter;
        pass explicit sequence numbers when mixing pushed readings with
        a pre-materialised replay of the same sensors.  Returns the
        event (its ``key`` identifies it in delivered matches).
        """
        placement = self._placements.get(sensor_id)
        if placement is None:
            raise KeyError(f"unknown sensor {sensor_id!r}")
        if seq is None:
            seq = self._ingest_seq.get(sensor_id, 0)
            self._ingest_seq[sensor_id] = seq + 1
        when = self.now if timestamp is None else timestamp
        event = SimpleEvent(
            sensor_id,
            placement.attribute.name,
            placement.location,
            value,
            timestamp=when,
            seq=seq,
        )
        if when <= self.now:
            self.network.publish(placement.node_id, event)
        else:
            self.network.sim.at(
                when,
                lambda: self.network.publish(placement.node_id, event),
            )
        return event

    def ingest_events(self, events: Iterable[SimpleEvent]) -> int:
        """Schedule pre-built events (replay adoption); returns the count.

        Events must carry timestamps at or after ``now``; they publish
        at their own timestamps on their sensors' hosting nodes.
        """
        entries = []
        for event in events:
            placement = self._placements.get(event.sensor_id)
            if placement is None:
                raise KeyError(f"unknown sensor {event.sensor_id!r}")
            entries.append(
                (
                    event.timestamp,
                    lambda e=event, p=placement: self.network.publish(p.node_id, e),
                )
            )
        self.network.sim.schedule_timeline(entries)
        return len(entries)

    # ------------------------------------------------------------------
    # subscription lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        query: Query | Subscription,
        at: str | None = None,
        settle: bool = True,
        plan: object | None = None,
    ) -> QueryHandle:
        """Register a query and return its lifecycle handle.

        ``query`` is a fluent :class:`Query` (compiled against this
        session's deployment) or an already-built model subscription.
        ``at`` names the user's node (default: the deployment's first
        user/relay node).  With ``settle`` (the default) any in-flight
        activity is drained first and the simulator then runs to
        quiescence so the operator placement completes before
        returning — the paper's sequential registration protocol — and
        the handle's ``registration_units`` are attributable to this
        registration alone; pass ``settle=False`` to flood several
        registrations concurrently (their units are then 0: concurrent
        floods cannot be told apart on the shared meter).

        Re-entrancy: submitting from *inside* the event loop — a
        delivery callback, a scheduled action, mid-``drain`` — cannot
        settle (the simulator's ``run`` is not reentrant) and raises
        :class:`QueryError` up front; ``settle=False`` is safe there
        and floods the registration asynchronously.

        ``plan`` routes the query's operator pieces along a compiled
        :class:`~repro.placement.plan.PlacementPlan` instead of the
        approach's heuristic (see ``WorkloadProgram(placement=
        "compiled")``); ``None`` — the default — is the historical
        registration, bit-identical to pre-plan sessions.
        """
        if plan is not None and (
            self.approach is not None
            and not self.approach.supports_planned_placement
        ):
            raise QueryError(
                f"approach {self.approach.key!r} does not support "
                "compiled placement plans"
            )
        if settle and self.network.sim.running:
            raise QueryError(
                "cannot submit with settle=True from inside the event loop "
                "(a delivery callback or mid-drain): the simulator cannot "
                "re-enter run(); pass settle=False to flood the "
                "registration asynchronously"
            )
        if isinstance(query, Query):
            sub_id = query.name
            if sub_id is None:
                sub_id = self._fresh_query_id()
            subscription = query.build(self.deployment, sub_id=sub_id)
        else:
            subscription = query
        previous = self.handles.get(subscription.sub_id)
        if previous is not None and previous.active:
            raise QueryError(
                f"query id {subscription.sub_id!r} is already live in this "
                "session; cancel it first or use a fresh name"
            )
        # Validate everything before touching session state: a failed
        # submit must leave the previous incarnation intact.
        node_id = at if at is not None else self.default_user_node
        if node_id not in self.network.nodes:
            raise KeyError(f"unknown node {node_id!r}")
        if settle:
            self.network.run_to_quiescence()
        if previous is not None:
            # A reused id is a fresh incarnation: the old incarnation's
            # cancellation fence and delivered log are dropped, and the
            # activation instant recorded below fences the oracle's
            # truth to instances *triggered* from now on.  Like any
            # newly placed query, the incarnation may still correlate
            # with earlier events that remain valid in the stores — the
            # matcher backfill — and the oracle counts those members.
            self.cancellations.pop(subscription.sub_id, None)
            self.network.delivery.reset(subscription.sub_id)
        self.activations[subscription.sub_id] = self.now
        before = self.network.meter.snapshot()
        dropped_before = len(self.network.dropped_subscriptions)
        self.network.register_subscription(node_id, subscription, plan=plan)
        if settle:
            self.network.run_to_quiescence()
        accepted = len(self.network.dropped_subscriptions) == dropped_before
        units = (
            self.network.meter.snapshot().minus(before).subscription_units
            if settle
            else 0
        )
        handle = QueryHandle(self, subscription, node_id, units, accepted)
        self.handles[subscription.sub_id] = handle
        return handle

    def _fresh_query_id(self) -> str:
        """The next auto-generated id not colliding with a known one."""
        while True:
            sub_id = f"q{self._query_counter:05d}"
            self._query_counter += 1
            if sub_id not in self.handles:
                return sub_id

    @property
    def default_user_node(self) -> str:
        """Where queries land when ``submit`` gets no ``at``."""
        users = self.deployment.user_nodes
        if not users:
            raise QueryError("deployment has no user nodes")
        return users[0]

    def _cancel(self, handle: QueryHandle, settle: bool) -> tuple[bool, int]:
        """Backend of :meth:`QueryHandle.cancel`.

        With ``settle``, in-flight activity is drained first so the
        recorded ``cancellation_units`` are attributable to this
        teardown alone (pending deliveries land before the cancel takes
        effect, which is also what the oracle fence assumes).  Like
        :meth:`submit`, settling from inside the event loop is
        impossible and raises :class:`QueryError`.
        """
        if settle and self.network.sim.running:
            raise QueryError(
                "cannot cancel with settle=True from inside the event loop "
                "(a delivery callback or mid-drain): the simulator cannot "
                "re-enter run(); pass settle=False to flood the teardown "
                "asynchronously"
            )
        if settle:
            self.network.run_to_quiescence()
        issued_at = self.now
        before = self.network.meter.snapshot()
        cancelled = self.network.cancel_subscription(
            handle.node_id, handle.sub_id
        )
        if not cancelled:
            return False, 0
        if settle:
            self.network.run_to_quiescence()
        self.cancellations[handle.sub_id] = issued_at
        units = (
            self.network.meter.snapshot().minus(before).subscription_units
            if settle
            else 0
        )
        return True, units

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def traffic(self):
        """The run's traffic meter (see :class:`TrafficMeter`)."""
        return self.network.meter

    @property
    def delivery(self):
        """The run's delivery log."""
        return self.network.delivery

    def approx_answers(self):
        """Certified approximate answers of the sketch lane.

        ``{sub_id: ApproxAnswer}`` for every sketch-eligible query whose
        push tree has completed at least one round; empty in exact mode
        (and before the first scheduled round).
        """
        if self.network.sketches is None:
            return {}
        return dict(self.network.sketches.query_answers())

    def active_queries(self) -> list[str]:
        """Ids of the queries currently live."""
        return sorted(
            sub_id for sub_id, handle in self.handles.items() if handle.active
        )

    def truth(
        self,
        events: Iterable[SimpleEvent],
        method: str | None = None,
        churn=None,
    ) -> Mapping[str, object]:
        """Oracle ground truth for this session's queries over ``events``.

        Each query's truth is fenced to its lifetime — from its
        ``submit()`` instant to its ``cancel()`` instant, exactly like
        departed sensors (see
        :func:`repro.metrics.oracle.compute_truth`) — so resubmitted
        ids never inherit a previous incarnation's truth.
        """
        from ..metrics.oracle import compute_truth  # local: avoid cycle

        return compute_truth(
            [h.subscription for h in self.handles.values()],
            self.deployment,
            list(events),
            method=method,
            churn=churn,
            cancellations=dict(self.cancellations),
            activations=dict(self.activations),
        )
