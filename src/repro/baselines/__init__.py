"""The four comparison systems of the evaluation (Sections III and VI)."""

from .centralized import CentralizedNode, centralized_approach
from .multijoin import MultiJoinNode, multijoin_approach
from .naive import NaiveNode, naive_approach
from .operator_placement import (
    OperatorPlacementNode,
    operator_placement_approach,
)

__all__ = [
    "CentralizedNode",
    "MultiJoinNode",
    "NaiveNode",
    "OperatorPlacementNode",
    "centralized_approach",
    "multijoin_approach",
    "naive_approach",
    "operator_placement_approach",
]
