"""Centralized approach (Section VI).

Everything converges on the network's centre node ("the node with the
minimum pairwise distance to all other nodes"):

* subscribers unicast their subscriptions to the centre over the
  shortest path — the by-far lowest subscription load in Fig. 6;
* every sensor unicasts every reading to the centre (the *fixed*
  traffic component that dominates Fig. 7 regardless of selectivity);
* the centre performs all matching and unicasts per-subscription result
  sets back to the subscribers (full result sets, no sharing).

Advertisement propagation does not happen at all (Table II's
surroundings): routing uses the unique tree paths directly, which is
precisely the global knowledge the distributed approaches do without.
"""

from __future__ import annotations

from ..model.events import EventKey, SimpleEvent
from ..model.operators import CorrelationOperator, root_operator
from ..model.subscriptions import (
    AbstractSubscription,
    IdentifiedSubscription,
    Subscription,
)
from ..network.messages import (
    AdvertisementMessage,
    EventMessage,
    OperatorMessage,
    UnsubscribeMessage,
)
from ..network.network import Network
from ..network.node import LOCAL, Node
from ..protocols.base import Approach


class CentralizedNode(Node):
    """Subscriber / sensor / centre behaviour in one class.

    A node acts as the centre iff it *is* the network's centre; other
    nodes only inject (unicast toward the centre) and receive results.
    """

    def __init__(self, node_id: str, network: "Network") -> None:
        super().__init__(node_id, network)
        self._departed_once: set[str] = set()
        # Cancelled local subscriptions: result-set streams still in
        # flight from the centre must not reach the departed user.
        self._cancelled_local: set[str] = set()

    # ------------------------------------------------------------------
    # no advertisement flooding in the centralized scheme; churn
    # transitions unicast to the centre instead (the centre holds all
    # state, so it is the only other node that must fence/unfence)
    # ------------------------------------------------------------------
    def attach_sensor(self, advertisement) -> None:
        self.store.unfence_sensor(advertisement.sensor_id)
        self.ads.add_local(advertisement)
        if advertisement.sensor_id in self._departed_once:
            self._departed_once.discard(advertisement.sensor_id)
            if self.node_id != self.network.center:
                self.network.unicast(
                    self.node_id,
                    self.network.center,
                    AdvertisementMessage(advertisement),
                )

    def detach_sensor(self, sensor_id: str) -> None:
        advertisement = self.ads.get(sensor_id)
        if advertisement is None:
            return
        self.ads.remove(sensor_id)
        self.fence_sensor_state(sensor_id)
        self._departed_once.add(sensor_id)
        if self.node_id != self.network.center:
            self.network.unicast(
                self.node_id,
                self.network.center,
                AdvertisementMessage(advertisement, retract=True),
            )

    def handle_advertisement(self, advertisement, origin: str) -> None:
        # Only re-join notices arrive here, unicast to the centre.
        assert self.node_id == self.network.center
        self.store.unfence_sensor(advertisement.sensor_id)

    def handle_retraction(self, advertisement, origin: str) -> None:
        assert self.node_id == self.network.center
        self.fence_sensor_state(advertisement.sensor_id)

    # ------------------------------------------------------------------
    # subscription side
    # ------------------------------------------------------------------
    def build_root_operator(
        self, subscription: Subscription
    ) -> CorrelationOperator | None:
        """Resolve with global knowledge (the centre knows everything)."""
        if isinstance(subscription, IdentifiedSubscription):
            known = {s.sensor_id for s in self.network.deployment.sensors}
            if not subscription.sensor_ids <= known:
                return None
            return root_operator(subscription, self.node_id)
        assert isinstance(subscription, AbstractSubscription)
        sensors: dict[str, list[str]] = {}
        for clause in subscription.clauses:
            hits = [
                s.sensor_id
                for s in self.network.deployment.sensors
                if s.attribute.name == clause.attribute
                and clause.region.contains(s.location)
            ]
            if not hits:
                return None
            sensors[clause.attribute] = sorted(hits)
        return root_operator(subscription, self.node_id, sensors)

    def subscribe(self, subscription: Subscription) -> None:
        root = self.build_root_operator(subscription)
        if root is None:
            self.network.dropped_subscriptions.append(subscription.sub_id)
            return
        self._cancelled_local.discard(subscription.sub_id)
        self.local_subscriptions.append((subscription, root))
        # Reverse-path memory, reused by soft-state refresh: the root
        # travelled to the centre, so refresh re-offers it there.
        self._forwarded_subs.setdefault(subscription.sub_id, {}).setdefault(
            self.network.center, {}
        )[root.op_id] = root
        self.network.unicast(
            self.node_id, self.network.center, OperatorMessage(root)
        )

    def handle_operator(self, operator: CorrelationOperator, origin: str) -> None:
        # Only the centre receives operators (via unicast).
        assert self.node_id == self.network.center
        self.store_for(LOCAL).add(operator, covered=False)

    def retire_subscription(self, sub_id: str) -> None:
        """Cancellation: tell the centre to drop the operator.

        Mirrors :meth:`subscribe` — a single unicast over the shortest
        path, charged like the operator it retires.  The subscriber also
        starts suppressing in-flight result streams for the cancelled
        subscription (the user is gone; late results are dropped at the
        edge, not delivered).
        """
        self._cancelled_local.add(sub_id)
        self._forwarded_subs.pop(sub_id, None)
        if self.node_id == self.network.center:
            self.handle_unsubscribe(sub_id, LOCAL)
        else:
            self.network.unicast(
                self.node_id, self.network.center, UnsubscribeMessage(sub_id)
            )

    def handle_unsubscribe(self, sub_id: str, origin: str) -> None:
        # Only the centre holds operator state; no coverage, no
        # propagation — removal is the whole teardown.
        assert self.node_id == self.network.center
        store = self.stores.get(LOCAL)
        if store is not None:
            store.remove_subscription(sub_id)

    # ------------------------------------------------------------------
    # reliability layer
    # ------------------------------------------------------------------
    def refresh_soft_state(self, epoch: int, expiry_rounds: int) -> None:
        """Centralized refresh: re-offer each live root to the centre.

        There is no advertisement soft state to expire or re-flood
        (Table II: no advertisement propagation at all); the only state
        a crashed centre loses that this node can restore is the
        operators it sent there, so refresh re-unicasts them.  The
        centre ignores copies it still holds.
        """
        for sub_id in sorted(self._forwarded_subs):
            per_target = self._forwarded_subs[sub_id]
            for target in sorted(per_target):
                pieces = per_target[target]
                for op_id in sorted(pieces):
                    self.network.unicast(
                        self.node_id,
                        target,
                        OperatorMessage(pieces[op_id], refresh_epoch=epoch),
                    )

    def on_crash(self) -> None:
        self._departed_once = set()
        self._cancelled_local = set()

    # ------------------------------------------------------------------
    # event side
    # ------------------------------------------------------------------
    def publish(self, event: SimpleEvent) -> None:
        if self.node_id == self.network.center:
            self._match_at_center(event)
        else:
            self.network.unicast(
                self.node_id, self.network.center, EventMessage(event)
            )

    def handle_event(
        self, event: SimpleEvent, origin: str, streams: tuple[str, ...]
    ) -> None:
        if streams:
            # A result-set delivery addressed to a local subscriber;
            # streams of cancelled subscriptions are dropped at the edge.
            for sub_id in streams:
                if sub_id not in self._cancelled_local:
                    self.network.delivery.record_events(sub_id, [event])
            return
        # A raw sensor reading arriving at the centre.
        assert self.node_id == self.network.center
        self._match_at_center(event)

    def _match_at_center(self, event: SimpleEvent) -> None:
        if not self.ingest(event):
            return
        store = self.stores.get(LOCAL)
        if store is None:
            return
        for operator, matcher in store.matched_for_sensor(event.sensor_id, False):
            if matcher is not None:
                participants = matcher.matches_involving(event)
            else:
                participants = self.matches_involving(operator, event)
            if not participants:
                continue
            self.network.delivery.record_complex(operator.subscription_id)
            outgoing: dict[EventKey, SimpleEvent] = {}
            tag_base = operator.op_id
            for events in participants.values():
                for member in events:
                    if not self.was_sent(member.key, tag_base):
                        self.mark_sent(member.key, tag_base)
                        outgoing[member.key] = member
            for _, member in sorted(outgoing.items()):
                self.network.unicast(
                    self.node_id,
                    operator.subscriber,
                    EventMessage(member, streams=(operator.subscription_id,)),
                )


def centralized_approach() -> Approach:
    return Approach(
        key="centralized",
        name="Centralized",
        subscription_filtering="None",
        subscription_splitting="None",
        event_propagation="Full result sets",
        make_node=CentralizedNode,
        floods_advertisements=False,
        # Registration unicasts to the centre — there is no operator
        # tree for a compiled plan to route.
        supports_planned_placement=False,
        # Events stream to the centre regardless of who subscribed, so
        # suppressing per-subscription forwarding saves nothing — the
        # approximate lane has no traffic to trade error against.
        supports_sketches=False,
    )
