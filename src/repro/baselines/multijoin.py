"""Distributed multi-join processing (Section III-B).

The paper distributes Chandramouli & Yang's binary-join technique [7]:

* subscriptions travel *whole* from the user along the common reverse
  advertisement path, pair-wise covering filtered at every hop;
* at the **first node where the path diverges** the multi-join is split
  into **binary joins** — each stream becomes the *main* of one binary
  join sanctioned by a *filtering* stream (ring pairing) — and the
  individual simple filters are sent onward to the data sources ("the
  divergence node acts in a way as the centralized server" of [7]);
* raw events flow from the sensors to the divergence node over shared
  single-attribute streams (one unit per event per link);
* the divergence node forwards a main event toward the user as soon as
  its filtering stream sanctions it — a *pairwise* check that admits
  **false positives** for joins over three or more attributes, which
  "are forwarded all the way to the user and create additional network
  traffic";
* above the divergence node, relays forward by value-filter acceptance
  against the stored whole multi-joins (publish/subscribe, per-link
  deduplicated), never re-running the full correlation — false
  positives reach the user by design.  Cross-subscription leakage at
  relays (an event sanctioned for one subscription passing another's
  value filter) adds further false positives but never loses a true
  result; recall stays 100%.

Every stored operator carries a *role* describing its job on the event
path: ``transit`` (whole multi-join, relay by value filter), ``split``
(whole multi-join at its divergence node — inert, its binary joins do
the work), ``join`` (binary join evaluated here), ``leaf`` (simple
filter pulling raw events toward the divergence node).
"""

from __future__ import annotations

from ..model.advertisements import AdvertisementTable
from ..model.events import SimpleEvent
from ..model.operators import CorrelationOperator
from ..network.network import Network
from ..network.node import (
    LOCAL,
    LifecycleSeq,
    Node,
    StoredOperator,
    SubscriptionStore,
    insert_by_seq,
)
from ..protocols.base import Approach
from ..subsumption.pairwise import find_cover

TRANSIT = "transit"
SPLIT = "split"
JOIN = "join"
LEAF = "leaf"


class _DispatchRecord:
    """One simple filter considered for dispatch toward the sensors.

    ``sent=False`` marks a filter deduplicated against an earlier
    dispatched cover; keeping the unsent candidates (with their arrival
    rank) lets query cancellation re-dispatch them when their cover is
    removed.
    """

    __slots__ = ("seq", "operator", "sent")

    def __init__(self, seq: LifecycleSeq, operator: CorrelationOperator, sent: bool) -> None:
        self.seq = seq
        self.operator = operator
        self.sent = sent


class MultiJoinNode(Node):
    """Binary-join splitting at divergence nodes, roles on the event path."""

    def __init__(self, node_id: str, network: Network) -> None:
        super().__init__(node_id, network)
        self.roles: dict[str, str] = {}
        self._ring_cache: dict[str, list[CorrelationOperator]] = {}
        # Simple filters considered for dispatch toward the sensors, per
        # origin — used to pair-wise deduplicate the per-binary-join
        # filter dispatch (same-signature streams are shared).
        self._dispatched_filters: dict[str, list[_DispatchRecord]] = {}

    def on_crash(self) -> None:
        # Roles, ring pairings and the dispatch ledger all derive from
        # the stored operators, which a crash just dropped.
        self.roles = {}
        self._ring_cache = {}
        self._dispatched_filters = {}

    # ------------------------------------------------------------------
    # subscription side
    # ------------------------------------------------------------------
    def handle_operator(self, operator: CorrelationOperator, origin: str) -> None:
        store = self.store_for(origin)
        if find_cover(operator, store.same_signature_uncovered(operator)):
            store.add(operator, covered=True)
            return
        record = store.add(operator, covered=False)
        self._route_uncovered(record, origin, store)

    def _route_uncovered(
        self, record: StoredOperator, origin: str, store: SubscriptionStore
    ) -> None:
        """Place an (already stored) uncovered operator on the event path.

        Runs at arrival and again when cancellation repair restores a
        covered operator: assigns its role and forwards/splits exactly
        as the arrival branch of the protocol would.
        """
        operator = record.operator
        if operator.is_simple:
            self.roles[operator.op_id] = LEAF
            self._forward_split(operator, origin)
            return
        if operator.is_binary_join:
            # Only reachable via repair: a binary join stored covered at
            # its divergence node whose cover was cancelled.
            self.roles[operator.op_id] = JOIN
            self._dispatch_filters(operator, origin)
            return
        directions = self.ads.partition_by_origin(operator.sensors)
        if origin != LOCAL:
            directions.pop(origin, None)
        if len(directions) == 1 and LOCAL not in directions:
            # Single onward path: keep the multi-join whole.
            self.roles[operator.op_id] = TRANSIT
            (neighbor,) = directions
            piece = operator.project_sensors(directions[neighbor])
            if piece is not None:
                self.send_operator(neighbor, piece)
            return
        # First divergence: split into binary joins here.
        self.roles[operator.op_id] = SPLIT
        for join in operator.binary_joins():
            seq = self._seq_source.next()
            candidates = [
                op
                for op in store.uncovered_before(seq)
                if op.signature == join.signature
            ]
            if find_cover(join, candidates):
                store.add(join, covered=True, seq=seq)
                continue
            store.add(join, covered=False, seq=seq)
            self.roles[join.op_id] = JOIN
            self._dispatch_filters(join, origin)

    def _dispatch_filters(self, join: CorrelationOperator, origin: str) -> None:
        """Send the join's individual simple filters toward the sensors.

        Identical or covered filters of previously processed binary
        joins (from the same origin) are shared instead of re-sent —
        single-attribute streams are deduplicated by design.  Skipped
        filters are remembered unsent so cancellation of their cover can
        re-dispatch them.
        """
        dispatched = self._dispatched_filters.setdefault(origin, [])
        for slot in join.slots:
            simple = join.project([slot.slot_id])
            seq = self._seq_source.next()
            covers = [r.operator for r in dispatched if r.sent and r.seq < seq]
            record = _DispatchRecord(seq, simple, find_cover(simple, covers) is None)
            insert_by_seq(dispatched, record)
            if record.sent:
                self._forward_split(simple, origin)

    def _forward_split(self, operator: CorrelationOperator, origin: str) -> None:
        self.forward_split(operator, origin)

    # ------------------------------------------------------------------
    # query cancellation
    # ------------------------------------------------------------------
    def handle_unsubscribe(self, sub_id: str, origin: str) -> None:
        dispatched = self._dispatched_filters.get(origin)
        removed_dispatch = False
        if dispatched:
            kept = [
                r for r in dispatched if r.operator.subscription_id != sub_id
            ]
            removed_dispatch = len(kept) != len(dispatched)
            if removed_dispatch:
                self._dispatched_filters[origin] = kept
        super().handle_unsubscribe(sub_id, origin)
        if removed_dispatch:
            self._repair_dispatched(origin)

    def on_operator_removed(self, operator: CorrelationOperator) -> None:
        """Clear the operator's role and tear down its on-demand ring."""
        self.roles.pop(operator.op_id, None)
        joins = self._ring_cache.pop(operator.op_id, None)
        if joins and self.matching is not None:
            for join in joins:
                self.matching.release(join)

    def on_operator_uncovered(
        self, record: StoredOperator, origin: str, store: SubscriptionStore
    ) -> None:
        self._route_uncovered(record, origin, store)

    def _repair_dispatched(self, origin: str) -> None:
        """Re-dispatch unsent simple filters whose cover was removed."""
        for record in list(self._dispatched_filters.get(origin, ())):
            if record.sent:
                continue
            dispatched = self._dispatched_filters[origin]
            covers = [
                r.operator for r in dispatched if r.sent and r.seq < record.seq
            ]
            if find_cover(record.operator, covers) is None:
                record.sent = True
                self._forward_split(record.operator, origin)

    # ------------------------------------------------------------------
    # event side
    # ------------------------------------------------------------------
    def handle_event(
        self, event: SimpleEvent, origin: str, streams: tuple[str, ...]
    ) -> None:
        if not self.ingest(event):
            return
        self._deliver_local(event)
        for neighbor in self.neighbors:
            if neighbor == origin:
                continue
            store = self.stores.get(neighbor)
            if store is None:
                continue
            outgoing: dict = {}
            for operator in store.ops_for_sensor(event.sensor_id, False):
                role = self.roles.get(operator.op_id, TRANSIT)
                if role == SPLIT:
                    continue  # its binary joins act instead
                if role == LEAF:
                    # Raw stream toward the divergence node: value
                    # filter only — joins happen there, not below.
                    if operator.accepts_some(event):
                        outgoing[event.key] = event
                    continue
                # JOIN (a binary join evaluated here) or TRANSIT (a
                # whole multi-join relayed toward the user): sanction
                # main events by their ring-filtering stream.  Transit
                # relays re-run the same *pairwise* checks over what
                # reaches them — false positives of the binary-join
                # approximation keep flowing to the user, true matches
                # always pass, and nothing leaks across subscriptions.
                if role == JOIN:
                    joins = [operator]
                else:
                    joins = self._ring_cache.get(operator.op_id)
                    if joins is None:
                        joins = operator.binary_joins()
                        self._ring_cache[operator.op_id] = joins
                for join in joins:
                    if not join.accepts_some(event):
                        continue
                    participants = self.matches_involving(join, event)
                    if not participants:
                        continue
                    assert join.main_slot is not None
                    for member in participants.get(join.main_slot, ()):
                        outgoing[member.key] = member
            for key, member in sorted(outgoing.items()):
                if not self.was_sent(key, neighbor):
                    self.mark_sent(key, neighbor)
                    self.send_event(neighbor, member)

    def _deliver_local(self, event: SimpleEvent) -> None:
        """User-side delivery: value-filter acceptance (false positives
        included, as the paper describes), plus exact complex matching
        for the complex-delivery counter."""
        for subscription, root, _matcher in self._local_by_sensor.get(
            event.sensor_id, ()
        ):
            if root.accepts_some(event):
                self.network.delivery.record_events(subscription.sub_id, [event])
        self.deliver_local_matches(event)


def multijoin_approach() -> Approach:
    return Approach(
        key="multijoin",
        name="Distributed multi-join",
        subscription_filtering="Pair wise",
        subscription_splitting="Binary joins",
        event_propagation="Per neighbor",
        make_node=MultiJoinNode,
        # The ring/role state machine is built inside handle_operator;
        # plan-routed pieces would bypass it and orphan the dispatch
        # ledger.
        supports_planned_placement=False,
    )
