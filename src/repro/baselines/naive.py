"""Naive approach — the lower-bound baseline (Section VI).

"Forwards all received queries (no filtering) and constructs result
sets per query (no optimization for result set overlap)."  Splitting is
still the natural *simple* splitting along diverging advertisement
paths (Table II), so the comparison isolates the value of filtering and
of shared event dissemination rather than of routing.
"""

from __future__ import annotations

from ..model.events import SimpleEvent
from ..model.operators import CorrelationOperator
from ..network.network import Network
from ..network.node import Node
from ..protocols.base import Approach


class NaiveNode(Node):
    """Stores and forwards everything; one result stream per operator."""

    def handle_operator(self, operator: CorrelationOperator, origin: str) -> None:
        self.store_for(origin).add(operator, covered=False)
        self.forward_split(operator, origin)

    def handle_event(
        self, event: SimpleEvent, origin: str, streams: tuple[str, ...]
    ) -> None:
        if not self.ingest(event):
            return
        self.deliver_local_matches(event)
        # One result set per stored operator; overlapping subscriptions
        # pay once each (the redundancy the paper's metrics expose).
        self.stream_forward(event, sender=origin, include_covered=False)


def naive_approach() -> Approach:
    return Approach(
        key="naive",
        name="Naive approach",
        subscription_filtering="None",
        subscription_splitting="Simple",
        event_propagation="Full result sets",
        make_node=NaiveNode,
    )
