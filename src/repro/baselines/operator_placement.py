"""Distributed operator placement (Section III-A).

Classic operator-placement techniques build global query plans; the
paper's adaptation keeps only local interaction: query plans follow the
reverse advertisement paths (so streams are processed on nodes that
would relay them anyway), operators are split where those paths
diverge, and *pair-wise* covering detection drops operators entirely
covered by a previously stored one.

Result sets remain per-operator ("each operator generates its own
result set") — this is the redundancy the event-load experiments
penalise.  An operator covered at some node still receives its own
result stream *from that node onward*: the covering operator's stream
reaches the coverage node, where the covered operator's (smaller)
stream is re-derived and forwarded separately toward its user — the
"placing the more restrictive operator downstream from the covering
operator" construction of Section III-A.
"""

from __future__ import annotations

from ..model.events import SimpleEvent
from ..model.operators import CorrelationOperator
from ..network.network import Network
from ..network.node import Node
from ..protocols.base import Approach
from ..subsumption.pairwise import find_cover


class OperatorPlacementNode(Node):
    """Pair-wise covering + simple splitting + per-operator streams."""

    def handle_operator(self, operator: CorrelationOperator, origin: str) -> None:
        store = self.store_for(origin)
        cover = find_cover(operator, store.same_signature_uncovered(operator))
        if cover is not None:
            # Covered: stored, not forwarded — its result stream will be
            # regenerated here from the covering operator's stream.
            store.add(operator, covered=True)
            return
        store.add(operator, covered=False)
        self.forward_split(operator, origin)

    def handle_event(
        self, event: SimpleEvent, origin: str, streams: tuple[str, ...]
    ) -> None:
        if not self.ingest(event):
            return
        self.deliver_local_matches(event)
        # include_covered=True: operators covered at this node generate
        # their own streams from here toward their users.
        self.stream_forward(event, sender=origin, include_covered=True)


def operator_placement_approach() -> Approach:
    return Approach(
        key="operator_placement",
        name="Distributed operator placement",
        subscription_filtering="Pair wise",
        subscription_splitting="Simple",
        event_propagation="Per subscription",
        make_node=OperatorPlacementNode,
    )
