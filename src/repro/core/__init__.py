"""The paper's primary contribution: Filter-Split-Forward processing.

Algorithms 1-5 of Section V, built on the shared network substrate and
the probabilistic set filter.  The four comparison systems live in
``repro.baselines``.
"""

from .filter_split_forward import (
    FSFConfig,
    FilterSplitForwardNode,
    filter_split_forward_approach,
)

__all__ = [
    "FSFConfig",
    "FilterSplitForwardNode",
    "filter_split_forward_approach",
]
