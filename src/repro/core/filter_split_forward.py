"""Filter-Split-Forward — the paper's contribution (Section V).

Subscription propagation (Algorithms 2-4): a subscription arriving at a
node is checked for *set subsumption* against the uncovered
subscriptions previously received from the same origin and over the
same attribute structure.  If the union of those covers it, it is
stored as covered and goes no further; otherwise it is stored
uncovered, projected onto each neighbour's advertised data space
(splitting exactly where advertisement paths diverge) and forwarded.
Because split fragments are compared again at every node, subsumption
against subscriptions over *different-but-overlapping* attribute sets —
undetectable by classic set filtering, cf. Table I — is detected where
the fragments become comparable (the paper's divide-and-conquer).

Event propagation (Algorithm 5): publish/subscribe forwarding — an
event travels a link at most once, iff it participates in a complex
match of some uncovered operator from that link's far end; the final,
exact matching happens at the user's node against the whole local
subscriptions.

The probabilistic set filter may erroneously declare coverage (bounded
by its configured error probability); events falling in the resulting
gaps are the recall loss measured in Fig. 12.  ``coarsening`` optionally
widens every forwarded operator — the Section VI-F mitigation that
trades traffic for recall; the user-node matching stays exact, so
coarsening never delivers spurious results.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model.advertisements import AdvertisementTable
from ..model.events import SimpleEvent
from ..model.intervals import union_covers
from ..model.operators import CorrelationOperator
from ..network.network import Network
from ..network.node import LOCAL, Node
from ..protocols.base import Approach
from ..subsumption.setfilter import ProbabilisticSetFilter


@dataclass(frozen=True)
class FSFConfig:
    """Tuning knobs of the Filter-Split-Forward node.

    ``error_probability`` / ``gap_fraction`` parameterise the
    probabilistic set filter (Section V-B); ``coarsening`` widens every
    forwarded filter range by the given absolute amount (Section VI-F's
    "subscriptions can be made coarser" mitigation, 0 = off).
    """

    error_probability: float = 0.05
    gap_fraction: float = 0.10
    coarsening: float = 0.0
    exact_filtering: bool = False


class FilterSplitForwardNode(Node):
    """Processing node running Algorithms 1-5."""

    def __init__(
        self, node_id: str, network: Network, config: FSFConfig | None = None
    ) -> None:
        super().__init__(node_id, network)
        self.config = config or FSFConfig()
        self.set_filter = ProbabilisticSetFilter(
            self.config.error_probability,
            self.config.gap_fraction,
            rng=network.sim.rng(f"setfilter:{node_id}"),
        )

    def on_crash(self) -> None:
        # A fresh filter over the same named stream: any learned filter
        # state is volatile, the draw sequence simply continues.
        self.set_filter = ProbabilisticSetFilter(
            self.config.error_probability,
            self.config.gap_fraction,
            rng=self.network.sim.rng(f"setfilter:{self.node_id}"),
        )

    # ------------------------------------------------------------------
    # subscription side: Algorithms 2, 3, 4
    # ------------------------------------------------------------------
    def handle_operator(self, operator: CorrelationOperator, origin: str) -> None:
        """Algorithm 4: filter against same-origin subscriptions, then
        split and forward the uncovered ones."""
        if self.config.coarsening > 0 and origin == LOCAL:
            operator = operator.widened(self.config.coarsening)
        store = self.store_for(origin)
        if self._is_set_covered(operator, store.uncovered):
            store.add(operator, covered=True)  # Algorithm 4, line 12
            return
        store.add(operator, covered=False)  # Algorithm 4, line 9
        self._split_and_forward(operator, origin)

    def recheck_coverage(self, record, store) -> bool:
        """Cancellation repair: re-run Algorithm 2's set check against
        the uncovered operators that arrived before ``record`` — the
        candidates its original check saw, minus the removed ones."""
        return self._is_set_covered(
            record.operator, store.uncovered_before(record.seq)
        )

    def _is_set_covered(self, operator: CorrelationOperator, stored_ops) -> bool:
        """The set-filtering check of Algorithm 2.

        Per Section V-B, every stream position (sensor, or attribute +
        location) is one attribute of the set-subsumption problem, so
        the stored uncovered operators from the same origin cover the
        new one iff, on *every* slot, the union of the ranges they
        already request contains the new range — this is what lets the
        Table I example drop s3 against {s1, s2}, which classic
        same-attribute-set filtering cannot do.  Correlation stays safe
        because the covered operator keeps generating its result set at
        this node (``include_covered`` on the event path).
        """
        covers_per_slot: list[list] = []
        for slot in operator.slots:
            candidates = []
            for stored in stored_ops:
                if (
                    stored.delta_t < operator.delta_t
                    or stored.delta_l < operator.delta_l
                ):
                    continue
                for other in stored.slots:
                    if (
                        other.slot_id == slot.slot_id
                        and other.attribute == slot.attribute
                        and other.sensors >= slot.sensors
                    ):
                        candidates.append(other.interval)
            if not candidates:
                return False
            covers_per_slot.append(candidates)
        if self.config.exact_filtering:
            return all(
                union_covers(candidates, slot.interval)
                for slot, candidates in zip(operator.slots, covers_per_slot)
            )
        return self.set_filter.is_product_subsumed(
            operator.as_box(), covers_per_slot
        )

    def _split_and_forward(
        self, operator: CorrelationOperator, origin: str
    ) -> None:
        """Algorithm 3: project on each neighbour's data space and send.

        The absent-sources check (line 3) already happened at the
        originating node (``Node.subscribe``); operators arriving from a
        neighbour had their sources checked there.
        """
        self.forward_split(operator, origin)

    # ------------------------------------------------------------------
    # event side: Algorithm 5
    # ------------------------------------------------------------------
    def handle_event(
        self, event: SimpleEvent, origin: str, streams: tuple[str, ...]
    ) -> None:
        if not self.ingest(event):
            return
        self.deliver_local_matches(event)  # lines 14-15 (j == n)
        # include_covered: an operator covered *at this node* still
        # generates its result set from here (Section V-A's "generates
        # the missing result set at the node where covering was
        # detected"); per-link dedup keeps the traffic shared.
        self.pubsub_forward(event, sender=origin, include_covered=True)


def filter_split_forward_approach(config: FSFConfig | None = None) -> Approach:
    """The paper's approach, ready for the experiment runner."""
    cfg = config or FSFConfig()
    return Approach(
        key="fsf",
        name="Filter-Split-Forward",
        subscription_filtering="Set filtering",
        subscription_splitting="Simple",
        event_propagation="Per neighbor",
        make_node=lambda node_id, network: FilterSplitForwardNode(
            node_id, network, cfg
        ),
        deterministic_recall=False,
        config=cfg,
    )
