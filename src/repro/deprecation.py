"""Deprecation machinery for the public-surface migration to ``repro.api``.

Deprecated entry points keep working (they delegate to their
replacements) but emit a :class:`ReproDeprecationWarning` — a dedicated
``DeprecationWarning`` subclass so callers and CI can escalate *our*
deprecations to errors (``warnings.simplefilter("error",
ReproDeprecationWarning)``) without tripping over unrelated
deprecations in third-party packages.
"""

from __future__ import annotations

import warnings


class ReproDeprecationWarning(DeprecationWarning):
    """A deprecated ``repro`` entry point was used."""


def warn_deprecated(old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the standard "use the facade instead" deprecation warning."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead (see docs/API.md)",
        ReproDeprecationWarning,
        stacklevel=stacklevel,
    )
