"""Experiment harness: runner, per-figure/table reproduction, CLI."""

from .figures import ALL_FIGURES, FigureResult, clear_cache, scenario_series
from .runner import REPLAY_START, RunResult, SeriesResult, run_point, run_series
from .tables import (
    Fig3Walkthrough,
    fig3_deployment,
    render_table_2,
    render_table_i,
    run_fig3_walkthrough,
    table_i_subscriptions,
)

__all__ = [
    "ALL_FIGURES",
    "Fig3Walkthrough",
    "FigureResult",
    "REPLAY_START",
    "RunResult",
    "SeriesResult",
    "clear_cache",
    "fig3_deployment",
    "render_table_2",
    "render_table_i",
    "run_fig3_walkthrough",
    "run_point",
    "run_series",
    "scenario_series",
    "table_i_subscriptions",
]
