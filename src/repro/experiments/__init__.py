"""Experiment harness: runner, sharded runner, figures/tables, CLI."""

from .figures import ALL_FIGURES, FigureResult, clear_cache, scenario_series
from .parallel import (
    WORKERS_ENV_VAR,
    PointTask,
    default_workers,
    run_series_parallel,
)
from .runner import (
    REPLAY_START,
    RunResult,
    SeriesResult,
    run_point,
    run_program,
    run_series,
    shifted_churn,
)
from .tables import (
    Fig3Walkthrough,
    fig3_deployment,
    render_table_2,
    render_table_i,
    run_fig3_walkthrough,
    table_i_subscriptions,
)

__all__ = [
    "ALL_FIGURES",
    "Fig3Walkthrough",
    "FigureResult",
    "PointTask",
    "REPLAY_START",
    "RunResult",
    "SeriesResult",
    "WORKERS_ENV_VAR",
    "clear_cache",
    "default_workers",
    "fig3_deployment",
    "render_table_2",
    "render_table_i",
    "run_fig3_walkthrough",
    "run_point",
    "run_program",
    "run_series",
    "run_series_parallel",
    "scenario_series",
    "shifted_churn",
    "table_i_subscriptions",
]
