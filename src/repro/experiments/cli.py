"""Command-line entry point: regenerate any table or figure.

Examples::

    repro-experiments table1
    repro-experiments table2
    repro-experiments fig3
    repro-experiments fig7 --scale 0.2
    repro-experiments all --scale 0.1
    repro-experiments experiments-md --output EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ..workload.scenarios import default_scale
from . import figures
from .experiments_md import build_experiments_md
from .tables import render_table_2, render_table_i, run_fig3_walkthrough


def _figure_command(fig_id: str, scale: float | None) -> str:
    return figures.ALL_FIGURES[fig_id](scale).render()


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the ICDE 2010 paper "
        "'Continuous Query Evaluation over Distributed Sensor Networks'.",
    )
    parser.add_argument(
        "target",
        choices=[
            "table1",
            "table2",
            "fig3",
            *(f"fig{i}" for i in range(4, 13)),
            "all",
            "experiments-md",
        ],
        help="what to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale factor (default: REPRO_SCALE env or 0.1; "
        "1.0 = the paper's subscription counts)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the result to a file instead of stdout",
    )
    args = parser.parse_args(argv)

    out: list[str] = []
    if args.target == "table1":
        out.append(render_table_i())
    elif args.target == "table2":
        out.append(render_table_2())
    elif args.target == "fig3":
        out.append(run_fig3_walkthrough().render())
    elif args.target.startswith("fig"):
        out.append(_figure_command(args.target[3:], args.scale))
    elif args.target == "experiments-md":
        out.append(build_experiments_md(args.scale))
    else:  # all
        out.append(render_table_i())
        out.append(render_table_2())
        out.append(run_fig3_walkthrough().render())
        for fig_id in sorted(figures.ALL_FIGURES, key=int):
            out.append(_figure_command(fig_id, args.scale))
    text = "\n\n".join(out) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output} (scale={args.scale or default_scale()})")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
