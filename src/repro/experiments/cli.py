"""Command-line entry point: regenerate any table or figure.

Examples::

    repro-experiments --list
    repro-experiments table1
    repro-experiments table2
    repro-experiments fig3
    repro-experiments fig7 --scale 0.2
    repro-experiments fig15 --scale smoke --workers 2
    repro-experiments all --scale nightly --workers 4
    repro-experiments fig12 --oracle reference
    repro-experiments experiments-md --output EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from ..metrics.oracle import ORACLE_ENV_VAR, ORACLE_METHODS
from ..workload.scenarios import SCALE_PRESETS, default_scale, parse_scale
from . import figures
from .experiments_md import build_experiments_md
from .parallel import WORKERS_ENV_VAR
from .tables import render_table_2, render_table_i, run_fig3_walkthrough


def _figure_command(fig_id: str, scale: float | None) -> str:
    return figures.ALL_FIGURES[fig_id](scale).render()


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the ICDE 2010 paper "
        "'Continuous Query Evaluation over Distributed Sensor Networks'.",
    )
    parser.add_argument(
        "target",
        nargs="?",
        # Derived from the figure registry, so a figure registered in
        # ALL_FIGURES can never be missing from the CLI (the catalog
        # drift a regression test now pins).
        choices=[
            "table1",
            "table2",
            "fig3",
            *(f"fig{i}" for i in sorted(figures.ALL_FIGURES, key=int)),
            "all",
            "experiments-md",
        ],
        help="what to regenerate (figs 13-14 are the churn family, "
        "figs 15-16 the query admit/retire family, figs 17-18 the "
        "unreliable-transport family, figs 19-20 the placement "
        "family and figs 21-22 the approximate-answer family, all "
        "beyond the paper); omit with --list to browse what exists",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_catalog",
        help="enumerate scenario families and figures with their scale "
        "presets, then exit (no experiment runs)",
    )
    parser.add_argument(
        "--churn",
        "--beyond",
        dest="churn",
        action="store_true",
        help="include the beyond-paper families (churn figs 13-14, "
        "admit/retire figs 15-16, faults figs 17-18, placement figs "
        "19-20) in the 'all' and 'experiments-md' targets; their "
        "dedicated figN targets always run",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="include just the unreliable-transport family (figs 17-18) "
        "in the 'all' and 'experiments-md' targets without pulling in "
        "the other beyond-paper families",
    )
    parser.add_argument(
        "--placement",
        action="store_true",
        help="include just the placement family (figs 19-20, compiled "
        "vs paper operator placement on the tiered deployment) in the "
        "'all' and 'experiments-md' targets without pulling in the "
        "other beyond-paper families",
    )
    parser.add_argument(
        "--approx",
        action="store_true",
        help="include just the approximate-answer family (figs 21-22, "
        "exact traffic frontier vs bounded-error sketch lanes) in the "
        "'all' and 'experiments-md' targets without pulling in the "
        "other beyond-paper families",
    )
    parser.add_argument(
        "--scale",
        type=parse_scale,
        default=None,
        metavar="SCALE",
        help="workload scale: a float in (0, 1] or a preset "
        f"({', '.join(sorted(SCALE_PRESETS))}); default: REPRO_SCALE env "
        "or 0.1; 1.0 = the paper's subscription counts",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard scenario runs over N worker processes (default: "
        "REPRO_WORKERS env or 1; results are bit-identical to serial)",
    )
    parser.add_argument(
        "--oracle",
        choices=ORACLE_METHODS,
        default=None,
        help="ground-truth pass: the engine-backed oracle (fast) or the "
        "reference scan (default: REPRO_ORACLE env or engine)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the result to a file instead of stdout",
    )
    args = parser.parse_args(argv)
    if args.list_catalog:
        print(figures.render_catalog())
        return 0
    if args.target is None:
        parser.error("a target is required (or pass --list to browse)")

    # The knobs are environment-driven all the way down (so the figure
    # harness and worker processes see them too); the flags set them for
    # the duration of this invocation and restore on exit, so embedding
    # callers (tests, notebooks) see no lingering state.
    saved = {
        var: os.environ.get(var) for var in (WORKERS_ENV_VAR, ORACLE_ENV_VAR)
    }
    if args.workers is not None:
        if args.workers < 1:
            parser.error("--workers must be >= 1")
        os.environ[WORKERS_ENV_VAR] = str(args.workers)
    if args.oracle is not None:
        os.environ[ORACLE_ENV_VAR] = args.oracle
    try:
        return _run(args)
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def _run(args: argparse.Namespace) -> int:
    out: list[str] = []
    if args.target == "table1":
        out.append(render_table_i())
    elif args.target == "table2":
        out.append(render_table_2())
    elif args.target == "fig3":
        out.append(run_fig3_walkthrough().render())
    elif args.target.startswith("fig"):
        out.append(_figure_command(args.target[3:], args.scale))
    elif args.target == "experiments-md":
        out.append(
            build_experiments_md(
                args.scale,
                include_churn=args.churn,
                include_faults=args.faults,
                include_placement=args.placement,
                include_approx=args.approx,
            )
        )
    else:  # all
        out.append(render_table_i())
        out.append(render_table_2())
        out.append(run_fig3_walkthrough().render())
        for fig_id in sorted(figures.ALL_FIGURES, key=int):
            if fig_id in figures.BEYOND_PAPER_FIGURES and not args.churn:
                if (
                    not (args.faults and fig_id in figures.FAULTS_FIGURES)
                    and not (
                        args.placement and fig_id in figures.PLACEMENT_FIGURES
                    )
                    and not (
                        args.approx and fig_id in figures.SKETCHES_FIGURES
                    )
                ):
                    continue
            out.append(_figure_command(fig_id, args.scale))
    text = "\n\n".join(out) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output} (scale={args.scale or default_scale()})")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
