"""Generator for EXPERIMENTS.md — paper-vs-measured for every artefact."""

from __future__ import annotations

from ..metrics.report import summarize_improvement
from ..workload.scenarios import default_scale
from . import figures
from .tables import render_table_2, render_table_i, run_fig3_walkthrough

PAPER_CLAIMS = {
    "4": "Naive worst; OP and MJ reduce via pair-wise coverage; FSF best "
    "(~18% fewer forwarded queries on average than OP/MJ).",
    "5": "Log-scale event load: naive/OP highest, FSF beats MJ by 10-30%.",
    "6": "Centralized has by far the lowest subscription load; FSF beats "
    "the distributed state of the art by 4.5-17.4%.",
    "7": "Centralized event traffic is the largest; FSF beats MJ by "
    "48-55.9%.",
    "8": "Same ordering as medium scale; totals grow with network size.",
    "9": "FSF beats MJ by 56-62% (network size amplifies event savings).",
    "10": "Less set-reduction opportunity with 20 groups (smaller "
    "candidate sets).",
    "11": "FSF beats MJ by 54-68% regardless of candidate-set size.",
    "12": "FSF recall 100% in some cases, generally around 98%, worst "
    "~93% (small scale / few subscriptions).",
    # Figures 13-14 go beyond the paper: the dynamic churn-and-burst
    # family (multi-day drifting replay, sensor leave/rejoin).
    "13": "Beyond the paper — event load under a 2-day bursty replay "
    "with 25% sensor churn; advertisement accounting includes the "
    "retraction/re-flood traffic the static figures never exercise.",
    "14": "Beyond the paper — recall under churn: deterministic "
    "approaches hold 100% against the churn-aware oracle (the trigger "
    "outruns the retraction flood); FSF keeps its probabilistic margin.",
    "15": "Beyond the paper — steady-state recall while queries keep "
    "arriving (Poisson) and retiring (exponential holds), each fenced "
    "to its scheduled lifetime in the oracle; admission-lag and "
    "retirement-edge races bound the loss.",
    "16": "Beyond the paper — the traffic bill of an ongoing query "
    "service, split registration / teardown (UnsubscribeMessage units, "
    "metered separately) / events / results, per approach, vs. the "
    "admit rate.",
    "17": "Beyond the paper — recall vs per-link loss with the "
    "ack/retransmit + soft-state-refresh layer on and off: protecting "
    "control traffic alone recovers most of the recall lost to broken "
    "setup state; the residual decay is the unprotected event traffic's "
    "multi-hop loss physics.",
    "18": "Beyond the paper — the reliability layer's bill: refresh "
    "units are a loss-independent floor (periodic soft-state floods), "
    "retransmit units grow with the drop rate.",
    "19": "Beyond the paper — total traffic on a tiered architecture "
    "graph with a skewed cross-group workload: the placement compiler "
    "delays the operator split past the natural divergence node, "
    "gating the wide group's partial-match flood at its head; the "
    "compiled lane undercuts the paper heuristic per approach.",
    "20": "Beyond the paper — the safety half of fig 19: with exact "
    "FSF filtering every lane holds 100% recall, so the compiled "
    "placement's traffic savings are free of result loss.",
    "21": "Beyond the paper — accuracy-vs-traffic: broker-resident "
    "q-digest lanes answer single-slot range queries from merged "
    "summaries pushed at round intervals, spending strictly fewer "
    "total units than every exact approach at the largest point.",
    "22": "Beyond the paper — the accuracy half of fig 21: certified "
    "count accuracy per digest resolution, with every observed rank "
    "error inside the deterministic q-digest bound (zero violations).",
}


def build_experiments_md(
    scale: float | None = None,
    include_churn: bool = False,
    include_faults: bool = False,
    include_placement: bool = False,
    include_approx: bool = False,
) -> str:
    """Run everything and render the paper-vs-measured record.

    ``include_churn`` appends all beyond-paper figures (churn 13-14,
    query admit/retire 15-16, faults 17-18, placement 19-20);
    ``include_faults`` / ``include_placement`` append just their
    family.  All off by default to keep the paper-facing record
    paper-shaped.
    """
    eff_scale = default_scale() if scale is None else scale
    parts: list[str] = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        f"All figures regenerated at workload scale **{eff_scale}** "
        "(node counts match the paper; subscription counts and replay "
        "length are scaled — shapes, orderings and relative margins are "
        "the reproduction target, absolute counts are not, since the "
        "substrate is a simulator rather than the authors' Xen cluster).",
        "",
        "Regenerate any artefact with `repro-experiments <target> "
        "[--scale S]`.",
        "",
        "## Table I / Figure 3",
        "",
        "Paper: s3 is subsumed by {s1, s2} jointly, undetectable by "
        "classic same-attribute-set filtering; after the filter-split-"
        "forward phases nothing of s3 travels toward the sensors.",
        "",
        "```",
        render_table_i(),
        "",
        run_fig3_walkthrough().render(),
        "```",
        "",
        "Measured: s3 is stored covered at the injection node and "
        "forwards 0 operator units (the paper's walkthrough filters it "
        "one hop later — our per-slot union check fires as soon as the "
        "covering operators share a store, a strictly earlier detection).",
        "",
        "## Table II",
        "",
        "```",
        render_table_2(),
        "```",
        "",
    ]
    for fig_id in sorted(figures.ALL_FIGURES, key=int):
        if fig_id in figures.BEYOND_PAPER_FIGURES and not include_churn:
            if (
                not (include_faults and fig_id in figures.FAULTS_FIGURES)
                and not (
                    include_placement
                    and fig_id in figures.PLACEMENT_FIGURES
                )
                and not (
                    include_approx and fig_id in figures.SKETCHES_FIGURES
                )
            ):
                continue
        result = figures.ALL_FIGURES[fig_id](eff_scale)
        parts += [
            f"## Figure {fig_id}",
            "",
            f"Paper: {PAPER_CLAIMS[fig_id]}",
            "",
            "```",
            result.render(),
            "```",
            "",
        ]
    # Cross-figure summary of the headline margins.
    small = figures.scenario_series(figures.SMALL, eff_scale)
    medium = figures.scenario_series(figures.MEDIUM, eff_scale)
    parts += [
        "## Headline margins (measured)",
        "",
        "| claim | paper | measured |",
        "|---|---|---|",
        "| FSF vs OP/MJ subscription load (small) | ~18% avg | "
        + summarize_improvement(
            small.subscription_series()["fsf"],
            small.subscription_series()["operator_placement"],
        )
        + " |",
        "| FSF vs state of the art subscriptions (medium) | 4.5-17.4% | "
        + summarize_improvement(
            medium.subscription_series()["fsf"],
            medium.subscription_series()["operator_placement"],
        )
        + " |",
        "| FSF vs MJ event load (small) | 10-30% | "
        + summarize_improvement(
            small.event_series()["fsf"], small.event_series()["multijoin"]
        )
        + " |",
        "| FSF vs MJ event load (medium) | 48-55.9% | "
        + summarize_improvement(
            medium.event_series()["fsf"], medium.event_series()["multijoin"]
        )
        + " |",
        "",
        "### Known deviations",
        "",
        "* The centralized scheme's event curve is flat and highest at "
        "low subscription counts, but our match-dense synthetic workload "
        "lets the naive approach overtake it within the measured range, "
        "whereas the paper's replay kept centralized on top throughout — "
        "the fixed all-events-to-centre component and the 'largely "
        "outbalances the subscription gains' conclusion reproduce either "
        "way.",
        "* Our set filter detects joint coverage at the first node where "
        "the covering operators share a store (the paper's pipeline "
        "detects it after splitting, a hop or two later), so FSF "
        "subscription savings appear slightly earlier along the path.",
        "* At strongly scaled-down subscription counts the naive and "
        "multi-join event curves can swap in the sparsest setting "
        "(Fig. 11's 20 groups): naive needs subscription overlap to pay "
        "its duplication penalty, multi-join pays its raw-stream cost "
        "up front.  The FSF margins and every other ordering are "
        "scale-stable.",
        "* Subscription-load margins grow with subscription density "
        "(subsumption needs overlap to exist): at the default scale the "
        "FSF-vs-pairwise gap is a few percent and still growing at the "
        "last point; at scale 0.2 we measure 13-16%, approaching the "
        "paper's ~18% / 4.5-17.4% bands at its full 100-1000 axis.  Run "
        "`repro-experiments fig4 --scale 1.0` to reproduce at paper "
        "scale.",
        "",
    ]
    return "\n".join(parts)
