"""Per-figure reproduction harnesses (Figs 4-12 paper, 13-16 beyond).

Each ``figure_N()`` returns a :class:`FigureResult` with the same series
the paper plots; figure pairs that share a scenario (subscription load +
event load) share one underlying run, cached per (scenario, scale, seed)
so the bench suite never recomputes a scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from ..core.filter_split_forward import FSFConfig
from ..metrics.report import (
    render_series_table,
    render_traffic_accounting,
    summarize_improvement,
)
from ..network.faults import FaultPlan, LinkFault
from ..network.reliability import ReliabilityConfig
from ..protocols.registry import all_approaches, distributed_approaches
from ..workload.scenarios import (
    ADMIT_RETIRE,
    ALL_SCENARIOS,
    CHURN,
    FAULTS,
    LARGE_NETWORK,
    LARGE_SOURCES,
    MEDIUM,
    PLACEMENT,
    SCALE_PRESETS,
    SKETCHES,
    SMALL,
    Scenario,
    default_scale,
)
from ..sketches import SketchConfig
from .parallel import clear_worker_caches, default_workers, run_series_parallel
from .runner import SeriesResult, run_series

APPROACH_LABELS = {
    "naive": "Naive approach",
    "operator_placement": "Distributed operator placement",
    "multijoin": "Distributed multi-join",
    "fsf": "Filter-Split-Forward",
    "centralized": "Centralized",
}

_SERIES_CACHE: dict[tuple, SeriesResult] = {}


def scenario_series(
    scenario: Scenario,
    scale: float | None = None,
    fsf_config: FSFConfig | None = None,
    workers: int | None = None,
) -> SeriesResult:
    """Run (or fetch the cached run of) one scenario's full series.

    ``workers`` defaults to the ``REPRO_WORKERS`` environment knob (the
    CLI's ``--workers`` sets it); above 1 the series is computed by the
    sharded runner, whose result is bit-identical to the serial path —
    so the cache key deliberately ignores the worker count.

    Scenarios may pin their own FSF configuration and approach subset
    (``Scenario.fsf_config`` / ``Scenario.approach_keys``, used by the
    placement family); an explicitly passed ``fsf_config`` wins over
    the scenario's declaration.
    """
    eff_scale = default_scale() if scale is None else scale
    eff_workers = default_workers() if workers is None else workers
    eff_fsf = fsf_config if fsf_config is not None else scenario.fsf_config
    key = (scenario.key, eff_scale, scenario.seed, eff_fsf)
    if key not in _SERIES_CACHE:
        registry = all_approaches(eff_fsf)
        if scenario.approach_keys is not None:
            approaches: Mapping = {
                k: registry[k] for k in scenario.approach_keys
            }
        elif scenario.include_centralized:
            approaches = registry
        else:
            approaches = distributed_approaches(eff_fsf)
        if eff_workers > 1:
            _SERIES_CACHE[key] = run_series_parallel(
                scenario,
                approaches,
                workers=eff_workers,
                scale=eff_scale,
                fsf_config=eff_fsf,
            )
        else:
            _SERIES_CACHE[key] = run_series(
                scenario, approaches, scale=eff_scale
            )
    return _SERIES_CACHE[key]


def clear_cache() -> None:
    _SERIES_CACHE.clear()
    clear_worker_caches()


@dataclass(frozen=True)
class FigureResult:
    """One reproduced figure: series + rendered text.

    ``xs`` is the figure's x axis — subscription counts for the paper's
    figures, admit rates (floats) for the admit/retire family.
    """

    figure_id: str
    title: str
    x_label: str
    xs: tuple[float, ...]
    series: Mapping[str, tuple[float, ...]]
    notes: str = ""

    def render(self) -> str:
        body = render_series_table(
            f"Figure {self.figure_id}: {self.title}",
            self.x_label,
            self.xs,
            {APPROACH_LABELS.get(k, k): v for k, v in self.series.items()},
        )
        if self.notes:
            body += f"\n{self.notes}"
        return body


def _load_figure(
    figure_id: str,
    title: str,
    scenario: Scenario,
    metric: str,
    scale: float | None,
) -> FigureResult:
    run = scenario_series(scenario, scale)
    if metric == "subscription":
        series = run.subscription_series()
        what = "number of forwarded queries"
    else:
        series = run.event_series()
        what = "number of forwarded data units"
    notes = ""
    if "fsf" in series and "multijoin" in series and metric == "event":
        notes = "FSF vs multi-join improvement: " + summarize_improvement(
            series["fsf"], series["multijoin"]
        )
    if "fsf" in series and "operator_placement" in series and metric == "subscription":
        notes = "FSF vs operator placement improvement: " + summarize_improvement(
            series["fsf"], series["operator_placement"]
        )
    return FigureResult(
        figure_id,
        f"{title} ({what})",
        "Number of injected queries",
        tuple(run.counts),
        {k: tuple(v) for k, v in series.items()},
        notes,
    )


def figure_4(scale: float | None = None) -> FigureResult:
    """Subscription load, small scale."""
    return _load_figure("4", "Subscription load, small scale", SMALL, "subscription", scale)


def figure_5(scale: float | None = None) -> FigureResult:
    """Event load, small scale."""
    return _load_figure("5", "Event load, small scale", SMALL, "event", scale)


def figure_6(scale: float | None = None) -> FigureResult:
    """Subscription load, medium scale (incl. centralized)."""
    return _load_figure("6", "Subscription load, medium scale", MEDIUM, "subscription", scale)


def figure_7(scale: float | None = None) -> FigureResult:
    """Event load, medium scale (incl. centralized)."""
    return _load_figure("7", "Event load, medium scale", MEDIUM, "event", scale)


def figure_8(scale: float | None = None) -> FigureResult:
    """Subscription load, large scale #1 (network size)."""
    return _load_figure(
        "8", "Subscription load, large (network) scale", LARGE_NETWORK, "subscription", scale
    )


def figure_9(scale: float | None = None) -> FigureResult:
    """Event load, large scale #1 (network size)."""
    return _load_figure("9", "Event load, large (network) scale", LARGE_NETWORK, "event", scale)


def figure_10(scale: float | None = None) -> FigureResult:
    """Subscription load, large scale #2 (number of sources)."""
    return _load_figure(
        "10", "Subscription load, large (sources) scale", LARGE_SOURCES, "subscription", scale
    )


def figure_11(scale: float | None = None) -> FigureResult:
    """Event load, large scale #2 (number of sources)."""
    return _load_figure("11", "Event load, large (sources) scale", LARGE_SOURCES, "event", scale)


def figure_12(scale: float | None = None) -> FigureResult:
    """End-user event recall of Filter-Split-Forward, all four settings."""
    raw: dict[str, tuple[tuple[int, ...], tuple[float, ...]]] = {}
    for scenario, label in (
        (SMALL, "Small scale"),
        (MEDIUM, "Medium scale"),
        (LARGE_NETWORK, "Large scale #1"),
        (LARGE_SOURCES, "Large scale #2"),
    ):
        run = scenario_series(scenario, scale)
        raw[label] = (
            tuple(run.counts),
            tuple(round(100 * r, 1) for r in run.recall_series("fsf")),
        )
    # The small-scale axis extends to 1000 queries while the others end
    # at 900 (as in the paper); align on the shared prefix.
    n = min(len(values) for _, values in raw.values())
    xs = next(iter(raw.values()))[0][:n]
    series = {label: values[:n] for label, (_, values) in raw.items()}
    return FigureResult(
        "12",
        "End user event recall (%) for Filter-Split-Forward",
        "Number of injected queries",
        xs,
        series,
        notes="Deterministic approaches measure 100% by construction.",
    )


def figure_13(scale: float | None = None) -> FigureResult:
    """Event load under churn — beyond the paper.

    The dynamic-workload family: the small-scale deployment under a
    two-day drifting, bursty replay where 25% of the sensors leave and
    rejoin mid-campaign.  The notes carry the full per-kind traffic
    accounting (the advertisement channel is live during the replay:
    retraction floods and re-floods are part of the bill).
    """
    run = scenario_series(CHURN, scale)
    accounting = render_traffic_accounting(
        "Traffic accounting under churn (units, whole series)",
        {
            APPROACH_LABELS.get(k, k): results
            for k, results in run.results.items()
        },
    )
    return FigureResult(
        "13",
        "Event load under churn & burst (number of forwarded data units)",
        "Number of injected queries",
        tuple(run.counts),
        {k: tuple(v) for k, v in run.event_series().items()},
        notes=accounting,
    )


def figure_14(scale: float | None = None) -> FigureResult:
    """End-user recall under churn — beyond the paper.

    The deterministic approaches measure 100% at the shipped scales: a
    credited trigger beats the retraction flood whenever they share a
    path, and the remaining race (a nearer trigger arriving after a
    farther retraction fenced its filler) is a hops x latency sliver of
    the delta_t window.  FSF keeps its probabilistic filter trade-off.
    Deliveries drawn from a departed sensor's not-yet-fenced history
    are the mirror image — counted by ``RunResult.false_positive_rate``,
    not by this figure.
    """
    run = scenario_series(CHURN, scale)
    series = {
        key: tuple(
            round(100 * r.recall, 1) for r in run.results[key]
        )
        for key in run.results
    }
    return FigureResult(
        "14",
        "End user event recall (%) under churn & burst",
        "Number of injected queries",
        tuple(run.counts),
        series,
    )


ADMIT_RATE_AXIS = (0.02, 0.05, 0.1)
"""The x axis of the admit/retire family: Poisson query admissions per
unit of virtual time, swept over the ``admit_retire`` scenario."""


def admit_retire_variant(rate: float) -> Scenario:
    """The ``admit_retire`` scenario at one admit rate (own cache key)."""
    if ADMIT_RETIRE.lifecycle is None:
        raise ValueError("the admit_retire scenario lost its lifecycle config")
    return replace(
        ADMIT_RETIRE,
        key=f"admit_retire@{rate:g}",
        lifecycle=replace(ADMIT_RETIRE.lifecycle, admit_rate=rate),
    )


def _admit_retire_runs(scale: float | None) -> list[SeriesResult]:
    return [
        scenario_series(admit_retire_variant(rate), scale)
        for rate in ADMIT_RATE_AXIS
    ]


def figure_15(scale: float | None = None) -> FigureResult:
    """Steady-state recall under Poisson admit/retire — beyond the paper.

    Queries keep arriving and retiring while sensors stream; each
    query's truth is fenced to its scheduled ``[admit, retire]``
    lifetime, so recall measures what the service could still deliver
    *inside* those lifetimes.  Two races keep deterministic approaches
    marginally below 100%: a trigger published while the registration
    flood is still placing the operator (admission lag), and one
    published just before the teardown reaches the operator's host
    (retirement edge) — both are hops x latency slivers of the replay.
    """
    runs = _admit_retire_runs(scale)
    series = {
        key: tuple(
            round(100 * run.results[key][-1].recall, 1) for run in runs
        )
        for key in runs[0].results
    }
    fsf_runs = [run.results["fsf"][-1] for run in runs]
    notes = "Queries admitted (total) / retired per rate: " + ", ".join(
        f"{rate:g}/s -> {r.n_subscriptions}/{r.retired_queries}"
        for rate, r in zip(ADMIT_RATE_AXIS, fsf_runs)
    )
    return FigureResult(
        "15",
        "Steady-state recall (%) under Poisson query admit/retire",
        "Query admissions per unit time",
        tuple(ADMIT_RATE_AXIS),
        series,
        notes=notes,
    )


def figure_16(scale: float | None = None) -> FigureResult:
    """Traffic split under Poisson admit/retire — beyond the paper.

    Four lanes per approach, each vs. the admit rate: **registration**
    (operator floods: the settled prefix plus mid-run admissions and
    teardown-repair re-dispatches), **teardown** (``UnsubscribeMessage``
    units — reported separately for the first time), **events**
    (forwarded data units) and **results** (simple events delivered to
    end users).
    """
    runs = _admit_retire_runs(scale)

    def lanes(key: str) -> dict[str, tuple[float, ...]]:
        points = [run.results[key][-1] for run in runs]
        label = APPROACH_LABELS.get(key, key)
        return {
            f"{label} - registration": tuple(
                float(r.subscription_load + r.admit_load) for r in points
            ),
            f"{label} - teardown": tuple(
                float(r.teardown_load) for r in points
            ),
            f"{label} - events": tuple(float(r.event_load) for r in points),
            f"{label} - results": tuple(
                float(r.delivered_events) for r in points
            ),
        }

    series: dict[str, tuple[float, ...]] = {}
    for key in runs[0].results:
        series.update(lanes(key))
    return FigureResult(
        "16",
        "Traffic split (units) under Poisson query admit/retire",
        "Query admissions per unit time",
        tuple(ADMIT_RATE_AXIS),
        series,
        notes="Registration excludes teardown: both travel the "
        "subscription channel, but retirement traffic is metered "
        "separately (TrafficSnapshot.teardown_units).",
    )


LOSS_AXIS = (0.0, 0.02, 0.05, 0.1)
"""The x axis of the fault family: per-link drop probability, swept
over the ``faults`` scenario with reliability on and off.  The 0.2+
regime is omitted — every approach is already at (or near) zero recall
by 10% per-link loss, because a complex match needs *all* of its
participant events to survive independent multi-hop journeys."""


def faults_variant(loss: float, reliable: bool) -> Scenario:
    """The ``faults`` scenario at one loss rate (own cache key).

    ``reliable=False`` strips the ack/retransmit + refresh layer so the
    same seeded fault plan hits raw best-effort links — the on/off pair
    in figure 17 isolates what the reliability layer buys back.
    """
    return replace(
        FAULTS,
        key=f"faults@{loss:g}{'r' if reliable else 'u'}",
        faults=FaultPlan(default=LinkFault(drop=loss), seed=97),
        reliability=ReliabilityConfig() if reliable else None,
    )


def _faults_runs(scale: float | None, reliable: bool) -> list[SeriesResult]:
    return [
        scenario_series(faults_variant(loss, reliable), scale)
        for loss in LOSS_AXIS
    ]


def figure_17(scale: float | None = None) -> FigureResult:
    """Recall vs link loss, reliability on/off — beyond the paper.

    Ten lanes: each approach under the seeded fault plan with the
    reliability layer enabled (acked control traffic, soft-state
    refresh) and disabled (raw best-effort links).  Event traffic is
    never retransmitted in either mode, so the residual decay measures
    the loss physics; the on/off gap measures what protecting *setup
    state* alone recovers — lost advertisement floods and operator
    placements poison every later match, lost events only one.
    """
    on_runs = _faults_runs(scale, True)
    off_runs = _faults_runs(scale, False)
    series: dict[str, tuple[float, ...]] = {}
    for key in on_runs[0].results:
        label = APPROACH_LABELS.get(key, key)
        series[f"{label} (reliable)"] = tuple(
            round(100 * run.results[key][-1].recall, 1) for run in on_runs
        )
        series[f"{label} (no reliability)"] = tuple(
            round(100 * run.results[key][-1].recall, 1) for run in off_runs
        )
    return FigureResult(
        "17",
        "End user event recall (%) vs per-link loss rate",
        "Per-link drop probability",
        LOSS_AXIS,
        series,
        notes="Reliability covers control traffic only (ack/retransmit "
        "+ soft-state refresh); events ride the lossy links unprotected "
        "in both modes.",
    )


def figure_18(scale: float | None = None) -> FigureResult:
    """Reliability overhead vs link loss — beyond the paper.

    The price of figure 17's recovered recall: per approach, the units
    the ack/retransmit layer re-sent plus the units the periodic
    soft-state refresh rounds carried, as the loss rate grows.  The
    refresh floor is paid even at zero loss; retransmissions scale with
    the drop rate.
    """
    runs = _faults_runs(scale, True)
    series: dict[str, tuple[float, ...]] = {}
    for key in runs[0].results:
        label = APPROACH_LABELS.get(key, key)
        series[f"{label} - retransmit"] = tuple(
            float(run.results[key][-1].retransmission_load) for run in runs
        )
        series[f"{label} - refresh"] = tuple(
            float(run.results[key][-1].refresh_load) for run in runs
        )
    return FigureResult(
        "18",
        "Reliability overhead (units) vs per-link loss rate",
        "Per-link drop probability",
        LOSS_AXIS,
        series,
        notes="Reliability-on runs only; shares the figure 17 cache. "
        "Refresh units are the periodic soft-state floods (paid even "
        "at zero loss); retransmit units are loss-triggered re-sends "
        "of acked control transfers.",
    )


PLACEMENT_MODES = ("paper", "compiled")
"""The two lanes of the placement family: the paper's
divergence-node heuristic vs the ``repro.placement`` cost-model
compiler, over the same tiered deployment and skewed workload."""


def placement_variant(mode: str) -> Scenario:
    """The ``placement`` scenario in one placement mode (own cache key)."""
    if mode not in PLACEMENT_MODES:
        raise ValueError(f"mode must be one of {PLACEMENT_MODES}, got {mode!r}")
    return replace(PLACEMENT, key=f"placement@{mode}", placement=mode)


def _placement_runs(scale: float | None) -> dict[str, SeriesResult]:
    return {
        mode: scenario_series(placement_variant(mode), scale)
        for mode in PLACEMENT_MODES
    }


def _total_units(r) -> float:
    """Everything a run put on the wire, every channel summed."""
    return float(
        r.subscription_load
        + r.event_load
        + r.advertisement_load
        + r.reflood_load
        + r.admit_load
        + r.teardown_load
        + r.retransmission_load
        + r.refresh_load
    )


def figure_19(scale: float | None = None) -> FigureResult:
    """Total traffic, compiled vs paper placement — beyond the paper.

    The heterogeneous-architecture family: tiered node specs and a
    skewed cross-group workload (one wide-filter group flooding partial
    matches, one narrow group).  Per approach, two lanes of *total*
    message units (subscription + event + advertisement channels): the
    paper heuristic, which splits operators at the natural divergence
    node, vs the cost-model compiler, which delays the split toward the
    flooding group's head and gates the partial-match traffic at the
    edge.
    """
    runs = _placement_runs(scale)
    series: dict[str, tuple[float, ...]] = {}
    for key in runs["paper"].results:
        label = APPROACH_LABELS.get(key, key)
        for mode in PLACEMENT_MODES:
            series[f"{label} ({mode})"] = tuple(
                _total_units(r) for r in runs[mode].results[key]
            )
    ratios = []
    for key in runs["paper"].results:
        paper_total = _total_units(runs["paper"].results[key][-1])
        compiled_total = _total_units(runs["compiled"].results[key][-1])
        if paper_total > 0:
            ratios.append(
                f"{APPROACH_LABELS.get(key, key)}: "
                f"{compiled_total / paper_total:.3f}"
            )
    return FigureResult(
        "19",
        "Total traffic (units), compiled vs paper placement",
        "Number of injected queries",
        tuple(runs["paper"].counts),
        series,
        notes="Compiled/paper total-unit ratio at the largest point: "
        + ", ".join(ratios),
    )


def figure_20(scale: float | None = None) -> FigureResult:
    """Recall, compiled vs paper placement — beyond the paper.

    The safety half of figure 19: delaying the operator split must not
    cost results.  FSF runs with exact filtering in this family, so
    every lane holds 100% and the traffic axis is the only mover.
    """
    runs = _placement_runs(scale)
    series: dict[str, tuple[float, ...]] = {}
    for key in runs["paper"].results:
        label = APPROACH_LABELS.get(key, key)
        for mode in PLACEMENT_MODES:
            series[f"{label} ({mode})"] = tuple(
                round(100 * r.recall, 1) for r in runs[mode].results[key]
            )
    return FigureResult(
        "20",
        "End user event recall (%), compiled vs paper placement",
        "Number of injected queries",
        tuple(runs["paper"].counts),
        series,
        notes="FSF runs with exact filtering in the placement family; "
        "a compiled lane below its paper twin would mean the delayed "
        "split lost matches.",
    )


SKETCH_K_AXIS = (16, 64, 256)
"""The digest-resolution axis of the sketch family: q-digest
compression parameter ``k`` (``eps = levels / k``), one approximate
lane per value.  Small ``k`` folds aggressively (cheap pushes, loose
bound); large ``k`` keeps nearly every bucket (tight bound)."""


def sketches_variant(k: int) -> Scenario:
    """The ``sketches`` scenario answered approximately at resolution
    ``k`` (own cache key).

    One lane suffices per ``k``: sketch-eligible queries bypass the
    exact pipeline entirely, so every supporting approach produces the
    same lane traffic — FSF stands in for all of them.  The push
    interval and bucket packing are pinned here so the lanes stay
    comparable across ``k``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return replace(
        SKETCHES,
        key=f"sketches@{k}",
        answer_mode="approximate",
        sketch=SketchConfig(k=k, push_interval=240.0, buckets_per_unit=6),
        approach_keys=("fsf",),
    )


def _sketch_runs(scale: float | None) -> tuple[SeriesResult, dict[int, SeriesResult]]:
    exact = scenario_series(SKETCHES, scale)
    approx = {
        k: scenario_series(sketches_variant(k), scale) for k in SKETCH_K_AXIS
    }
    return exact, approx


def figure_21(scale: float | None = None) -> FigureResult:
    """Accuracy-vs-traffic, the traffic half — beyond the paper.

    The sketch family: a single-attribute workload (every query a
    sketch-eligible single-slot range filter) over a long replay.  The
    five exact approaches form the frontier; one approximate lane per
    q-digest resolution ``k`` answers the same queries from merged
    broker digests pushed at round intervals instead of forwarding raw
    readings.  At the largest point every approximate lane must spend
    strictly fewer total units than every exact approach — the
    benchmark gate machine-checks exactly that inequality.
    """
    exact, approx = _sketch_runs(scale)
    series: dict[str, tuple[float, ...]] = {}
    for key in exact.results:
        series[f"{APPROACH_LABELS.get(key, key)} (exact)"] = tuple(
            _total_units(r) for r in exact.results[key]
        )
    for k in SKETCH_K_AXIS:
        series[f"Approximate lane (k={k})"] = tuple(
            _total_units(r) for r in approx[k].results["fsf"]
        )
    frontier = min(
        _total_units(runs[-1]) for runs in exact.results.values()
    )
    ratios = ", ".join(
        f"k={k}: {_total_units(approx[k].results['fsf'][-1]) / frontier:.3f}"
        for k in SKETCH_K_AXIS
    )
    return FigureResult(
        "21",
        "Total traffic (units), exact frontier vs approximate lanes",
        "Number of subscriptions",
        tuple(exact.counts),
        series,
        notes="Approximate/cheapest-exact total-unit ratio at the "
        f"largest point: {ratios}.  Lane traffic = push-tree setup on "
        "the subscription channel + digest pushes on the event channel.",
    )


def figure_22(scale: float | None = None) -> FigureResult:
    """Accuracy-vs-traffic, the accuracy half — beyond the paper.

    What figure 21's savings cost: exact lanes report end-user event
    recall; approximate lanes report the oracle-checked count accuracy
    of their certified range answers (symmetric min/max ratio of
    estimate vs true count, 100% = every estimate exact).  The oracle
    also re-checks every certificate — observed rank error within the
    deterministic q-digest bound, zero violations tolerated.
    """
    exact, approx = _sketch_runs(scale)
    series: dict[str, tuple[float, ...]] = {}
    for key in exact.results:
        series[f"{APPROACH_LABELS.get(key, key)} (exact)"] = tuple(
            round(100 * r.recall, 1) for r in exact.results[key]
        )
    for k in SKETCH_K_AXIS:
        series[f"Approximate lane (k={k})"] = tuple(
            round(100 * r.approx_mean_recall, 1)
            for r in approx[k].results["fsf"]
        )
    errors = ", ".join(
        f"k={k}: max |err| {approx[k].results['fsf'][-1].approx_max_error} "
        f"({approx[k].results['fsf'][-1].approx_bound_violations} violations)"
        for k in SKETCH_K_AXIS
    )
    return FigureResult(
        "22",
        "Answer accuracy (%), exact recall vs certified approximate counts",
        "Number of subscriptions",
        tuple(exact.counts),
        series,
        notes="Observed rank error vs the q-digest guarantee at the "
        f"largest point: {errors}.  A non-zero violation count would "
        "mean a certificate lied; the benchmark gate asserts zero.",
    )


ALL_FIGURES = {
    "4": figure_4,
    "5": figure_5,
    "6": figure_6,
    "7": figure_7,
    "8": figure_8,
    "9": figure_9,
    "10": figure_10,
    "11": figure_11,
    "12": figure_12,
    "13": figure_13,
    "14": figure_14,
    "15": figure_15,
    "16": figure_16,
    "17": figure_17,
    "18": figure_18,
    "19": figure_19,
    "20": figure_20,
    "21": figure_21,
    "22": figure_22,
}

CHURN_FIGURES = ("13", "14")
"""The dynamic-workload family — beyond the paper."""

ADMIT_RETIRE_FIGURES = ("15", "16")
"""The query admit/retire family — beyond the paper."""

FAULTS_FIGURES = ("17", "18")
"""The robustness family (unreliable transport) — beyond the paper."""

PLACEMENT_FIGURES = ("19", "20")
"""The heterogeneous-architecture family (placement compiler) —
beyond the paper."""

SKETCHES_FIGURES = ("21", "22")
"""The accuracy-vs-traffic family (approximate answer lane) —
beyond the paper."""

BEYOND_PAPER_FIGURES = (
    CHURN_FIGURES
    + ADMIT_RETIRE_FIGURES
    + FAULTS_FIGURES
    + PLACEMENT_FIGURES
    + SKETCHES_FIGURES
)
"""Figures past the paper's 4-12 set, gated behind the CLI's
``--beyond`` (né ``--churn``) flag for the ``all`` / ``experiments-md``
targets; their dedicated ``figN`` targets always run."""

FIGURE_GATES: dict[str, str] = {
    **{fid: "--beyond (alias --churn)" for fid in CHURN_FIGURES},
    **{fid: "--beyond (alias --churn)" for fid in ADMIT_RETIRE_FIGURES},
    **{fid: "--faults (or --beyond)" for fid in FAULTS_FIGURES},
    **{fid: "--placement (or --beyond)" for fid in PLACEMENT_FIGURES},
    **{fid: "--approx (or --beyond)" for fid in SKETCHES_FIGURES},
}
"""Which CLI flag unlocks each gated figure under the ``all`` /
``experiments-md`` targets (dedicated ``figN`` targets always run)."""

FIGURE_SCENARIOS: dict[str, str] = {
    "4": "small",
    "5": "small",
    "6": "medium",
    "7": "medium",
    "8": "large_network",
    "9": "large_network",
    "10": "large_sources",
    "11": "large_sources",
    "12": "small+medium+large_network+large_sources",
    "13": "churn",
    "14": "churn",
    "15": "admit_retire (rate sweep)",
    "16": "admit_retire (rate sweep)",
    "17": "faults (loss sweep, reliability on/off)",
    "18": "faults (loss sweep, reliability on)",
    "19": "placement (compiled vs paper lanes)",
    "20": "placement (compiled vs paper lanes)",
    "21": "sketches (exact frontier vs approximate lanes)",
    "22": "sketches (exact frontier vs approximate lanes)",
}
"""Which scenario family feeds each figure — the ``--list`` catalog."""


def render_catalog() -> str:
    """The discoverability listing behind ``repro-experiments --list``:
    scenario families with their per-preset measurement axes, the
    figure register, and the scale presets."""
    lines = ["Scenario families", "================="]
    for key, scenario in ALL_SCENARIOS.items():
        lines.append(f"{key}: {scenario.title}")
        axes = ", ".join(
            f"{name}={scenario.subscription_counts(value)}"
            for name, value in sorted(
                SCALE_PRESETS.items(), key=lambda kv: kv[1]
            )
        )
        lines.append(f"  subscription axis per preset: {axes}")
        extras = []
        if scenario.dynamic is not None:
            extras.append("dynamic replay")
        if scenario.churn is not None:
            extras.append("sensor churn")
        if scenario.lifecycle is not None:
            extras.append(
                f"query lifecycle (admit_rate={scenario.lifecycle.admit_rate:g})"
            )
        if scenario.faults is not None:
            extras.append(
                f"fault injection (drop={scenario.faults.default.drop:g})"
            )
        if scenario.reliability is not None:
            extras.append("ack/retransmit + soft-state refresh")
        if scenario.span_groups > 1:
            extras.append(f"cross-group queries (span {scenario.span_groups})")
        if scenario.group_width_scale:
            extras.append(
                "skewed group widths "
                f"{list(scenario.group_width_scale)}"
            )
        if scenario.fsf_config is not None:
            extras.append("pinned FSF config")
        if scenario.approach_keys is not None:
            extras.append(f"approaches: {', '.join(scenario.approach_keys)}")
        if scenario.include_centralized:
            extras.append("includes centralized")
        if extras:
            lines.append(f"  features: {', '.join(extras)}")
    lines += ["", "Figures", "======="]
    for fig_id in sorted(ALL_FIGURES, key=int):
        gate = FIGURE_GATES.get(fig_id)
        beyond = (
            f" [beyond the paper; gate: {gate}]" if gate is not None else ""
        )
        lines.append(
            f"fig{fig_id}: scenario {FIGURE_SCENARIOS[fig_id]}{beyond}"
        )
    if ADMIT_RETIRE_FIGURES:
        lines.append(
            f"  admit-rate axis (figs 15-16): {list(ADMIT_RATE_AXIS)}"
        )
    if FAULTS_FIGURES:
        lines.append(
            f"  link-loss axis (figs 17-18): {list(LOSS_AXIS)}"
        )
    if PLACEMENT_FIGURES:
        lines.append(
            f"  placement lanes (figs 19-20): {list(PLACEMENT_MODES)}"
        )
    if SKETCHES_FIGURES:
        lines.append(
            f"  digest-resolution axis (figs 21-22): {list(SKETCH_K_AXIS)}"
        )
    lines += ["", "Scale presets", "============="]
    for name, value in sorted(SCALE_PRESETS.items(), key=lambda kv: kv[1]):
        lines.append(f"{name}: {value}")
    return "\n".join(lines)
