"""Per-figure reproduction harnesses (Figs 4-12).

Each ``figure_N()`` returns a :class:`FigureResult` with the same series
the paper plots; figure pairs that share a scenario (subscription load +
event load) share one underlying run, cached per (scenario, scale, seed)
so the bench suite never recomputes a scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.filter_split_forward import FSFConfig
from ..metrics.report import (
    render_series_table,
    render_traffic_accounting,
    summarize_improvement,
)
from ..protocols.registry import all_approaches, distributed_approaches
from ..workload.scenarios import (
    ALL_SCENARIOS,
    CHURN,
    LARGE_NETWORK,
    LARGE_SOURCES,
    MEDIUM,
    SMALL,
    Scenario,
    default_scale,
)
from .parallel import clear_worker_caches, default_workers, run_series_parallel
from .runner import SeriesResult, run_series

APPROACH_LABELS = {
    "naive": "Naive approach",
    "operator_placement": "Distributed operator placement",
    "multijoin": "Distributed multi-join",
    "fsf": "Filter-Split-Forward",
    "centralized": "Centralized",
}

_SERIES_CACHE: dict[tuple, SeriesResult] = {}


def scenario_series(
    scenario: Scenario,
    scale: float | None = None,
    fsf_config: FSFConfig | None = None,
    workers: int | None = None,
) -> SeriesResult:
    """Run (or fetch the cached run of) one scenario's full series.

    ``workers`` defaults to the ``REPRO_WORKERS`` environment knob (the
    CLI's ``--workers`` sets it); above 1 the series is computed by the
    sharded runner, whose result is bit-identical to the serial path —
    so the cache key deliberately ignores the worker count.
    """
    eff_scale = default_scale() if scale is None else scale
    eff_workers = default_workers() if workers is None else workers
    key = (scenario.key, eff_scale, scenario.seed, fsf_config)
    if key not in _SERIES_CACHE:
        approaches = (
            all_approaches(fsf_config)
            if scenario.include_centralized
            else distributed_approaches(fsf_config)
        )
        if eff_workers > 1:
            _SERIES_CACHE[key] = run_series_parallel(
                scenario,
                approaches,
                workers=eff_workers,
                scale=eff_scale,
                fsf_config=fsf_config,
            )
        else:
            _SERIES_CACHE[key] = run_series(
                scenario, approaches, scale=eff_scale
            )
    return _SERIES_CACHE[key]


def clear_cache() -> None:
    _SERIES_CACHE.clear()
    clear_worker_caches()


@dataclass(frozen=True)
class FigureResult:
    """One reproduced figure: series + rendered text."""

    figure_id: str
    title: str
    x_label: str
    xs: tuple[int, ...]
    series: Mapping[str, tuple[float, ...]]
    notes: str = ""

    def render(self) -> str:
        body = render_series_table(
            f"Figure {self.figure_id}: {self.title}",
            self.x_label,
            self.xs,
            {APPROACH_LABELS.get(k, k): v for k, v in self.series.items()},
        )
        if self.notes:
            body += f"\n{self.notes}"
        return body


def _load_figure(
    figure_id: str,
    title: str,
    scenario: Scenario,
    metric: str,
    scale: float | None,
) -> FigureResult:
    run = scenario_series(scenario, scale)
    if metric == "subscription":
        series = run.subscription_series()
        what = "number of forwarded queries"
    else:
        series = run.event_series()
        what = "number of forwarded data units"
    notes = ""
    if "fsf" in series and "multijoin" in series and metric == "event":
        notes = "FSF vs multi-join improvement: " + summarize_improvement(
            series["fsf"], series["multijoin"]
        )
    if "fsf" in series and "operator_placement" in series and metric == "subscription":
        notes = "FSF vs operator placement improvement: " + summarize_improvement(
            series["fsf"], series["operator_placement"]
        )
    return FigureResult(
        figure_id,
        f"{title} ({what})",
        "Number of injected queries",
        tuple(run.counts),
        {k: tuple(v) for k, v in series.items()},
        notes,
    )


def figure_4(scale: float | None = None) -> FigureResult:
    """Subscription load, small scale."""
    return _load_figure("4", "Subscription load, small scale", SMALL, "subscription", scale)


def figure_5(scale: float | None = None) -> FigureResult:
    """Event load, small scale."""
    return _load_figure("5", "Event load, small scale", SMALL, "event", scale)


def figure_6(scale: float | None = None) -> FigureResult:
    """Subscription load, medium scale (incl. centralized)."""
    return _load_figure("6", "Subscription load, medium scale", MEDIUM, "subscription", scale)


def figure_7(scale: float | None = None) -> FigureResult:
    """Event load, medium scale (incl. centralized)."""
    return _load_figure("7", "Event load, medium scale", MEDIUM, "event", scale)


def figure_8(scale: float | None = None) -> FigureResult:
    """Subscription load, large scale #1 (network size)."""
    return _load_figure(
        "8", "Subscription load, large (network) scale", LARGE_NETWORK, "subscription", scale
    )


def figure_9(scale: float | None = None) -> FigureResult:
    """Event load, large scale #1 (network size)."""
    return _load_figure("9", "Event load, large (network) scale", LARGE_NETWORK, "event", scale)


def figure_10(scale: float | None = None) -> FigureResult:
    """Subscription load, large scale #2 (number of sources)."""
    return _load_figure(
        "10", "Subscription load, large (sources) scale", LARGE_SOURCES, "subscription", scale
    )


def figure_11(scale: float | None = None) -> FigureResult:
    """Event load, large scale #2 (number of sources)."""
    return _load_figure("11", "Event load, large (sources) scale", LARGE_SOURCES, "event", scale)


def figure_12(scale: float | None = None) -> FigureResult:
    """End-user event recall of Filter-Split-Forward, all four settings."""
    raw: dict[str, tuple[tuple[int, ...], tuple[float, ...]]] = {}
    for scenario, label in (
        (SMALL, "Small scale"),
        (MEDIUM, "Medium scale"),
        (LARGE_NETWORK, "Large scale #1"),
        (LARGE_SOURCES, "Large scale #2"),
    ):
        run = scenario_series(scenario, scale)
        raw[label] = (
            tuple(run.counts),
            tuple(round(100 * r, 1) for r in run.recall_series("fsf")),
        )
    # The small-scale axis extends to 1000 queries while the others end
    # at 900 (as in the paper); align on the shared prefix.
    n = min(len(values) for _, values in raw.values())
    xs = next(iter(raw.values()))[0][:n]
    series = {label: values[:n] for label, (_, values) in raw.items()}
    return FigureResult(
        "12",
        "End user event recall (%) for Filter-Split-Forward",
        "Number of injected queries",
        xs,
        series,
        notes="Deterministic approaches measure 100% by construction.",
    )


def figure_13(scale: float | None = None) -> FigureResult:
    """Event load under churn — beyond the paper.

    The dynamic-workload family: the small-scale deployment under a
    two-day drifting, bursty replay where 25% of the sensors leave and
    rejoin mid-campaign.  The notes carry the full per-kind traffic
    accounting (the advertisement channel is live during the replay:
    retraction floods and re-floods are part of the bill).
    """
    run = scenario_series(CHURN, scale)
    accounting = render_traffic_accounting(
        "Traffic accounting under churn (units, whole series)",
        {
            APPROACH_LABELS.get(k, k): results
            for k, results in run.results.items()
        },
    )
    return FigureResult(
        "13",
        "Event load under churn & burst (number of forwarded data units)",
        "Number of injected queries",
        tuple(run.counts),
        {k: tuple(v) for k, v in run.event_series().items()},
        notes=accounting,
    )


def figure_14(scale: float | None = None) -> FigureResult:
    """End-user recall under churn — beyond the paper.

    The deterministic approaches measure 100% at the shipped scales: a
    credited trigger beats the retraction flood whenever they share a
    path, and the remaining race (a nearer trigger arriving after a
    farther retraction fenced its filler) is a hops x latency sliver of
    the delta_t window.  FSF keeps its probabilistic filter trade-off.
    Deliveries drawn from a departed sensor's not-yet-fenced history
    are the mirror image — counted by ``RunResult.false_positive_rate``,
    not by this figure.
    """
    run = scenario_series(CHURN, scale)
    series = {
        key: tuple(
            round(100 * r.recall, 1) for r in run.results[key]
        )
        for key in run.results
    }
    return FigureResult(
        "14",
        "End user event recall (%) under churn & burst",
        "Number of injected queries",
        tuple(run.counts),
        series,
    )


ALL_FIGURES = {
    "4": figure_4,
    "5": figure_5,
    "6": figure_6,
    "7": figure_7,
    "8": figure_8,
    "9": figure_9,
    "10": figure_10,
    "11": figure_11,
    "12": figure_12,
    "13": figure_13,
    "14": figure_14,
}

CHURN_FIGURES = ("13", "14")
"""The dynamic-workload family — beyond the paper, gated behind the
CLI's ``--churn`` flag for the ``all`` / ``experiments-md`` targets."""
