"""Sharded multi-process experiment runner.

:func:`repro.experiments.runner.run_series` walks the (approach,
subscription-count) measurement matrix of one scenario serially; every
point is an *independent* simulation (the paper's protocol runs a fresh
network per point precisely so approaches are comparable), which makes
the matrix embarrassingly parallel.  This module fans the same point
matrix out over a ``ProcessPoolExecutor`` and merges the per-point
``RunResult``\\ s back into a :class:`SeriesResult` that is
**bit-identical** to the serial run's.

What makes that equality possible — and what it machine-checks:

* every random stream is ``PYTHONHASHSEED``-independent
  (:mod:`repro.seeding`): a worker process re-synthesizing the replay
  and workload draws exactly the events and subscriptions the parent
  (or any sibling) would — the determinism bug this module's tests
  guard against is builtin-``hash`` seeding sneaking back in;
* work is partitioned deterministically: the task list is ordered
  counts-major / approach-registry order and chunked by
  ``ProcessPoolExecutor.map``, so results come back in the exact order
  the serial loop would produce them regardless of which worker ran
  which chunk;
* each worker rebuilds scenario-level state (deployment, replay,
  workload, oracle truth) from the task's declared seeds and memoises
  it per process, so a worker running several points of one scenario
  pays the setup once — the same sharing ``run_series`` gets for free.

Approaches travel as registry *keys*, not instances: node factories may
be closures (FSF's is), which do not pickle; workers re-resolve them
via :func:`repro.protocols.registry.all_approaches` with the same
``FSFConfig``.  Scenarios must carry a module-level
``deployment_factory`` (all built-in scenarios do) to be picklable.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.filter_split_forward import FSFConfig
from ..protocols.base import Approach
from ..protocols.registry import all_approaches
from ..workload.scenarios import Scenario, default_scale
from .runner import RunResult, SeriesResult, run_program

WORKERS_ENV_VAR = "REPRO_WORKERS"


def default_workers() -> int:
    """Worker-process count, overridable via the environment (default 1)."""
    raw = os.environ.get(WORKERS_ENV_VAR)  # repro-lint: ignore[env-read] -- documented REPRO_WORKERS knob, read once at experiment entry
    if raw is None:
        return 1
    workers = int(raw)
    if workers < 1:
        raise ValueError(f"{WORKERS_ENV_VAR} must be >= 1, got {raw}")
    return workers


@dataclass(frozen=True)
class PointTask:
    """One (approach, subscription-count) cell of a scenario's matrix.

    Carries everything a worker needs and nothing process-bound: the
    scenario (seeds + picklable factory), the *resolved* scale and
    network ``delta_t``, and the approach's registry key.  Frozen and
    hashable so task lists are safe to memoise against.
    """

    scenario: Scenario
    scale: float
    approach_key: str
    n: int
    delta_t: float
    latency: float
    oracle: str | None
    fsf_config: FSFConfig | None


# ---------------------------------------------------------------------------
# worker side — per-process memos rebuild shared state once, not per point
# ---------------------------------------------------------------------------
_SCENARIO_STATE: dict = {}
_COMPILED_MEMO: dict = {}
_TRUTH_MEMO: dict = {}


def clear_worker_caches() -> None:
    """Drop the per-process scenario/program/truth memos.

    Workers die with their pool, but the in-process fallback path
    (``workers=1``) populates these in the parent, where a long-lived
    session sweeping many scenarios would otherwise accumulate workload
    and truth state forever.  ``figures.clear_cache()`` calls this too.
    """
    _SCENARIO_STATE.clear()
    _COMPILED_MEMO.clear()
    _TRUTH_MEMO.clear()


def _scenario_state(scenario: Scenario, scale: float):
    """(deployment, base program, program source) for one scenario +
    scale — the prefix-independent state every point of the scenario
    shares (replay synthesis, subscription pool, churn *and* lifecycle
    draws all live in the source, so lifecycle edges thread through
    worker memos exactly like churn does)."""
    key = (scenario, scale)
    state = _SCENARIO_STATE.get(key)
    if state is None:
        deployment = scenario.deployment()
        counts = scenario.subscription_counts(scale)
        base = scenario.program(max(counts))
        state = (deployment, base, base.source(deployment))
        _SCENARIO_STATE[key] = state
    return state


def _compiled_point(task: PointTask):
    """The compiled program of one matrix point, memoised per process —
    shared by every approach of the same (scenario, scale, n) cell."""
    key = (task.scenario, task.scale, task.n)
    compiled = _COMPILED_MEMO.get(key)
    if compiled is None:
        deployment, base, source = _scenario_state(task.scenario, task.scale)
        compiled = base.with_prefix(task.n).compile(deployment, source)
        _COMPILED_MEMO[key] = compiled
    return compiled


def run_task(task: PointTask) -> RunResult:
    """Execute one matrix point — the worker entry (module-level, so it
    pickles by reference)."""
    compiled = _compiled_point(task)
    truth_key = (task.scenario, task.scale, task.n, task.oracle)
    truths = _TRUTH_MEMO.get(truth_key)
    if truths is None:
        truths = compiled.truth(method=task.oracle)
        _TRUTH_MEMO[truth_key] = truths
    approach = all_approaches(task.fsf_config)[task.approach_key]
    return run_program(
        approach,
        compiled,
        truths=truths,
        delta_t=task.delta_t,
        latency=task.latency,
    )


# ---------------------------------------------------------------------------
# parent side — partition, fan out, merge
# ---------------------------------------------------------------------------
def _resolve_keys(
    approaches: Mapping[str, Approach] | Sequence[str],
    fsf_config: FSFConfig | None,
) -> tuple[list[str], FSFConfig | None]:
    """(registry keys in caller order, effective FSFConfig), validated.

    Workers rebuild approaches from the registry, so any configuration a
    passed-in ``Approach`` closed over must be re-declared.  Approaches
    carry it (``Approach.config``): harvest it from a mapping when the
    caller did not pass ``fsf_config``, and refuse a contradiction —
    silently running workers with a different config than the caller's
    instances would break the bit-identical-to-serial contract.
    """
    keys = list(approaches)  # a Mapping iterates its keys
    if isinstance(approaches, Mapping):
        for key, approach in approaches.items():
            declared = getattr(approach, "config", None)
            if declared is None:
                continue
            if fsf_config is None:
                fsf_config = declared
            elif declared != fsf_config:
                raise ValueError(
                    f"approach {key!r} was built with {declared!r} but "
                    f"fsf_config={fsf_config!r} was passed; drop one so "
                    "worker processes rebuild the same configuration"
                )
    registry = all_approaches(fsf_config)
    unknown = [key for key in keys if key not in registry]
    if unknown:
        raise ValueError(
            f"approaches {unknown} are not in the registry; the parallel "
            "runner re-resolves approaches by key in worker processes"
        )
    return keys, fsf_config


def point_tasks(
    scenario: Scenario,
    keys: Sequence[str],
    scale: float,
    delta_t: float,
    latency: float,
    oracle: str | None,
    fsf_config: FSFConfig | None,
) -> list[PointTask]:
    """The deterministic work partition: counts-major, caller key order —
    exactly the order the serial loop visits points, so a positional
    merge reconstructs the serial result."""
    return [
        PointTask(scenario, scale, key, n, delta_t, latency, oracle, fsf_config)
        for n in scenario.subscription_counts(scale)
        for key in keys
    ]


def merge_points(
    scenario: Scenario,
    counts: Sequence[int],
    keys: Sequence[str],
    results: Sequence[RunResult],
) -> SeriesResult:
    """Reassemble per-point results (in task order) into a SeriesResult."""
    series = SeriesResult(scenario, list(counts))
    for key in keys:
        series.results[key] = []
    it = iter(results)
    for _ in counts:
        for key in keys:
            series.results[key].append(next(it))
    return series


def run_series_parallel(
    scenario: Scenario,
    approaches: Mapping[str, Approach] | Sequence[str],
    workers: int | None = None,
    scale: float | None = None,
    delta_t: float | None = None,
    latency: float = 0.05,
    oracle: str | None = None,
    fsf_config: FSFConfig | None = None,
) -> SeriesResult:
    """``run_series`` sharded over ``workers`` processes.

    Returns a :class:`SeriesResult` equal, ``RunResult`` dataclass for
    dataclass, to ``run_series(scenario, approaches, scale, delta_t,
    latency)`` — under any ``PYTHONHASHSEED`` and any worker count.
    ``workers=None`` defers to the ``REPRO_WORKERS`` environment
    default; ``workers=1`` runs the same task pipeline in-process (no
    pool), which is also the fallback for non-picklable custom
    scenarios.
    """
    eff_workers = default_workers() if workers is None else workers
    eff_scale = default_scale() if scale is None else scale
    dt = scenario.delta_t if delta_t is None else delta_t
    keys, fsf_config = _resolve_keys(approaches, fsf_config)
    counts = scenario.subscription_counts(eff_scale)
    tasks = point_tasks(
        scenario, keys, eff_scale, dt, latency, oracle, fsf_config
    )
    if eff_workers <= 1 or len(tasks) == 1:
        results = [run_task(task) for task in tasks]
        return merge_points(scenario, counts, keys, results)
    try:
        pickle.dumps(tasks[0])
    except Exception as exc:
        raise ValueError(
            "scenario is not picklable (deployment_factory must be a "
            "module-level callable, not a lambda) — run serially or fix "
            f"the factory: {exc}"
        ) from exc
    # chunksize=1 keeps the partition point-grained (best balance on
    # long points); per-process memos still share scenario state within
    # a worker.  Input order == serial order, map() preserves it.
    with ProcessPoolExecutor(max_workers=min(eff_workers, len(tasks))) as pool:
        results = list(pool.map(run_task, tasks, chunksize=1))
    return merge_points(scenario, counts, keys, results)
