"""Experiment runner — the measurement protocol of Section VI, driven
by workload programs through the Session facade.

For every measurement point the paper reports ("we measure the
performance of each approach after every new batch of 100
subscriptions") we run a fresh session per (approach, subscription
count): the same deployment, the same subscription prefix in the same
registration order, and the same replayed event set — so approaches are
compared under identical conditions exactly as the paper ensures.

One point is one :class:`~repro.workload.program.CompiledProgram`
executed by :func:`repro.workload.program.execute_program`:

1. ``Session.create`` populates nodes, attaches sensors and floods
   advertisements to quiescence (skipped flood for centralized);
2. the program's *setup admissions* (the static subscription prefix)
   register sequentially, settled after each — the traffic accrued here
   is the **subscription load**;
3. the replay is ingested at the program's fixed virtual start time,
   interleaved with churn transitions and query admit/retire edges; the
   event traffic accrued here is the **publication load**, and the
   subscription-channel traffic splits into mid-run **admission load**
   and **teardown load** (``UnsubscribeMessage`` units);
4. the delivery log is compared against the oracle, whose per-query
   truth is fenced to the program's scheduled ``[admit, retire]``
   lifetimes.

The legacy entry point ``run_point(approach, deployment, placed,
events, ...)`` is kept: it wraps its arguments into a setup-only
compiled program, so a settled admit-at-t=0 program reproduces the
historical fixed-prefix results bit-identically
(``tests/test_program_bit_identity.py`` machine-checks this across all
five approaches and both matching modes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..metrics.approx import churn_fences, measure_approx
from ..metrics.oracle import SubscriptionTruth
from ..metrics.recall import measure_recall
from ..model.events import SimpleEvent
from ..network.topology import Deployment
from ..protocols.base import Approach
from ..workload.program import (
    REPLAY_START,
    Admission,
    CompiledProgram,
    execute_program,
)
from ..workload.scenarios import Scenario
from ..workload.sensorscope import ChurnSchedule
from ..workload.subscriptions import PlacedSubscription


@dataclass(frozen=True, slots=True)
class RunResult:
    """Everything one (approach, subscription count) point produced.

    ``advertisement_load`` is the setup-time flood (phase 1);
    ``reflood_load`` is every advertisement unit accrued *after* setup —
    the churn retraction floods and re-joins' re-floods.  Static
    scenarios measure 0 there.

    The query-lifecycle lane: ``n_subscriptions`` counts every
    admission (static prefix + scheduled), ``admit_load`` the mid-run
    subscription-channel units that are *not* teardown (scheduled
    registrations plus any teardown-repair re-dispatches), and
    ``teardown_load`` the ``UnsubscribeMessage`` units of the
    ``retired_queries`` retirements.  Programs without a lifecycle
    measure 0 on all three extras.

    The fault lane: ``retransmission_load`` are the units the
    reliability layer re-sent (whole-run total), ``refresh_load`` the
    units its soft-state refresh rounds carried, ``dropped_messages``
    the transmissions the fault plan lost.  Fault-free runs measure 0
    on all three.

    The approximate lane (``answer_mode="approximate"`` programs):
    ``sketch_load`` is the subset of the standard channels the lane's
    own messages carried (tree setup on the subscription channel, push
    rounds on the event channel — already *included* in
    ``subscription_load``/``event_load``, never added on top);
    ``approx_queries``/``approx_mean_recall``/``approx_max_error``/
    ``approx_bound_violations`` summarise the oracle pass over the
    certified answers.  Exact-mode runs measure 0 everywhere and keep
    ``approx_mean_recall`` at its vacuous 0.0 default.
    """

    approach: str
    n_subscriptions: int
    subscription_load: int
    event_load: int
    advertisement_load: int
    recall: float
    false_positive_rate: float
    true_instances: int
    delivered_instances: int
    delivered_events: int
    dropped_subscriptions: int
    complex_deliveries: int
    sim_events: int
    reflood_load: int = 0
    admit_load: int = 0
    teardown_load: int = 0
    retired_queries: int = 0
    retransmission_load: int = 0
    refresh_load: int = 0
    dropped_messages: int = 0
    sketch_load: int = 0
    approx_queries: int = 0
    approx_mean_recall: float = 0.0
    approx_max_error: int = 0
    approx_bound_violations: int = 0


def run_program(
    approach: Approach,
    compiled: CompiledProgram,
    truths: Mapping[str, SubscriptionTruth] | None = None,
    delta_t: float = 5.0,
    latency: float = 0.05,
    oracle: str | None = None,
    matching: str = "incremental",
) -> RunResult:
    """Run one approach over one compiled program; see module docstring.

    ``truths`` lets a series share one oracle pass across approaches
    (the truth only depends on the program, never on the approach);
    ``None`` computes it here via ``compiled.truth(method=oracle)``.
    """
    execution = execute_program(
        compiled,
        approach,
        matching=matching,
        latency=latency,
        delta_t=delta_t,
    )
    if truths is None:
        truths = compiled.truth(method=oracle)
    network = execution.session.network
    report = measure_recall(truths, network.delivery)

    after_ads = execution.after_advertisements
    sub_traffic = execution.after_setup.minus(after_ads)
    event_traffic = execution.final.minus(execution.after_setup)
    teardown = event_traffic.teardown_units
    approx = measure_approx(
        network, compiled.events, churn_fences(compiled.churn)
    )
    return RunResult(
        approach=approach.key,
        n_subscriptions=len(compiled.admissions),
        subscription_load=sub_traffic.subscription_units,
        event_load=event_traffic.event_units,
        advertisement_load=after_ads.advertisement_units,
        recall=report.recall,
        false_positive_rate=report.false_positive_rate,
        true_instances=report.true_instances,
        delivered_instances=report.delivered_instances,
        delivered_events=report.delivered_events,
        dropped_subscriptions=len(network.dropped_subscriptions),
        complex_deliveries=sum(network.delivery.complex_deliveries.values()),
        sim_events=network.sim.processed_events,
        reflood_load=execution.final.advertisement_units
        - after_ads.advertisement_units,
        admit_load=event_traffic.subscription_units - teardown,
        teardown_load=teardown,
        retired_queries=execution.retired,
        retransmission_load=execution.final.retransmission_units,
        refresh_load=execution.final.refresh_units,
        dropped_messages=execution.final.dropped_messages,
        sketch_load=execution.final.sketch_units,
        approx_queries=approx.queries,
        approx_mean_recall=approx.mean_recall if approx.stats else 0.0,
        approx_max_error=approx.max_observed_error,
        approx_bound_violations=approx.bound_violations,
    )


def run_point(
    approach: Approach,
    deployment: Deployment,
    placed: Sequence[PlacedSubscription],
    events: Sequence[SimpleEvent],
    truths: Mapping[str, SubscriptionTruth] | None = None,
    delta_t: float = 5.0,
    latency: float = 0.05,
    oracle: str | None = None,
    churn: ChurnSchedule | None = None,
    matching: str = "incremental",
) -> RunResult:
    """Run one approach on one already-materialised subscription prefix.

    The pre-program entry point, kept for callers that synthesize their
    own workload: it wraps ``placed``/``events``/``churn`` into a
    setup-only compiled program (every query admitted settled at t=0,
    none retired) and runs it through the facade — the settled program
    semantics the bit-identity harness pins to the historical wiring.

    ``events`` is the replay already shifted to ``REPLAY_START``
    (``replay.shifted(REPLAY_START)``): the caller computes the oracle's
    ground truth from the same list, so the scheduled events and the
    truth inputs are literally the same objects — one materialisation
    per series, not one per (approach, count) point.  ``churn`` must be
    shifted to the same clock (``schedule.shifted(REPLAY_START)``).
    """
    compiled = CompiledProgram(
        deployment=deployment,
        events=tuple(events),
        churn=churn,
        admissions=tuple(
            Admission(
                sub_id=item.subscription.sub_id,
                node_id=item.node_id,
                subscription=item.subscription,
                admit=None,
                retire=None,
            )
            for item in placed
        ),
        replay_start=REPLAY_START,
        span=0.0,
    )
    return run_program(
        approach,
        compiled,
        truths=truths,
        delta_t=delta_t,
        latency=latency,
        oracle=oracle,
        matching=matching,
    )


@dataclass
class SeriesResult:
    """A whole figure-pair worth of points: one scenario, all approaches."""

    scenario: Scenario
    counts: list[int]
    results: dict[str, list[RunResult]] = field(default_factory=dict)

    def subscription_series(self) -> dict[str, list[int]]:
        return {
            key: [r.subscription_load for r in runs]
            for key, runs in self.results.items()
        }

    def event_series(self) -> dict[str, list[int]]:
        return {
            key: [r.event_load for r in runs] for key, runs in self.results.items()
        }

    def recall_series(self, approach_key: str) -> list[float]:
        return [r.recall for r in self.results[approach_key]]

    def false_positive_series(self, approach_key: str) -> list[float]:
        return [r.false_positive_rate for r in self.results[approach_key]]

    def teardown_series(self) -> dict[str, list[int]]:
        """Per-approach ``UnsubscribeMessage`` units at each point."""
        return {
            key: [r.teardown_load for r in runs]
            for key, runs in self.results.items()
        }

    def reliability_overhead_series(self) -> dict[str, list[int]]:
        """Per-approach retransmit + refresh units at each point (the
        price of the reliability layer, figure 18's y-axis)."""
        return {
            key: [r.retransmission_load + r.refresh_load for r in runs]
            for key, runs in self.results.items()
        }


def run_series(
    scenario: Scenario,
    approaches: Mapping[str, Approach],
    scale: float | None = None,
    delta_t: float | None = None,
    latency: float = 0.05,
    oracle: str | None = None,
) -> SeriesResult:
    """All measurement points of one scenario for the given approaches.

    The scenario compiles to one workload program per point (the static
    prefix grows along the measurement axis; replay, churn and the
    lifecycle schedule are shared through one
    :class:`~repro.workload.program.ProgramSource`).  The oracle ground
    truth per point is computed once from the compiled program and
    shared by all approaches.  ``oracle`` selects the truth pass
    (engine / reference); ``None`` defers to the ``REPRO_ORACLE``
    environment default.
    """
    dt = scenario.delta_t if delta_t is None else delta_t
    deployment = scenario.deployment()
    counts = scenario.subscription_counts(scale)
    base = scenario.program(max(counts))
    source = base.source(deployment)
    series = SeriesResult(scenario, counts)
    for key in approaches:
        series.results[key] = []
    for n in counts:
        compiled = base.with_prefix(n).compile(deployment, source)
        truths = compiled.truth(method=oracle)
        for key, approach in approaches.items():
            series.results[key].append(
                run_program(
                    approach,
                    compiled,
                    truths=truths,
                    delta_t=dt,
                    latency=latency,
                )
            )
    return series


def shifted_churn(replay) -> ChurnSchedule | None:
    """The replay's churn schedule on the simulation clock, or None.

    Static replays carry no schedule; dynamic replays without cycling
    sensors collapse to None too, so the common path stays churn-free.
    """
    schedule = getattr(replay, "churn", None)
    if schedule is None or not schedule:
        return None
    return schedule.shifted(REPLAY_START)
