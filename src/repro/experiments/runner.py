"""Experiment runner — reproduces the measurement protocol of Section VI.

For every measurement point the paper reports ("we measure the
performance of each approach after every new batch of 100
subscriptions") we run a fresh network per (approach, subscription
count): the same deployment, the same subscription prefix in the same
registration order, and the same replayed event set — so approaches are
compared under identical conditions exactly as the paper ensures.

Phases of one point:

1. populate nodes, attach sensors, flood advertisements (skipped by the
   centralized scheme), run to quiescence;
2. inject the subscription prefix sequentially, running to quiescence
   after each (deterministic registration order);  the traffic accrued
   here is the **subscription load**;
3. replay the event set at a fixed virtual start time, run to
   quiescence;  the traffic accrued here is the **publication load**;
4. compare the delivery log against the oracle for recall / false
   positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..metrics.oracle import SubscriptionTruth, compute_truth
from ..metrics.recall import RecallReport, measure_recall
from ..model.events import SimpleEvent
from ..network.network import Network
from ..network.topology import Deployment
from ..protocols.base import Approach
from ..sim import Simulator
from ..workload.scenarios import Scenario, default_scale
from ..workload.sensorscope import ChurnSchedule
from ..workload.subscriptions import PlacedSubscription, generate_subscriptions

REPLAY_START = 10_000.0
"""Virtual time at which event replay begins — far beyond any
subscription-phase activity, so the replayed timestamps (and therefore
the oracle's ground truth) are identical for every approach."""


@dataclass(frozen=True, slots=True)
class RunResult:
    """Everything one (approach, subscription count) point produced.

    ``advertisement_load`` is the setup-time flood (phase 1);
    ``reflood_load`` is every advertisement unit accrued *after* setup —
    the churn retraction floods and re-joins' re-floods.  Static
    scenarios measure 0 there.
    """

    approach: str
    n_subscriptions: int
    subscription_load: int
    event_load: int
    advertisement_load: int
    recall: float
    false_positive_rate: float
    true_instances: int
    delivered_instances: int
    delivered_events: int
    dropped_subscriptions: int
    complex_deliveries: int
    sim_events: int
    reflood_load: int = 0


def run_point(
    approach: Approach,
    deployment: Deployment,
    placed: Sequence[PlacedSubscription],
    events: Sequence[SimpleEvent],
    truths: Mapping[str, SubscriptionTruth] | None = None,
    delta_t: float = 5.0,
    latency: float = 0.05,
    oracle: str | None = None,
    churn: ChurnSchedule | None = None,
) -> RunResult:
    """Run one approach on one subscription prefix; see module docstring.

    ``events`` is the replay already shifted to ``REPLAY_START``
    (``replay.shifted(REPLAY_START)``): the caller computes the oracle's
    ground truth from the same list, so the scheduled events and the
    truth inputs are literally the same objects — one materialisation
    per series, not one per (approach, count) point.  ``churn`` must be
    shifted to the same clock (``schedule.shifted(REPLAY_START)``); its
    join/leave transitions are interleaved with the publications and
    the oracle fences departed sensors identically.
    """
    sim = Simulator(seed=deployment.seed)
    network = Network(deployment, sim, latency=latency, delta_t=delta_t)
    approach.populate(network)

    # Phase 1: advertisements.
    network.attach_all_sensors()
    network.run_to_quiescence()
    after_ads = network.meter.snapshot()

    # Phase 2: subscriptions, in registration order.
    for item in placed:
        network.register_subscription(item.node_id, item.subscription)
        network.run_to_quiescence()
    after_subs = network.meter.snapshot()

    # Phase 3: event replay at a fixed virtual start time, interleaved
    # with the churn schedule's lifecycle transitions.
    if sim.now >= REPLAY_START:
        raise RuntimeError(
            f"subscription phase ran past t={REPLAY_START}; raise REPLAY_START"
        )
    node_of_sensor = {s.sensor_id: s.node_id for s in deployment.sensors}
    sim.schedule_timeline(
        (
            event.timestamp,
            lambda e=event: network.publish(node_of_sensor[e.sensor_id], e),
        )
        for event in events
    )
    if churn is not None:
        network.schedule_churn(churn)
    network.run_to_quiescence()
    final = network.meter.snapshot()

    # Phase 4: recall against the oracle.
    if truths is None:
        truths = compute_truth(
            [p.subscription for p in placed],
            deployment,
            events,
            method=oracle,
            churn=churn,
        )
    report = measure_recall(truths, network.delivery)

    sub_traffic = after_subs.minus(after_ads)
    event_traffic = final.minus(after_subs)
    return RunResult(
        approach=approach.key,
        n_subscriptions=len(placed),
        subscription_load=sub_traffic.subscription_units,
        event_load=event_traffic.event_units,
        advertisement_load=after_ads.advertisement_units,
        recall=report.recall,
        false_positive_rate=report.false_positive_rate,
        true_instances=report.true_instances,
        delivered_instances=report.delivered_instances,
        delivered_events=report.delivered_events,
        dropped_subscriptions=len(network.dropped_subscriptions),
        complex_deliveries=sum(network.delivery.complex_deliveries.values()),
        sim_events=sim.processed_events,
        reflood_load=final.advertisement_units - after_ads.advertisement_units,
    )


@dataclass
class SeriesResult:
    """A whole figure-pair worth of points: one scenario, all approaches."""

    scenario: Scenario
    counts: list[int]
    results: dict[str, list[RunResult]] = field(default_factory=dict)

    def subscription_series(self) -> dict[str, list[int]]:
        return {
            key: [r.subscription_load for r in runs]
            for key, runs in self.results.items()
        }

    def event_series(self) -> dict[str, list[int]]:
        return {
            key: [r.event_load for r in runs] for key, runs in self.results.items()
        }

    def recall_series(self, approach_key: str) -> list[float]:
        return [r.recall for r in self.results[approach_key]]

    def false_positive_series(self, approach_key: str) -> list[float]:
        return [r.false_positive_rate for r in self.results[approach_key]]


def run_series(
    scenario: Scenario,
    approaches: Mapping[str, Approach],
    scale: float | None = None,
    delta_t: float | None = None,
    latency: float = 0.05,
    oracle: str | None = None,
) -> SeriesResult:
    """All measurement points of one scenario for the given approaches.

    The oracle ground truth per point is computed once and shared by all
    approaches (it only depends on subscriptions + events).  ``oracle``
    selects the truth pass (engine / reference); ``None`` defers to the
    ``REPRO_ORACLE`` environment default.
    """
    dt = scenario.delta_t if delta_t is None else delta_t
    deployment = scenario.deployment()
    replay = scenario.make_replay(deployment)
    counts = scenario.subscription_counts(scale)
    workload = generate_subscriptions(
        deployment,
        replay.medians,
        scenario.workload_config(max(counts)),
        spreads=replay.spreads,
    )
    shifted = replay.shifted(REPLAY_START)
    churn = shifted_churn(replay)
    series = SeriesResult(scenario, counts)
    for key in approaches:
        series.results[key] = []
    for n in counts:
        placed = workload[:n]
        truths = compute_truth(
            [p.subscription for p in placed],
            deployment,
            shifted,
            method=oracle,
            churn=churn,
        )
        for key, approach in approaches.items():
            series.results[key].append(
                run_point(
                    approach,
                    deployment,
                    placed,
                    shifted,
                    truths=truths,
                    delta_t=dt,
                    latency=latency,
                    churn=churn,
                )
            )
    return series


def shifted_churn(replay) -> ChurnSchedule | None:
    """The replay's churn schedule on the simulation clock, or None.

    Static replays carry no schedule; dynamic replays without cycling
    sensors collapse to None too, so the common path stays churn-free.
    """
    schedule = getattr(replay, "churn", None)
    if schedule is None or not schedule:
        return None
    return schedule.shifted(REPLAY_START)
