"""Tables I and II, and the Figure 3 walkthrough scenario.

Table I is the motivating subsumption example: s3 cannot be filtered by
classic same-attribute-set checking, yet the filter-split-forward
pipeline drops it once split fragments become comparable.  The
walkthrough builds the 6-node network of Figure 3, injects the three
subscriptions at one node and reports where operators were stored,
covered and forwarded — reproducing the paper's narrative that nothing
of s3 travels past the divergence node.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.filter_split_forward import FSFConfig, filter_split_forward_approach
from ..model.advertisements import Advertisement
from ..model.locations import Location
from ..model.subscriptions import IdentifiedSubscription
from ..network.network import Network
from ..network.node import LOCAL
from ..network.topology import Deployment, SensorPlacement
from ..model.attributes import AttributeType
from ..model.intervals import Interval
from ..protocols.registry import render_table_ii
from ..sim import Simulator

import networkx as nx

TABLE_I_ROWS = (
    ("s1", "50 < a < 80", "10 < b < 30", ""),
    ("s2", "", "20 < b < 40", "2 < c < 20"),
    ("s3", "55 < a < 75", "15 < b < 35", "5 < c < 15"),
)


def table_i_subscriptions(delta_t: float = 5.0) -> list[IdentifiedSubscription]:
    """The three subscriptions of Table I over sensors a, b, c."""
    return [
        IdentifiedSubscription.from_ranges(
            "s1", {"a": ("t", 50, 80), "b": ("t", 10, 30)}, delta_t
        ),
        IdentifiedSubscription.from_ranges(
            "s2", {"b": ("t", 20, 40), "c": ("t", 2, 20)}, delta_t
        ),
        IdentifiedSubscription.from_ranges(
            "s3",
            {"a": ("t", 55, 75), "b": ("t", 15, 35), "c": ("t", 5, 15)},
            delta_t,
        ),
    ]


def render_table_i() -> str:
    header = ("Subscriptions", "Sensor a", "Sensor b", "Sensor c")
    rows = [header, *TABLE_I_ROWS]
    widths = [max(len(r[c]) for r in rows) for c in range(4)]
    lines = ["Table I: subscription subsumption example",
             "=" * 42]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_table_2() -> str:
    return "Table II: implemented approaches\n================================\n" + render_table_ii()


def fig3_deployment() -> Deployment:
    """The 6-node network of Figure 3.

    n6 hosts the users; sensors a, b sit behind n4 (via n1, n2) and
    sensor c behind n3; n5 is the junction where paths toward {a, b}
    and {c} diverge.
    """
    graph = nx.Graph()
    graph.add_edges_from(
        [("n6", "n5"), ("n5", "n4"), ("n4", "n1"), ("n4", "n2"), ("n5", "n3")]
    )
    attr = AttributeType("t", Interval(-1000.0, 1000.0))
    sensors = [
        SensorPlacement("a", attr, Location(0.0, 0.0), "n1", 0),
        SensorPlacement("b", attr, Location(1.0, 0.0), "n2", 0),
        SensorPlacement("c", attr, Location(5.0, 0.0), "n3", 1),
    ]
    groups = {0: sensors[:2], 1: sensors[2:]}
    return Deployment(
        graph, sensors, groups, ["n4", "n5", "n6"], {0: "n4", 1: "n5"}, seed=0
    )


@dataclass
class Fig3Walkthrough:
    """State of the Figure 3 network after the three subscriptions."""

    network: Network
    stored: dict[str, list[str]]
    covered: dict[str, list[str]]
    subscription_units: int

    def render(self) -> str:
        lines = [
            "Figure 3 walkthrough: Table I subscriptions on the 6-node network",
            "=" * 66,
        ]
        for node_id in sorted(self.stored):
            lines.append(
                f"{node_id}: stored={self.stored[node_id]} "
                f"covered={self.covered[node_id]}"
            )
        lines.append(f"total subscription units forwarded: {self.subscription_units}")
        return "\n".join(lines)


def run_fig3_walkthrough(
    exact_filtering: bool = True,
) -> Fig3Walkthrough:
    """Inject Table I's subscriptions at n6 and report operator placement.

    With exact per-slot union filtering (the deterministic mode) the
    outcome matches the paper's Figure 3: s3 is stored at the node where
    it splits but none of its fragments travel toward the sensors.
    """
    deployment = fig3_deployment()
    network = Network(deployment, Simulator(seed=0), delta_t=5.0)
    approach = filter_split_forward_approach(
        FSFConfig(exact_filtering=exact_filtering)
    )
    approach.populate(network)
    network.attach_all_sensors()
    network.run_to_quiescence()
    for subscription in table_i_subscriptions():
        network.register_subscription("n6", subscription)
        network.run_to_quiescence()
    stored: dict[str, list[str]] = {}
    covered: dict[str, list[str]] = {}
    for node_id, node in sorted(network.nodes.items()):
        stored[node_id] = sorted(
            op.op_id for s in node.stores.values() for op in s.uncovered
        )
        covered[node_id] = sorted(
            op.op_id for s in node.stores.values() for op in s.covered
        )
    return Fig3Walkthrough(
        network, stored, covered, network.meter.subscription_units
    )
