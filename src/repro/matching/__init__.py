"""Incremental correlation matching — per-operator state instead of
recompute-on-arrival (see :mod:`repro.matching.engine`).

The reference semantics live in :mod:`repro.model.matching` and remain
the machine-checked oracle; this package is the performance engine the
node event path runs on.
"""

from .batch import Lane, SharedTimeline
from .columnar import ColumnarEngine, ColumnarMatcher
from .engine import MatchingEngine, OperatorMatcher
from .timeline import Timeline, TimelineView

__all__ = [
    "ColumnarEngine",
    "ColumnarMatcher",
    "Lane",
    "MatchingEngine",
    "OperatorMatcher",
    "SharedTimeline",
    "Timeline",
    "TimelineView",
]
