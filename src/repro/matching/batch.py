"""Shared columnar slot timelines — storage for the columnar matcher.

One :class:`SharedTimeline` holds every event a *group* of slot filters
draws from, where a group is the pair ``(attribute, sensor set)``.  Each
distinct value interval registered on the group becomes a refcounted
:class:`Lane`; the slot timelines of all operators whose filters share
the group are then *views* of one backing store — a boolean mask per
lane over one float64 value column — instead of per-operator copies.
This is the SIMD lane/bank organisation: one arriving value is compared
against every lane's bounds in a single vectorised broadcast, and
near-duplicate queries (the paper's subsumption workload) share both
storage and the comparison work.

Layout per group:

``entries``
    The canonical event list, ``(timestamp, seq, sensor_id, event)``
    tuples sorted lazily — exactly :class:`~repro.matching.timeline.
    Timeline`'s representation, so masked subsequences of a shared
    timeline are *bit-identical* to the per-operator timelines the
    incremental engine would have built (the equivalence fence depends
    on this).

``timestamps`` / ``values``
    float64 numpy columns mirroring ``entries``, synced lazily
    (incremental tail append while in order, full rebuild after an
    out-of-order sort or a drop).  ``searchsorted`` on the timestamp
    column replaces per-slot bisects; interval masks over the value
    column replace per-slot filter evaluation.

``lanes``
    One :class:`Lane` per distinct interval, refcounted.  Storage
    admission is gated by the *hull* — the union of live lane
    intervals — so the group never stores events no sharer can see.

Sharing decisions reuse :meth:`repro.subsumption.setfilter.
ProbabilisticSetFilter.decide`: a newly admitted interval that is
*certainly* covered by the existing lanes needs no store re-scan
(every event it can accept is already in the group); only uncertain or
uncovered admissions pay a backfill.  Certainty is required — a
Monte-Carlo "covered" verdict is treated as not covered, so sharing can
only ever skip work it has proved redundant.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from ..model.events import SimpleEvent
from ..model.intervals import Interval
from .timeline import Entry

if TYPE_CHECKING:
    from ..subsumption.setfilter import ProbabilisticSetFilter

_INF = float("inf")


class Lane:
    """One value-interval lane over a shared timeline (a slot filter).

    Lanes are refcounted: every slot of every registered operator whose
    filter equals this interval holds one reference, and the lane (and
    with it the group's hull coverage of the interval) disappears when
    the last sharer cancels.
    """

    __slots__ = ("interval", "lo", "hi", "index", "refs")

    def __init__(self, interval: Interval, index: int) -> None:
        self.interval = interval
        self.lo = interval.lo
        self.hi = interval.hi
        self.index = index
        self.refs = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Lane([{self.lo!r}, {self.hi!r}] refs={self.refs})"


class SharedTimeline:
    """Refcounted columnar event store for one ``(attribute, sensors)`` group."""

    __slots__ = (
        "attribute",
        "sensors",
        "version",
        "max_delta_t",
        "min_timestamp",
        "lanes",
        "lane_los",
        "lane_his",
        "_entries",
        "_dirty",
        "_ts",
        "_vals",
        "_synced",
        "_lane_by_bounds",
        "_hull",
    )

    def __init__(self, attribute: str, sensors: frozenset[str]) -> None:
        self.attribute = attribute
        self.sensors = sensors
        #: Bumped on every observable mutation (adds, drops, lane
        #: admission/release); per-arrival evaluation plans key on it.
        self.version = 0
        #: Widest ``delta_t`` any registered operator needs; monotone,
        #: only used to size the shared candidate span (a superset span
        #: costs a few comparisons, never correctness).
        self.max_delta_t = 0.0
        self.min_timestamp = _INF
        self.lanes: list[Lane] = []
        self.lane_los: np.ndarray | None = None
        self.lane_his: np.ndarray | None = None
        self._entries: list[Entry] = []
        self._dirty = False
        self._ts = np.empty(64, dtype=np.float64)
        self._vals = np.empty(64, dtype=np.float64)
        self._synced = 0
        self._lane_by_bounds: dict[tuple[float, float], Lane] = {}
        # Merged closed-interval hull of the live lanes, flattened to
        # ``[lo0, hi0, lo1, hi1, ...]`` for bisect membership tests.
        self._hull: list[float] = []

    # ------------------------------------------------------------------
    # entry storage (mirrors Timeline exactly)
    # ------------------------------------------------------------------
    def add(self, event: SimpleEvent) -> None:
        """Append; order and columns are restored lazily at the next query."""
        entries = self._entries
        entry = (event.timestamp, event.seq, event.sensor_id, event)
        if entries and not self._dirty and entry < entries[-1]:
            self._dirty = True
        entries.append(entry)
        if event.timestamp < self.min_timestamp:
            self.min_timestamp = event.timestamp
        self.version += 1

    def entries(self) -> list[Entry]:
        """The sorted backing list (shared, do not mutate)."""
        if self._dirty:
            self._entries.sort()
            self._dirty = False
            self._synced = 0  # column order is stale after a resort
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def sync(self) -> tuple[np.ndarray, np.ndarray, int]:
        """``(timestamps, values, n)`` columns mirroring :meth:`entries`.

        Arrays are capacity-padded; only ``[:n]`` is meaningful.
        """
        ents = self.entries()
        n = len(ents)
        synced = self._synced
        if synced < n:
            if n > len(self._ts):
                cap = max(n, 2 * len(self._ts))
                ts = np.empty(cap, dtype=np.float64)
                vals = np.empty(cap, dtype=np.float64)
                ts[:synced] = self._ts[:synced]
                vals[:synced] = self._vals[:synced]
                self._ts = ts
                self._vals = vals
            ts = self._ts
            vals = self._vals
            for i in range(synced, n):
                entry = ents[i]
                ts[i] = entry[0]
                vals[i] = entry[3].value
            self._synced = n
        return self._ts, self._vals, n

    def index_of(self, event: SimpleEvent) -> int | None:
        """Index of ``event`` (by key), or None when absent."""
        entries = self.entries()
        probe = (event.timestamp, event.seq, event.sensor_id)
        i = bisect_left(entries, probe)
        if i < len(entries) and entries[i][:3] == probe:
            return i
        return None

    def drop_sensor(self, sensor_id: str, until: float = _INF) -> int:
        """Remove entries of ``sensor_id`` with ``timestamp <= until``.

        The churn fence on shared state: one call fences the sensor for
        *every* operator whose slots share this group.  Returns the
        number of dropped entries.
        """
        entries = self._entries
        kept = [
            entry
            for entry in entries
            if entry[2] != sensor_id or entry[0] > until
        ]
        dropped = len(entries) - len(kept)
        if dropped:
            entries[:] = kept
            self._synced = 0
            self.min_timestamp = (
                min(entry[0] for entry in entries) if entries else _INF
            )
            self.version += 1
        return dropped

    def drop_until(self, horizon: float) -> int:
        """Drop entries with ``timestamp <= horizon`` (expiry sweep)."""
        entries = self.entries()
        cut = bisect_right(entries, (horizon, _INF))
        if not cut:
            return 0
        del entries[:cut]
        self._synced = 0
        self.min_timestamp = entries[0][0] if entries else _INF
        self.version += 1
        return cut

    # ------------------------------------------------------------------
    # lanes & hull
    # ------------------------------------------------------------------
    def note_delta(self, delta_t: float) -> None:
        if delta_t > self.max_delta_t:
            self.max_delta_t = delta_t

    def acquire_lane(
        self,
        interval: Interval,
        setfilter: "ProbabilisticSetFilter",
        backfill: Callable[["SharedTimeline", Interval], None] | None = None,
    ) -> Lane:
        """Register one slot filter; share an existing lane when identical.

        A new interval *certainly* covered by the live lanes (via
        ``setfilter.decide`` on the 1-D boxes) skips the backfill: every
        event it accepts was already admitted through the hull.  Any
        uncertainty re-scans the store — sharing only elides work it
        can prove redundant.
        """
        bounds = (interval.lo, interval.hi)
        lane = self._lane_by_bounds.get(bounds)
        if lane is not None:
            lane.refs += 1
            return lane
        covered = interval.is_empty
        if not covered and self.lanes:
            decision = setfilter.decide(
                (interval,), [(lane.interval,) for lane in self.lanes]
            )
            covered = decision.covered and decision.certain
        lane = Lane(interval, len(self.lanes))
        lane.refs = 1
        self.lanes.append(lane)
        self._lane_by_bounds[bounds] = lane
        self._rebuild_lane_arrays()
        self.version += 1
        if not covered and backfill is not None:
            backfill(self, interval)
        return lane

    def release_lane(self, lane: Lane) -> None:
        """Drop one reference; remove the lane (and shrink the hull) at zero."""
        lane.refs -= 1
        if lane.refs > 0:
            return
        self.lanes.remove(lane)
        del self._lane_by_bounds[(lane.lo, lane.hi)]
        for index, kept in enumerate(self.lanes):
            kept.index = index
        self._rebuild_lane_arrays()
        self.version += 1

    @property
    def total_refs(self) -> int:
        return sum(lane.refs for lane in self.lanes)

    def _rebuild_lane_arrays(self) -> None:
        lanes = self.lanes
        if lanes:
            self.lane_los = np.array([lane.lo for lane in lanes])
            self.lane_his = np.array([lane.hi for lane in lanes])
        else:
            self.lane_los = None
            self.lane_his = None
        # Merge the live closed intervals into the flattened hull.
        live = sorted(
            (lane.lo, lane.hi) for lane in lanes if lane.lo <= lane.hi
        )
        hull: list[float] = []
        for lo, hi in live:
            if hull and lo <= hull[-1]:
                if hi > hull[-1]:
                    hull[-1] = hi
            else:
                hull.append(lo)
                hull.append(hi)
        self._hull = hull

    def hull_accepts(self, value: float) -> bool:
        """Whether any live lane's interval contains ``value``."""
        hull = self._hull
        i = bisect_left(hull, value)
        if i >= len(hull):
            return False
        return (i & 1) == 1 or hull[i] == value
