"""Columnar batched matching — lane-evaluated shared slot timelines.

Drop-in alternative to :class:`repro.matching.engine.MatchingEngine`
(``Network(matching="columnar")``): same EventStore listener protocol,
same matcher surface (``matches_involving`` / ``instance_exists`` /
``match_at_trigger`` / ``fence_sensor`` / retain-release lifecycle),
same answers — the three-way differential fence in the test suite pins
columnar == incremental == reference on every scenario family.

Organisation (see :mod:`repro.matching.batch` for the storage):

* Slots are grouped by ``(attribute, sensor set)``; each group is one
  refcounted :class:`~repro.matching.batch.SharedTimeline` and each
  distinct filter interval one lane.  The benchmark workload's 1000+
  operators collapse to ~10 groups of ~100 lanes.

* Per arriving event the engine builds one *arrival plan*: a single
  ``searchsorted`` span over the group's timestamp column and one
  broadcast mask matrix (lanes x span) over its value column.  Every
  operator registered on the sensor is then answered from vectorised
  per-lane aggregate bits (window non-empty, later triggers present)
  plus memoised masked window materialisations shared across all
  operators with the same (lane, delta_t).

* The in-order fast path mirrors the incremental matcher's; anything
  involving late triggers or finite ``delta_l`` materialises the masked
  per-slot entry lists and runs *the same* sweep code
  (:func:`repro.matching.engine.sweep_plain` /
  :func:`~repro.matching.engine.sweep_spatial`) the incremental engine
  runs — one algorithm, two storage layouts.

The plan is invalidated by an engine-wide version counter bumped on
every mutation (event adds, fences, horizon moves, lane churn), so
memoised state can never survive a state change.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from itertools import chain
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from ..model.events import SimpleEvent
from ..model.operators import CorrelationOperator
from ..subsumption.setfilter import ProbabilisticSetFilter
from .batch import Lane, SharedTimeline
from .engine import _sort_if_tied, sweep_plain, sweep_spatial
from .spatial import combination_exists, participating

if TYPE_CHECKING:
    from ..model.intervals import Interval
    from ..network.eventstore import EventStore

_INF = float("inf")

#: Cache-miss marker distinct from a legitimately-``None`` memo value.
_UNSET = object()


class _GroupPlan:
    """Per-arrival vectorised evaluation state for one group.

    Built once per (engine version, arriving event, group) and shared
    by every operator with a slot in the group: one candidate span over
    the widest registered ``delta_t``, one lanes x span mask matrix,
    then per-``delta_t`` aggregate bits and memoised window lists.
    """

    __slots__ = (
        "group",
        "t0",
        "horizon",
        "ts",
        "vals",
        "n",
        "entries",
        "_cache",
        "_pos",
    )

    def __init__(self, group: SharedTimeline, event: SimpleEvent, horizon: float) -> None:
        self.group = group
        self.t0 = event.timestamp
        self.horizon = horizon
        self.entries = group.entries()
        ts, vals, n = group.sync()
        self.ts = ts
        self.vals = vals
        self.n = n
        # One memo dict for everything keyed per (kind, delta_t[, lane]):
        # plans are built for every candidate group of every arrival, so
        # construction cost is the hot path — state is computed lazily.
        self._cache: dict = {}
        self._pos: int | None = -1  # -1 = not yet computed

    def span(self, delta_t: float) -> tuple[int, int, int]:
        """Row indices ``(a, b, c)`` for this operator width.

        ``[a, b)`` is the arrival's own window ``(t0 - delta_t, t0]``,
        ``[b, c)`` the candidate later triggers ``(t0, t0 + delta_t)`` —
        the same three bisects the incremental matcher runs per slot,
        shared here across every lane of the group.
        """
        found = self._cache.get(delta_t)
        if found is not None:
            return found
        t0 = self.t0
        after = t0 - delta_t
        if after < self.horizon:
            after = self.horizon
        head = self.ts[: self.n]
        ab = head.searchsorted((after, t0), side="right")
        a2 = int(ab[0])
        b2 = int(ab[1])
        c2 = int(head.searchsorted(t0 + delta_t, side="left"))
        span = (a2, b2, c2)
        self._cache[delta_t] = span
        return span

    def submask(self, delta_t: float) -> "np.ndarray | None":
        """Lanes x span acceptance matrix over ``(t0 - dt, t0 + dt)``.

        Built lazily per ``delta_t`` (uniform-width workloads pay one
        broadcast per group per arrival); ``None`` when the span is
        empty or the group has no lanes left.
        """
        key = ("m", delta_t)
        found = self._cache.get(key, _UNSET)
        if found is _UNSET:
            a2, _b2, c2 = self.span(delta_t)
            los = self.group.lane_los
            if c2 > a2 and los is not None:
                segment = self.vals[a2:c2]
                found = (segment >= los[:, None]) & (
                    segment <= self.group.lane_his[:, None]
                )
            else:
                found = None
            self._cache[key] = found
        return found

    def vec_bits(self, delta_t: float) -> tuple[np.ndarray, np.ndarray]:
        """Per-lane aggregate vectors ``(window non-empty, has later)``.

        One boolean vector pair per (group, delta_t) per arrival: the
        bulk evaluator scatters these into its flat binding columns, so
        the per-operator match decision costs no per-lane python at all.
        """
        key = ("v", delta_t)
        found = self._cache.get(key)
        if found is None:
            mask = self.submask(delta_t)
            if mask is None:
                zeros = np.zeros(len(self.group.lanes), dtype=bool)
                found = (zeros, zeros)
            else:
                a2, b2, _c2 = self.span(delta_t)
                rb = b2 - a2
                width = mask.shape[1]
                if rb <= 0:
                    # No own-window rows: everything in span is later.
                    found = (
                        np.zeros(mask.shape[0], dtype=bool),
                        mask.any(axis=1),
                    )
                elif rb >= width:
                    found = (
                        mask.any(axis=1),
                        np.zeros(mask.shape[0], dtype=bool),
                    )
                else:
                    # Both halves in one ufunc dispatch — the window
                    # and later aggregates are OR-reductions over
                    # adjacent column ranges of the same mask.
                    both = np.logical_or.reduceat(mask, (0, rb), axis=1)
                    found = (both[:, 0], both[:, 1])
            self._cache[key] = found
        return found

    def bits(self, delta_t: float) -> tuple[list[bool], list[bool], list[bool]]:
        """Per-lane aggregates: (span non-empty, window non-empty, has later)."""
        key = ("b", delta_t)
        found = self._cache.get(key)
        if found is not None:
            return found
        window_vec, later_vec = self.vec_bits(delta_t)
        bits = (
            (window_vec | later_vec).tolist(),
            window_vec.tolist(),
            later_vec.tolist(),
        )
        self._cache[key] = bits
        return bits

    def event_pos(self, event: SimpleEvent) -> int | None:
        """Absolute index of the arrival in the group entries (or None)."""
        pos = self._pos
        if pos == -1:
            pos = self.group.index_of(event)
            self._pos = pos
        return pos

    def in_own_window(self, lane: Lane, delta_t: float, pos: int) -> bool:
        """Is the (stored) arrival inside its own slot's seeded window?"""
        a2, b2, _c2 = self.span(delta_t)
        if not a2 <= pos < b2:
            return False
        mask = self.submask(delta_t)
        return mask is not None and bool(mask[lane.index, pos - a2])

    def later_triggers(self, lane: Lane, delta_t: float) -> list[float]:
        """Timestamps of accepted events strictly inside ``(t0, t0 + dt)``."""
        key = ("l", lane.index, delta_t)
        found = self._cache.get(key)
        if found is None:
            a2, b2, _c2 = self.span(delta_t)
            row = self.submask(delta_t)[lane.index]
            offsets = row[b2 - a2 :].nonzero()[0].tolist()
            ts = self.ts
            found = [float(ts[b2 + j]) for j in offsets]
            self._cache[key] = found
        return found

    def window_members(self, lane: Lane, delta_t: float) -> list[SimpleEvent]:
        """The arrival window's accepted events, in reference order.

        Memoised per (lane, delta_t) and *shared* between every
        operator slot backed by the lane — the hot-path forwarding hook
        dedups on the list's identity.
        """
        key = ("w", lane.index, delta_t)
        found = self._cache.get(key)
        if found is None:
            a2, b2, _c2 = self.span(delta_t)
            row = self.submask(delta_t)[lane.index]
            offsets = row[: b2 - a2].nonzero()[0].tolist()
            entries = self.entries
            found = [entries[a2 + j][3] for j in offsets]
            _sort_if_tied(found)
            self._cache[key] = found
        return found

    def union_members(
        self, lane_dts: list[tuple[Lane, float]]
    ) -> list[SimpleEvent]:
        """Distinct events across the given lanes' arrival windows.

        The forwarding hot path: one OR over the participating lanes'
        mask rows (grouped by ``delta_t``, so uniform-width workloads
        pay a single reduction) and one materialisation per group —
        instead of one list per operator slot.  Order is irrelevant:
        the per-link forwarding loop re-sorts its outgoing set by key.
        """
        if len(lane_dts) == 1:
            lane, delta_t = lane_dts[0]
            return self.window_members(lane, delta_t)
        by_dt: dict[float, list[int]] = {}
        for lane, delta_t in lane_dts:
            by_dt.setdefault(delta_t, []).append(lane.index)
        out: list[SimpleEvent] = []
        entries = self.entries
        for delta_t, indices in by_dt.items():
            mask = self.submask(delta_t)
            if mask is None:
                continue
            a2, b2, _c2 = self.span(delta_t)
            rb = b2 - a2
            if rb <= 0:
                continue
            if len(indices) == 1:
                union = mask[indices[0], :rb]
            else:
                union = mask[indices, :rb].any(axis=0)
            for j in union.nonzero()[0].tolist():
                out.append(entries[a2 + j][3])
        return out

    def filtered_entries(self, lane: Lane, delta_t: float) -> list:
        """Masked entry tuples over ``(t0 - dt, t0 + dt)`` for the sweeps.

        This *is* the slice of the per-slot timeline the incremental
        matcher's sweep pointers ever touch, so handing it to the shared
        sweep functions reproduces its trajectory index-for-index.
        """
        key = ("f", lane.index, delta_t)
        found = self._cache.get(key)
        if found is None:
            a2, _b2, _c2 = self.span(delta_t)
            row = self.submask(delta_t)[lane.index]
            offsets = row.nonzero()[0].tolist()
            entries = self.entries
            found = [entries[a2 + j] for j in offsets]
            self._cache[key] = found
        return found


class _ArrivalPlan:
    """All group plans for one (engine version, arriving event)."""

    __slots__ = ("event", "version", "horizon", "groups", "verdicts")

    def __init__(self, event: SimpleEvent, version: int, horizon: float) -> None:
        self.event = event
        self.version = version
        self.horizon = horizon
        self.groups: dict[int, _GroupPlan] = {}
        #: Lazily built bulk match verdicts (see ``_Verdicts``).
        self.verdicts: "_Verdicts | None" = None

    def group_plan(self, group: SharedTimeline) -> _GroupPlan:
        key = id(group)
        found = self.groups.get(key)
        if found is None:
            found = _GroupPlan(group, self.event, self.horizon)
            self.groups[key] = found
        return found


class _SensorIndex:
    """Static bulk-evaluation layout for one ``(sensor, attribute)``.

    Flattens every registered operator a ``(sensor, attribute)`` arrival
    could concern into numpy index arrays, so one reduceat pass decides
    *all* of them at once:

    * each distinct ``(group, delta_t)`` pair becomes a *segment* of
      binding columns (one column per lane of the group);
    * ``win_cols``/``op_offsets`` gather each operator's slot columns
      (CSR layout) for the completeness AND / later-trigger OR;
    * ``cand_los``/``cand_his``/``cand_offsets`` hold the candidate own
      slots (slots drawing from the sensor with the right attribute) so
      own-acceptance is one vectorised interval test.

    Rebuilt lazily whenever the engine's registration state (matchers,
    lanes, groups) changes; event traffic never invalidates it.
    """

    __slots__ = (
        "rows",
        "matchers_by_row",
        "segments",
        "row_segments",
        "n_cols",
        "win_cols",
        "op_offsets",
        "finite",
        "cand_los",
        "cand_his",
        "cand_offsets",
        "member_triples",
        "row_template",
    )

    def __init__(
        self,
        matchers: Iterable["ColumnarMatcher"],
        sensor_id: str,
        attribute: str,
    ) -> None:
        self.rows: dict[ColumnarMatcher, int] = {}
        #: Row-indexed inverse of ``rows`` (bulk iteration order).
        self.matchers_by_row: list[ColumnarMatcher] = []
        #: ``(group, delta_t, column offset, n_lanes)`` per segment.
        self.segments: list[tuple[SharedTimeline, float, int, int]] = []
        #: Segment ids each row's slots draw on — lets the verdict pass
        #: skip window evaluation for segments no accepting row needs.
        self.row_segments: list[list[int]] = []
        segment_offsets: dict[tuple[int, float], tuple[int, int]] = {}
        n_cols = 0
        win_cols: list[int] = []
        op_offsets: list[int] = []
        finite: list[bool] = []
        cand_los: list[float] = []
        cand_his: list[float] = []
        cand_offsets: list[int] = []
        #: Per row, ``(column, group, lane, delta_t)`` per slot in slot
        #: order — the fast-path member resolution recipe.
        self.member_triples: list[list[tuple]] = []
        #: Rows with identical column signatures (near-duplicate
        #: operators) share a template id, so member materialisation is
        #: paid once per template, not once per operator.
        self.row_template: list[int] = []
        template_ids: dict[tuple[int, ...], int] = {}
        for matcher in matchers:
            operator = matcher.operator
            candidates = [
                slot
                for slot in operator.slots
                if sensor_id in slot.sensors and slot.attribute == attribute
            ]
            if not candidates:
                continue
            delta_t = operator.delta_t
            self.rows[matcher] = len(op_offsets)
            self.matchers_by_row.append(matcher)
            op_offsets.append(len(win_cols))
            finite.append(matcher._finite)
            cand_offsets.append(len(cand_los))
            for slot in candidates:
                cand_los.append(slot.interval.lo)
                cand_his.append(slot.interval.hi)
            triples: list[tuple] = []
            seg_ids: list[int] = []
            for group, lane in matcher._slot_lanes:
                seg_key = (id(group), delta_t)
                found = segment_offsets.get(seg_key)
                if found is None:
                    seg_id = len(self.segments)
                    found = (n_cols, seg_id)
                    segment_offsets[seg_key] = found
                    n_lanes = len(group.lanes)
                    self.segments.append((group, delta_t, n_cols, n_lanes))
                    n_cols += n_lanes
                offset, seg_id = found
                column = offset + lane.index
                win_cols.append(column)
                if seg_id not in seg_ids:
                    seg_ids.append(seg_id)
                triples.append((column, group, lane, delta_t))
            self.member_triples.append(triples)
            self.row_segments.append(seg_ids)
            signature = tuple(t[0] for t in triples)
            self.row_template.append(
                template_ids.setdefault(signature, len(template_ids))
            )
        self.n_cols = n_cols
        self.win_cols = np.array(win_cols, dtype=np.intp)
        self.op_offsets = np.array(op_offsets, dtype=np.intp)
        self.finite = np.array(finite, dtype=bool)
        self.cand_los = np.array(cand_los, dtype=np.float64)
        self.cand_his = np.array(cand_his, dtype=np.float64)
        self.cand_offsets = np.array(cand_offsets, dtype=np.intp)


class _Verdicts:
    """Bulk per-operator match verdicts for one arrival.

    ``fast[row]`` — the in-order fast path matches: the result is the
    memoised window list per slot (``index.member_triples[row]``).
    ``slow[row]`` — a match is possible but needs the per-operator
    sweep (late triggers or a finite ``delta_l``).  Neither — no match.
    ``fast is None`` marks the degenerate no-op case (expired arrival
    or nothing registered); callers fall back to the per-matcher path,
    which answers correctly (and just as cheaply) for those.
    """

    __slots__ = ("plan", "index", "fast", "slow", "matched_rows", "tid_lists")

    def __init__(
        self,
        plan: _ArrivalPlan,
        index: _SensorIndex,
        fast: list[bool] | None,
        slow: list[bool] | None,
        matched_rows: list[int] | None = None,
    ) -> None:
        self.plan = plan
        self.index = index
        self.fast = fast
        self.slow = slow
        #: Rows with ``fast or slow`` — the bulk iteration work list
        #: (``None`` mirrors ``fast is None``: fall back per matcher).
        self.matched_rows = matched_rows
        #: Window-list bundles memoised per template id — rows of
        #: near-duplicate operators share one materialisation.
        self.tid_lists: dict[int, list[list[SimpleEvent]]] = {}


class ColumnarMatcher:
    """Per-operator view over the shared group timelines.

    Same query surface and the same answers as
    :class:`~repro.matching.engine.OperatorMatcher`; each slot is a
    (group, lane) pair instead of a private timeline.
    """

    __slots__ = (
        "operator",
        "_engine",
        "_slot_ids",
        "_slot_lanes",
        "_groups",
        "_by_sensor",
        "_finite",
    )

    def __init__(self, operator: CorrelationOperator, engine: "ColumnarEngine") -> None:
        self.operator = operator
        self._engine = engine
        self._slot_ids = [slot.slot_id for slot in operator.slots]
        self._slot_lanes: list[tuple[SharedTimeline, Lane]] = []
        self._by_sensor: dict[str, list[tuple]] = {}
        groups: list[SharedTimeline] = []
        for index, slot in enumerate(operator.slots):
            group = engine._group_for(slot)
            group.note_delta(operator.delta_t)
            lane = group.acquire_lane(
                slot.interval, engine._setfilter, engine._backfill
            )
            self._slot_lanes.append((group, lane))
            if group not in groups:
                groups.append(group)
            entry = (slot.attribute, slot.interval.contains, index)
            for sensor_id in sorted(slot.sensors):
                self._by_sensor.setdefault(sensor_id, []).append(entry)
        self._groups = groups
        self._finite = not math.isinf(operator.delta_l)

    # ------------------------------------------------------------------
    # ingest path (the offline oracle and late backfills; live events
    # route through the engine's group-by-sensor index)
    # ------------------------------------------------------------------
    def ingest(self, event: SimpleEvent) -> None:
        """Index one stored event into every accepting group."""
        for group in self._groups:
            if (
                event.attribute == group.attribute
                and event.sensor_id in group.sensors
                and group.hull_accepts(event.value)
            ):
                group.add(event)
        self._engine._version += 1

    def backfill(self, store: "EventStore") -> None:
        """Index the store's current visible content (late registration)."""
        for sensor_id in sorted(self.operator.sensors):
            for event in store.sensor_events(sensor_id):
                self.ingest(event)

    def fence_sensor(self, sensor_id: str, until: float = _INF) -> int:
        """Drop indexed events of ``sensor_id`` with ``timestamp <= until``.

        On a shared group this fences the sensor for *every* sharer at
        once — exactly what the store-driven churn fence requires, since
        a departed sensor's history is invisible to all of them.
        """
        dropped = 0
        for group in self._groups:
            if sensor_id in group.sensors:
                dropped += group.drop_sensor(sensor_id, until)
        if dropped:
            self._engine._version += 1
        return dropped

    def _prune(self) -> None:
        horizon = self._engine.horizon
        pruned = 0
        for group in self._groups:
            if group.min_timestamp <= horizon:
                pruned += group.drop_until(horizon)
        if pruned:
            self._engine._version += 1

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def _own_slot_index(self, event: SimpleEvent) -> int | None:
        """Index of the first slot accepting ``event`` (reference order)."""
        for attribute, contains, index in self._by_sensor.get(
            event.sensor_id, ()
        ):
            if event.attribute == attribute and contains(event.value):
                return index
        return None

    def matches_involving(self, event: SimpleEvent) -> dict[str, list[SimpleEvent]]:
        """Participants of every match ``event`` takes part in.

        Same contract as :meth:`OperatorMatcher.matches_involving`; the
        returned lists are fresh copies (the memoised window lists are
        shared across operators and must not be mutated by callers).
        """
        result = self._compute_lists(event)
        if result is None:
            return {}
        if isinstance(result, dict):
            return result
        return {
            slot_id: list(members)
            for slot_id, members in zip(self._slot_ids, result)
        }

    def participant_lists(
        self, event: SimpleEvent
    ) -> list[list[SimpleEvent]] | dict[str, list[SimpleEvent]] | None:
        """Hot-path access without dict building; see ``_compute_lists``."""
        return self._compute_lists(event)

    def _compute_lists(
        self, event: SimpleEvent
    ) -> list[list[SimpleEvent]] | dict[str, list[SimpleEvent]] | None:
        """``None`` (no match), a per-slot list of *shared* memoised
        window lists (in-order fast path), or the sweep's result dict.
        """
        own = self._own_slot_index(event)
        if own is None:
            return None
        engine = self._engine
        t0 = event.timestamp
        horizon = engine.horizon
        if t0 <= horizon:
            return None
        delta_t = self.operator.delta_t
        plan = engine._plan_for(event)
        slot_plans: list[tuple[_GroupPlan, int]] = []
        has_later = False
        for group, lane in self._slot_lanes:
            gplan = plan.group_plan(group)
            span_any, _window_any, later_any = gplan.bits(delta_t)
            index = lane.index
            if not span_any[index]:
                return None  # nothing in (t0 - dt, t0 + dt): incomplete
            if later_any[index]:
                has_later = True
            slot_plans.append((gplan, index))
        own_plan, _own_lane = slot_plans[own]
        pos = own_plan.event_pos(event)
        if pos is None:
            # Not stored (duplicate-dropped or expired): the reference
            # scan would find it in no window either.
            return None
        if not has_later:
            # In-order delivery fast path — the arrival is the only
            # candidate trigger and its window bits are already known.
            if not own_plan.in_own_window(self._slot_lanes[own][1], delta_t, pos):
                return None
            for gplan, index in slot_plans:
                if not gplan.bits(delta_t)[1][index]:
                    return None
            if not self._finite:
                return [
                    gplan.window_members(lane, delta_t)
                    for (gplan, _i), (_g, lane) in zip(
                        slot_plans, self._slot_lanes
                    )
                ]
            ordered = [t0]
        else:
            later: set[float] = set()
            for (gplan, _index), (_group, lane) in zip(
                slot_plans, self._slot_lanes
            ):
                later.update(gplan.later_triggers(lane, delta_t))
            later.add(t0)
            ordered = sorted(later)
        # Sweep path: materialise the masked per-slot entry lists and run
        # the exact incremental sweep over them.
        entries: list[list] = []
        lo: list[int] = []
        hi: list[int] = []
        event_pos = -1
        for index, ((gplan, _lane_index), (_group, lane)) in enumerate(
            zip(slot_plans, self._slot_lanes)
        ):
            filtered = gplan.filtered_entries(lane, delta_t)
            entries.append(filtered)
            lo.append(0)
            hi.append(bisect_right(filtered, (t0, _INF)))
            if index == own:
                probe = (event.timestamp, event.seq, event.sensor_id)
                at = bisect_left(filtered, probe)
                if at >= len(filtered) or filtered[at][:3] != probe:
                    return None
                event_pos = at
        if self._finite:
            return sweep_spatial(
                self._slot_ids,
                self.operator,
                event,
                ordered,
                entries,
                lo,
                hi,
                own,
                event_pos,
            )
        return sweep_plain(
            self._slot_ids,
            self.operator.delta_t,
            ordered,
            entries,
            lo,
            hi,
            own,
            event_pos,
        )

    # ------------------------------------------------------------------
    # oracle probes (same contracts as OperatorMatcher)
    # ------------------------------------------------------------------
    def _window_events(
        self, slot_index: int, after: float, until: float
    ) -> list[SimpleEvent]:
        group, lane = self._slot_lanes[slot_index]
        ts, vals, n = group.sync()
        entries = group.entries()
        a = int(np.searchsorted(ts[:n], after, side="right"))
        b = int(np.searchsorted(ts[:n], until, side="right"))
        if b <= a:
            return []
        segment = vals[a:b]
        accepted = np.nonzero((segment >= lane.lo) & (segment <= lane.hi))[0]
        return [entries[a + int(j)][3] for j in accepted]

    def instance_exists(self, trigger: SimpleEvent) -> bool:
        """Does a match with maximum member ``trigger`` exist?"""
        operator = self.operator
        own_slot = operator.slot_for_event(trigger)
        if own_slot is None:
            return False
        self._prune()
        after = trigger.timestamp - operator.delta_t
        if after < self._engine.horizon:
            after = self._engine.horizon
        windows = [
            self._window_events(i, after, trigger.timestamp)
            for i in range(len(self._slot_lanes))
        ]
        if not all(windows):
            return False
        if not self._finite:
            return True
        delta_l = operator.delta_l
        own = self._slot_ids.index(own_slot.slot_id)
        location = trigger.location
        lists: list[list[SimpleEvent]] = []
        for i, window in enumerate(windows):
            if i == own:
                lists.append([trigger])
                continue
            near = [
                e for e in window if e.location.distance_to(location) < delta_l
            ]
            if not near:
                return False
            lists.append(near)
        return combination_exists(lists, delta_l)

    def match_at_trigger(
        self, trigger_time: float
    ) -> dict[str, list[SimpleEvent]] | None:
        """Participants of matches whose maximum timestamp is ``trigger_time``."""
        self._prune()
        after = trigger_time - self.operator.delta_t
        if after < self._engine.horizon:
            after = self._engine.horizon
        windows = [
            self._window_events(i, after, trigger_time)
            for i in range(len(self._slot_lanes))
        ]
        if not all(windows):
            return None
        if self._finite:
            kept = participating(windows, self.operator.delta_l)
            if kept is None:
                return None
        else:
            kept = windows
        out: dict[str, list[SimpleEvent]] = {}
        for slot_id, participants in zip(self._slot_ids, kept):
            _sort_if_tied(participants)
            out[slot_id] = participants
        return out


class ColumnarEngine:
    """Shared-timeline matching engine (``matching="columnar"``).

    Same listener protocol and lifecycle surface as
    :class:`~repro.matching.engine.MatchingEngine`.
    """

    _PRUNE_SWEEP_EVERY = 256
    """Store adds between full group-prune sweeps (each check is O(1)
    per group thanks to the min-timestamp guard)."""

    def __init__(self, store: "EventStore | None") -> None:
        self._store = store
        self.horizon = store.horizon if store is not None else -_INF
        self._groups: dict[tuple[str, frozenset[str]], SharedTimeline] = {}
        self._groups_by_sensor: dict[str, list[SharedTimeline]] = {}
        self._matchers: dict[CorrelationOperator, ColumnarMatcher] = {}
        self._refs: dict[CorrelationOperator, int] = {}
        # Deterministic per-engine sampler for coverage decisions; only
        # *certain* verdicts influence backfill elision, so the stream's
        # role is purely to bound re-scan work.
        self._setfilter = ProbabilisticSetFilter()
        self._version = 0
        self._plan: _ArrivalPlan | None = None
        # Bulk layouts per (sensor, attribute); cleared whenever the
        # registration state (matchers, lanes, groups) changes.
        self._sensor_index: dict[tuple[str, str], _SensorIndex] = {}
        self._adds_since_sweep = 0
        if store is not None:
            store.add_listener(self)

    @classmethod
    def offline(cls) -> "ColumnarEngine":
        """Store-less engine for the offline oracle truth pass."""
        return cls(None)

    # ------------------------------------------------------------------
    # EventStore listener protocol
    # ------------------------------------------------------------------
    def event_added(self, event: SimpleEvent) -> None:
        groups = self._groups_by_sensor.get(event.sensor_id)
        if groups:
            attribute = event.attribute
            value = event.value
            for group in groups:
                if group.attribute == attribute and group.hull_accepts(value):
                    group.add(event)
        self._version += 1
        self._adds_since_sweep += 1
        if self._adds_since_sweep >= self._PRUNE_SWEEP_EVERY:
            self._adds_since_sweep = 0
            horizon = self.horizon
            for group in self._groups.values():
                if group.min_timestamp <= horizon:
                    group.drop_until(horizon)

    def horizon_advanced(self, horizon: float) -> None:
        self.horizon = horizon
        self._version += 1

    def sensor_fenced(self, sensor_id: str) -> None:
        """Mirror a store fence: drop the sensor from every group."""
        for group in self._groups_by_sensor.get(sensor_id, ()):
            group.drop_sensor(sensor_id)
        self._version += 1

    # ------------------------------------------------------------------
    # groups & backfill
    # ------------------------------------------------------------------
    def _group_for(self, slot) -> SharedTimeline:
        key = (slot.attribute, slot.sensors)
        group = self._groups.get(key)
        if group is None:
            group = SharedTimeline(slot.attribute, slot.sensors)
            self._groups[key] = group
            for sensor_id in sorted(slot.sensors):
                self._groups_by_sensor.setdefault(sensor_id, []).append(group)
            self._version += 1
        return group

    def _backfill(self, group: SharedTimeline, interval: "Interval") -> None:
        """Admit the store's visible events a widened hull now accepts."""
        store = self._store
        if store is None:
            return
        present = {entry[:3] for entry in group.entries()}
        contains = interval.contains
        attribute = group.attribute
        for sensor_id in sorted(group.sensors):
            for event in store.sensor_events(sensor_id):
                if (
                    event.attribute == attribute
                    and contains(event.value)
                    and (event.timestamp, event.seq, event.sensor_id)
                    not in present
                ):
                    group.add(event)
        self._version += 1

    def _plan_for(self, event: SimpleEvent) -> _ArrivalPlan:
        plan = self._plan
        if (
            plan is None
            or plan.event is not event
            or plan.version != self._version
        ):
            plan = _ArrivalPlan(event, self._version, self.horizon)
            self._plan = plan
        return plan

    # ------------------------------------------------------------------
    # bulk arrival evaluation
    # ------------------------------------------------------------------
    def _sensor_index_for(self, sensor_id: str, attribute: str) -> _SensorIndex:
        key = (sensor_id, attribute)
        index = self._sensor_index.get(key)
        if index is None:
            index = _SensorIndex(
                self._matchers.values(), sensor_id, attribute
            )
            self._sensor_index[key] = index
        return index

    def _verdicts_for(self, event: SimpleEvent) -> _Verdicts:
        """Match verdicts for every registered operator the arrival
        could concern, decided in one vectorised pass.

        The decision procedure is exactly the per-matcher fast path
        (``ColumnarMatcher._compute_lists``), evaluated for all
        operators at once: an operator matches in order iff one of its
        slots on the arriving sensor accepts the value, every slot's
        arrival window is non-empty, and no slot sees a later candidate
        trigger; later triggers or a finite ``delta_l`` defer to the
        per-operator sweep.  The equivalence fence pins the two paths
        to identical answers.
        """
        plan = self._plan_for(event)
        verdicts = plan.verdicts
        if verdicts is not None:
            return verdicts
        index = self._sensor_index_for(event.sensor_id, event.attribute)
        if not index.rows or event.timestamp <= self.horizon:
            verdicts = _Verdicts(plan, index, None, None)
            plan.verdicts = verdicts
            return verdicts
        value = event.value
        accepts = np.bitwise_or.reduceat(
            (value >= index.cand_los) & (value <= index.cand_his),
            index.cand_offsets,
        )
        accept_rows = accepts.nonzero()[0]
        if not accept_rows.size:
            # Nothing registered on the sensor accepts the value: every
            # verdict is a cheap no — no window evaluation at all.
            falses = accepts.tolist()
            verdicts = _Verdicts(plan, index, falses, falses, [])
            plan.verdicts = verdicts
            return verdicts
        segments = index.segments
        if len(accept_rows) * 4 < len(index.rows):
            # Selective arrival: only evaluate the window bits of the
            # segments an accepting operator actually draws on.  The
            # flat columns of the remaining segments stay garbage —
            # every term below is gated by ``accepts``, so rows that
            # read them are already decided to be False.
            needed: set[int] = set()
            row_segments = index.row_segments
            for row in accept_rows.tolist():
                needed.update(row_segments[row])
            segments = [segments[i] for i in sorted(needed)]
        window_flat = np.empty(index.n_cols, dtype=bool)
        later_flat = np.empty(index.n_cols, dtype=bool)
        for group, delta_t, offset, n_lanes in segments:
            window_vec, later_vec = plan.group_plan(group).vec_bits(delta_t)
            window_flat[offset : offset + n_lanes] = window_vec
            later_flat[offset : offset + n_lanes] = later_vec
        window_sel = window_flat[index.win_cols]
        later_sel = later_flat[index.win_cols]
        offsets = index.op_offsets
        win_ok = np.bitwise_and.reduceat(window_sel, offsets)
        later_op = np.bitwise_or.reduceat(later_sel, offsets)
        span_ok = np.bitwise_and.reduceat(window_sel | later_sel, offsets)
        finite = index.finite
        fast = accepts & win_ok & ~later_op & ~finite
        slow = accepts & span_ok & (later_op | (finite & win_ok))
        matched = (fast | slow).nonzero()[0].tolist()
        verdicts = _Verdicts(
            plan, index, fast.tolist(), slow.tolist(), matched
        )
        plan.verdicts = verdicts
        return verdicts

    # ------------------------------------------------------------------
    # matcher lifecycle (mirrors MatchingEngine)
    # ------------------------------------------------------------------
    def matcher(self, operator: CorrelationOperator) -> ColumnarMatcher:
        """Get or create (and share/backfill) the matcher for ``operator``."""
        found = self._matchers.get(operator)
        if found is None:
            found = ColumnarMatcher(operator, self)
            self._matchers[operator] = found
            self._version += 1
            self._sensor_index.clear()
        return found

    def register(
        self, operators: Iterable[CorrelationOperator] | CorrelationOperator
    ) -> None:
        """Eagerly create matchers (the ``SubscriptionStore.add`` hook)."""
        if isinstance(operators, CorrelationOperator):
            self.matcher(operators)
        else:
            for operator in operators:
                self.matcher(operator)

    def retain(self, operator: CorrelationOperator) -> ColumnarMatcher:
        """Get the operator's matcher and count a long-lived reference."""
        matcher = self.matcher(operator)
        self._refs[operator] = self._refs.get(operator, 0) + 1
        return matcher

    def release(self, operator: CorrelationOperator) -> None:
        """Drop one reference; tear the matcher down at zero.

        Teardown releases every lane the matcher held; lanes (and with
        them hull coverage and groups) disappear with their last sharer,
        so the engine ends observationally as if the operator had never
        been registered — shared storage may retain events no remaining
        lane accepts, but every mask hides them.
        """
        remaining = self._refs.get(operator, 0) - 1
        if remaining > 0:
            self._refs[operator] = remaining
            return
        self._refs.pop(operator, None)
        matcher = self._matchers.pop(operator, None)
        if matcher is None:
            return
        for group, lane in matcher._slot_lanes:
            group.release_lane(lane)
        for group in matcher._groups:
            if not group.lanes:
                del self._groups[(group.attribute, group.sensors)]
                for sensor_id in sorted(group.sensors):
                    listed = self._groups_by_sensor.get(sensor_id)
                    if listed is not None:
                        listed.remove(group)
                        if not listed:
                            del self._groups_by_sensor[sensor_id]
        self._version += 1
        self._sensor_index.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def matches_involving(
        self, operator: CorrelationOperator, event: SimpleEvent
    ) -> dict[str, list[SimpleEvent]]:
        """Drop-in replacement for the reference ``matches_involving``."""
        return self.matcher(operator).matches_involving(event)

    def instance_exists(
        self, operator: CorrelationOperator, trigger: SimpleEvent
    ) -> bool:
        """Drop-in replacement for the reference ``instance_exists``."""
        return self.matcher(operator).instance_exists(trigger)

    def forward_members(
        self, pairs: Iterable[tuple], event: SimpleEvent
    ) -> Iterator[SimpleEvent]:
        """Participants across matching operators, for the forward path.

        The forwarding loop only needs the *union* of the matching
        operators' participants per link (its outgoing set dedups by
        key and re-sorts), so the participating lanes are collected by
        column id and materialised once per group via an OR-mask —
        per-operator member lists are never built.  The returned chain
        may contain duplicates (an event can be stored in several
        sensor-set groups); the caller's key dedup absorbs them.
        """
        verdicts = self._verdicts_for(event)
        fast = verdicts.fast
        rows = verdicts.index.rows
        triples = verdicts.index.member_triples
        group_plans = verdicts.plan.groups
        parts: list[list[SimpleEvent]] = []
        per_group: dict[int, list[tuple[Lane, float]]] = {}
        seen: set[int] = set()
        for _operator, matcher in pairs:
            row = rows.get(matcher, -1) if fast is not None else -1
            if row >= 0:
                if fast[row]:
                    for column, group, lane, delta_t in triples[row]:
                        if column not in seen:
                            seen.add(column)
                            per_group.setdefault(id(group), []).append(
                                (lane, delta_t)
                            )
                    continue
                if not verdicts.slow[row]:
                    continue
            result = matcher._compute_lists(event)
            if not result:
                continue
            if isinstance(result, dict):
                parts.extend(result.values())
            else:
                parts.extend(result)
        for group_id, lane_dts in per_group.items():
            parts.append(group_plans[group_id].union_members(lane_dts))
        return chain.from_iterable(parts)

    def delivered_members(
        self, matcher: ColumnarMatcher, event: SimpleEvent
    ) -> "Iterable[SimpleEvent] | None":
        """Participants for local delivery, or None on no match.

        Single-use iterable: the fast path chains the *shared* memoised
        window lists without copying them — the delivery log consumes
        the chain once and dedups members by key.
        """
        verdicts = self._verdicts_for(event)
        fast = verdicts.fast
        if fast is not None:
            row = verdicts.index.rows.get(matcher, -1)
            if row >= 0:
                if fast[row]:
                    lists = self._fast_lists(verdicts, row)
                    if len(lists) == 1:
                        return lists[0]
                    return chain.from_iterable(lists)
                if not verdicts.slow[row]:
                    return None
        result = matcher._compute_lists(event)
        # An empty sweep dict means no match — a real match always
        # contains the arrival itself, so flat-empty cannot be a match.
        if not result:
            return None
        if isinstance(result, dict):
            return chain.from_iterable(result.values())
        return chain.from_iterable(result)

    def _fast_lists(
        self, verdicts: _Verdicts, row: int
    ) -> list[list[SimpleEvent]]:
        """The row's per-slot shared window lists, memoised per template."""
        index = verdicts.index
        tid = index.row_template[row]
        lists = verdicts.tid_lists.get(tid)
        if lists is None:
            group_plans = verdicts.plan.groups
            lists = [
                group_plans[id(group)].window_members(lane, delta_t)
                for _column, group, lane, delta_t in index.member_triples[row]
            ]
            verdicts.tid_lists[tid] = lists
        return lists

    def iter_matched(
        self, event: SimpleEvent
    ) -> Iterator[tuple[ColumnarMatcher, "Iterable[SimpleEvent]"]]:
        """Yield ``(matcher, participants)`` for every matching operator.

        The bulk query the columnar layout exists for: one vectorised
        verdict pass decides all registered operators, then only the
        matching rows are visited — per-operator python is never spent
        on non-matching operators.  Participant iterables are single-use
        chains over the shared memoised window lists.
        """
        verdicts = self._verdicts_for(event)
        matched_rows = verdicts.matched_rows
        index = verdicts.index
        if matched_rows is None:
            # Degenerate arrival (expired or nothing registered): the
            # per-matcher fallback answers correctly and cheaply.
            for matcher in index.rows:
                members = self.delivered_members(matcher, event)
                if members is not None:
                    yield matcher, members
            return
        fast = verdicts.fast
        matchers = index.matchers_by_row
        for row in matched_rows:
            matcher = matchers[row]
            if fast[row]:
                lists = self._fast_lists(verdicts, row)
                yield matcher, (
                    lists[0] if len(lists) == 1 else chain.from_iterable(lists)
                )
                continue
            result = matcher._compute_lists(event)
            if not result:
                continue
            if isinstance(result, dict):
                yield matcher, chain.from_iterable(result.values())
            else:
                yield matcher, chain.from_iterable(result)

    @property
    def n_matchers(self) -> int:
        return len(self._matchers)
