"""The incremental correlation-matching engine.

The reference matcher (:mod:`repro.model.matching`) answers "which
stored events does this arrival correlate with?" by rescanning the
event store: once per candidate trigger it re-reads every slot's
sensors and re-evaluates every filter — O(operators × triggers × slots
× window) per arriving event, with nothing remembered between calls.
That recompute-on-arrival cost dominates wall-clock long before network
traffic does (the paper's metric), so this module restructures node
matching around *per-operator incremental state*:

* an :class:`OperatorMatcher` is registered when an operator is stored
  (``SubscriptionStore.add``) and fed every ingested event exactly
  once — filter acceptance is evaluated once per (event, slot) instead
  of once per trigger scan, and accepted events land in per-slot sorted
  :class:`~repro.matching.timeline.Timeline`\\ s;
* a query sweeps all candidate triggers with shared two-pointer
  windows: trigger times are sorted, so each slot's half-open window
  ``(t* − Δt, t*]`` advances monotonically and the whole sweep touches
  each timeline entry O(1) times;
* for finite ``delta_l`` the spatial combination search is pruned with
  a coarse uniform grid (:mod:`repro.matching.spatial`) before the
  exact backtracking runs — the decision stays exact;
* live ingest routes through a per-sensor *interval-stabbing* segment
  index (:class:`_StabbingIndex`): one bisect per arriving value finds
  exactly the accepting slots across every registered matcher, instead
  of evaluating each matcher's filters one by one.

The engine mirrors the :class:`~repro.network.eventstore.EventStore`
through its listener protocol (``event_added`` / ``horizon_advanced``),
so a matcher's timelines always hold exactly the store-visible events
its slots accept — which is what makes the engine provably equivalent
to the reference matcher run against the same store (the property suite
machine-checks this; the reference stays in-tree as the oracle).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Iterable

from ..model.events import SimpleEvent
from ..model.operators import CorrelationOperator
from .spatial import combination_exists, participating
from .timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..network.eventstore import EventStore



_INF = float("inf")


def _result_order(event: SimpleEvent) -> tuple[float, tuple[str, int]]:
    """The reference matcher's deterministic participant order."""
    return (event.timestamp, event.key)


def _sort_if_tied(participants: list[SimpleEvent]) -> None:
    """Restore the reference's (timestamp, key) order.

    Span-merged participants already arrive timestamp-sorted; only
    equal-timestamp ties can deviate (timeline order breaks them by
    ``(seq, sensor)``, the reference by ``(sensor, seq)``), so the
    O(n·log n) keyed sort runs only when a tie actually exists.
    """
    previous = None
    for event in participants:
        if event.timestamp == previous:
            participants.sort(key=_result_order)
            return
        previous = event.timestamp


class OperatorMatcher:
    """Incremental per-operator matching state (Algorithm 5, stateful)."""

    __slots__ = (
        "operator",
        "_engine",
        "_slots",
        "_slot_ids",
        "_timelines",
        "_by_sensor",
        "_finite",
        "_min_ts",
    )

    def __init__(self, operator: CorrelationOperator, engine: "MatchingEngine") -> None:
        self.operator = operator
        self._engine = engine
        self._slots = operator.slots
        self._slot_ids = [slot.slot_id for slot in operator.slots]
        self._timelines = [Timeline() for _ in operator.slots]
        # Acceptance is only possible for slots that draw from the
        # event's sensor — index them so the hot paths touch nothing
        # else.  Because membership in this index already implies the
        # slot's sensor test, the per-event check reduces to attribute
        # equality plus the bound interval predicate.
        self._by_sensor: dict[str, list[tuple]] = {}
        for index, (slot, timeline) in enumerate(zip(self._slots, self._timelines)):
            entry = (slot.attribute, slot.interval.contains, timeline, index)
            for sensor_id in sorted(slot.sensors):
                self._by_sensor.setdefault(sensor_id, []).append(entry)
        self._finite = not math.isinf(operator.delta_l)
        self._min_ts = float("inf")  # earliest indexed timestamp

    # ------------------------------------------------------------------
    # ingest path (live events route through the engine's stabbing
    # index instead; this slot-by-slot path serves the backfill)
    # ------------------------------------------------------------------
    def ingest(self, event: SimpleEvent) -> None:
        """Index one stored event; acceptance tested once per slot."""
        for attribute, contains, timeline, _index in self._by_sensor.get(
            event.sensor_id, ()
        ):
            if event.attribute == attribute and contains(event.value):
                timeline.add(event)
                if event.timestamp < self._min_ts:
                    self._min_ts = event.timestamp

    def backfill(self, store: "EventStore") -> None:
        """Index the store's current visible content (late registration)."""
        for sensor_id in sorted(self.operator.sensors):
            for event in store.sensor_events(sensor_id):
                self.ingest(event)

    def _prune(self) -> None:
        """Drop entries below the store's expiry horizon."""
        horizon = self._engine.horizon
        if horizon < self._min_ts:
            return  # nothing indexed can have expired — O(1) fast path
        min_ts = float("inf")
        for timeline in self._timelines:
            timeline.drop_until(horizon)
            if timeline.min_timestamp < min_ts:
                min_ts = timeline.min_timestamp
        self._min_ts = min_ts

    def _refresh_min_ts(self) -> None:
        """Recompute the earliest indexed timestamp after a fence drop."""
        self._min_ts = min(
            (tl.min_timestamp for tl in self._timelines), default=float("inf")
        )

    def fence_sensor(self, sensor_id: str, until: float = float("inf")) -> int:
        """Drop indexed events of ``sensor_id`` with ``timestamp <= until``.

        The churn fence, mirrored into the per-slot timelines: the
        online engine routes here via the store's ``sensor_fenced``
        listener callback; the offline oracle pass calls it directly as
        its trigger sweep crosses each scheduled departure.  Returns the
        number of dropped entries.
        """
        dropped = 0
        for _attribute, _contains, timeline, _index in self._by_sensor.get(
            sensor_id, ()
        ):
            dropped += timeline.drop_sensor(sensor_id, until)
        if dropped:
            self._refresh_min_ts()
        return dropped

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def matches_involving(self, event: SimpleEvent) -> dict[str, list[SimpleEvent]]:
        """Participants of every match ``event`` takes part in.

        Same contract as the reference
        :func:`repro.model.matching.matches_involving`.  (An earlier
        revision memoised per (store version, event key); in tree
        overlays an operator lives in exactly one per-origin store, so
        the cache never hit and only cost its bookkeeping.)
        """
        return self._compute(event)

    def instance_exists(self, trigger: SimpleEvent) -> bool:
        """Does a match with maximum member ``trigger`` exist?

        Same contract as the reference
        :func:`repro.model.matching.instance_exists` (the oracle
        primitive): the trigger-anchored window must be complete and,
        for finite ``delta_l``, admit a combination that includes the
        trigger.  Like the reference, it does *not* require the trigger
        itself to be stored.
        """
        operator = self.operator
        own_slot = operator.slot_for_event(trigger)
        if own_slot is None:
            return False
        self._prune()
        after = trigger.timestamp - operator.delta_t
        windows = [
            timeline.view(after, trigger.timestamp) for timeline in self._timelines
        ]
        if not all(windows):
            return False
        if not self._finite:
            return True
        delta_l = operator.delta_l
        own = self._slot_ids.index(own_slot.slot_id)
        location = trigger.location
        lists: list[list[SimpleEvent]] = []
        for i, window in enumerate(windows):
            if i == own:
                lists.append([trigger])
                continue
            near = [
                e for e in window if e.location.distance_to(location) < delta_l
            ]
            if not near:
                return False
            lists.append(near)
        return combination_exists(lists, delta_l)

    def match_at_trigger(
        self, trigger_time: float
    ) -> dict[str, list[SimpleEvent]] | None:
        """Participants of matches whose maximum timestamp is ``trigger_time``.

        Same decision and per-slot participant *sets* as the reference
        :func:`repro.model.matching.match_at_trigger`, answered from the
        per-slot timelines: ``None`` when some slot's window
        ``(trigger_time − Δt, trigger_time]`` is empty or, for finite
        ``delta_l``, no spatially valid combination exists.  Participants
        come back in timeline ``(timestamp, key)`` order rather than the
        reference's sensor-grouped order — the offline oracle, the only
        consumer, unions keys and never reads the order.
        """
        self._prune()
        after = trigger_time - self.operator.delta_t
        windows = [
            timeline.view(after, trigger_time) for timeline in self._timelines
        ]
        if not all(windows):
            return None
        kept = [list(w) for w in windows]
        if self._finite:
            kept = participating(kept, self.operator.delta_l)
            if kept is None:
                return None
        out: dict[str, list[SimpleEvent]] = {}
        for slot_id, participants in zip(self._slot_ids, kept):
            _sort_if_tied(participants)
            out[slot_id] = participants
        return out

    def _own_slot_index(self, event: SimpleEvent) -> int | None:
        """Index of the first slot accepting ``event`` (reference order)."""
        for attribute, contains, _timeline, index in self._by_sensor.get(
            event.sensor_id, ()
        ):
            if event.attribute == attribute and contains(event.value):
                return index
        return None

    def _compute(self, event: SimpleEvent) -> dict[str, list[SimpleEvent]]:
        own = self._own_slot_index(event)
        if own is None:
            return {}
        t0 = event.timestamp
        # Expiry is a query-time *clamp*, exactly like the store's own
        # views: entries at or below the horizon are invisible whether
        # or not the periodic sweep has physically dropped them yet.
        horizon = self._engine.horizon
        if t0 <= horizon:
            return {}  # the arrival itself has already expired
        delta_t = self.operator.delta_t
        after = t0 - delta_t
        if after < horizon:
            after = horizon
        before = t0 + delta_t
        # One fused pass per slot: completeness pre-check, candidate
        # triggers, and the sweep's seed pointers, three bisects each.
        # Every window a candidate trigger can anchor lies inside
        # (t0 − Δt, t0 + Δt], so one slot with nothing there rules out
        # every match — by far the most common outcome.  The first
        # trigger is always t0 itself, so its window (t0 − Δt, t0] seeds
        # the pointers directly.
        entries = []
        lo = []
        hi = []
        later: set[float] | None = None
        for timeline in self._timelines:
            ents = timeline.entries()
            a = bisect_right(ents, (after, _INF))
            if a == len(ents) or ents[a][0] > before:
                return {}  # no event in (t0 − Δt, t0 + Δt]: incomplete
            b = bisect_right(ents, (t0, _INF), lo=a)
            # Later accepted events strictly inside (t0, t0 + Δt) are
            # candidate triggers — exactly the set the reference scans.
            c = bisect_left(ents, (before,), lo=b)
            if c > b:
                if later is None:
                    later = set()
                later.update(entry[0] for entry in ents[b:c])
            entries.append(ents)
            lo.append(a)
            hi.append(b)
        event_pos = self._timelines[own].index_of(event)
        if event_pos is None:
            # Not stored (duplicate-dropped or expired): the reference
            # scan would find it in no window either.
            return {}
        if later is None:
            # In-order delivery fast path — the arrival is the only
            # candidate trigger and its window is already seeded.
            if not lo[own] <= event_pos < hi[own]:
                return {}
            n = len(entries)
            for i in range(n):
                if lo[i] == hi[i]:
                    return {}
            if not self._finite:
                out: dict[str, list[SimpleEvent]] = {}
                for i, slot_id in enumerate(self._slot_ids):
                    participants = [
                        entry[-1] for entry in entries[i][lo[i] : hi[i]]
                    ]
                    _sort_if_tied(participants)
                    out[slot_id] = participants
                return out
            ordered = [t0]
        else:
            later.add(t0)
            ordered = sorted(later)
        if self._finite:
            return self._sweep_spatial(event, ordered, entries, lo, hi, own, event_pos)
        return self._sweep_plain(ordered, entries, lo, hi, own, event_pos)

    def _sweep_plain(
        self, ordered, entries, lo, hi, own: int, event_pos: int
    ) -> dict[str, list[SimpleEvent]]:
        return sweep_plain(
            self._slot_ids,
            self.operator.delta_t,
            ordered,
            entries,
            lo,
            hi,
            own,
            event_pos,
        )

    def _sweep_spatial(
        self, event, ordered, entries, lo, hi, own: int, event_pos: int
    ) -> dict[str, list[SimpleEvent]]:
        return sweep_spatial(
            self._slot_ids,
            self.operator,
            event,
            ordered,
            entries,
            lo,
            hi,
            own,
            event_pos,
        )


def sweep_plain(
    slot_ids, delta_t, ordered, entries, lo, hi, own: int, event_pos: int
) -> dict[str, list[SimpleEvent]]:
    """Unbounded ``delta_l``: participants are whole windows.

    Window membership is tracked as merged index spans per slot, so
    the union over triggers materialises each entry once.

    Shared verbatim between the incremental matcher and the columnar
    core (which hands in masked per-slot entry lists): the two modes
    run *the same* sweep, so the differential fence pins one algorithm,
    not two implementations that happen to agree.
    """
    n = len(entries)
    spans: list[list[list[int]]] = [[] for _ in range(n)]
    found = False
    for t_star in ordered:
        after = t_star - delta_t
        complete = True
        for i in range(n):
            ents = entries[i]
            h = hi[i]
            limit = len(ents)
            while h < limit and ents[h][0] <= t_star:
                h += 1
            hi[i] = h
            l = lo[i]
            while l < h and ents[l][0] <= after:
                l += 1
            lo[i] = l
            if l == h:
                complete = False
        if not complete or not lo[own] <= event_pos < hi[own]:
            continue
        found = True
        for i in range(n):
            slot_spans = spans[i]
            if slot_spans and lo[i] <= slot_spans[-1][1]:
                if hi[i] > slot_spans[-1][1]:
                    slot_spans[-1][1] = hi[i]
            else:
                slot_spans.append([lo[i], hi[i]])
    if not found:
        return {}
    out: dict[str, list[SimpleEvent]] = {}
    for i, slot_id in enumerate(slot_ids):
        slot_spans = spans[i]
        ents = entries[i]
        if len(slot_spans) == 1:
            a, b = slot_spans[0]
            participants = [entry[-1] for entry in ents[a:b]]
        else:
            participants = []
            for a, b in slot_spans:
                participants.extend([entry[-1] for entry in ents[a:b]])
        _sort_if_tied(participants)
        out[slot_id] = participants
    return out


def sweep_spatial(
    slot_ids, operator, event, ordered, entries, lo, hi, own: int, event_pos: int
) -> dict[str, list[SimpleEvent]]:
    """Finite ``delta_l``: grid-pruned combination search per trigger.

    Shared verbatim between the incremental matcher and the columnar
    core, same as :func:`sweep_plain`.
    """
    delta_t = operator.delta_t
    delta_l = operator.delta_l
    n = len(entries)
    key = event.key
    union: list[dict[tuple[str, int], SimpleEvent]] = [{} for _ in range(n)]
    found = False
    for t_star in ordered:
        after = t_star - delta_t
        complete = True
        for i in range(n):
            ents = entries[i]
            h = hi[i]
            limit = len(ents)
            while h < limit and ents[h][0] <= t_star:
                h += 1
            hi[i] = h
            l = lo[i]
            while l < h and ents[l][0] <= after:
                l += 1
            lo[i] = l
            if l == h:
                complete = False
        if not complete or not lo[own] <= event_pos < hi[own]:
            continue
        windows = [
            [entry[-1] for entry in entries[i][lo[i] : hi[i]]] for i in range(n)
        ]
        participants = participating(windows, delta_l)
        if participants is None:
            continue
        if not any(e.key == key for e in participants[own]):
            continue
        found = True
        for i in range(n):
            bucket = union[i]
            for e in participants[i]:
                bucket[e.key] = e
    if not found:
        return {}
    return {
        slot_id: sorted(union[i].values(), key=_result_order)
        for i, slot_id in enumerate(slot_ids)
    }


class _StabbingIndex:
    """Interval-stabbing ingest index for one sensor's registrations.

    Slot filters are closed intervals; their endpoints cut the value
    axis into elementary segments (alternating open ranges and endpoint
    points), and within one segment the set of accepting slots is
    constant.  Routing an arriving value is then a single bisect plus
    appends to exactly the accepting timelines — O(log B + hits) —
    instead of one filter evaluation per registered matcher.
    """

    __slots__ = ("_registrations", "_dirty", "_by_attr")

    def __init__(self) -> None:
        # (attribute, lo, hi, timeline, matcher); rebuilt lazily into
        # per-attribute (bounds, segments) on the first event after a
        # registration.
        self._registrations: list[tuple] = []
        self._dirty = False
        self._by_attr: dict[str, tuple[list[float], list[tuple]]] = {}

    def add(self, attribute, interval, timeline, matcher) -> None:
        if interval.lo <= interval.hi:  # empty filters accept nothing
            self._registrations.append(
                (attribute, interval.lo, interval.hi, timeline, matcher)
            )
            self._dirty = True

    def discard(self, matcher) -> None:
        """Remove every registration of ``matcher`` (operator teardown)."""
        kept = [reg for reg in self._registrations if reg[4] is not matcher]
        if len(kept) != len(self._registrations):
            self._registrations = kept
            self._dirty = True

    def __bool__(self) -> bool:
        return bool(self._registrations)

    def targets(self, attribute: str, value: float) -> tuple:
        """(timeline, matcher) pairs whose slot accepts ``value``."""
        if self._dirty:
            self._rebuild()
        entry = self._by_attr.get(attribute)
        if entry is None:
            return ()
        bounds, segments = entry
        i = bisect_left(bounds, value)
        if i < len(bounds) and bounds[i] == value:
            return segments[2 * i + 1]
        return segments[2 * i]

    def _rebuild(self) -> None:
        self._dirty = False
        groups: dict[str, list[tuple]] = {}
        for attribute, lo, hi, timeline, matcher in self._registrations:
            groups.setdefault(attribute, []).append((lo, hi, timeline, matcher))
        by_attr: dict[str, tuple[list[float], list[tuple]]] = {}
        for attribute, regs in groups.items():
            bounds = sorted({x for lo, hi, _t, _m in regs for x in (lo, hi)})
            # segment 2j+1 = the point [bounds[j]];
            # segment 2j   = the open range (bounds[j-1], bounds[j])
            # (2·0 and 2·len(bounds) lie outside every registration).
            segments: list[list] = [[] for _ in range(2 * len(bounds) + 1)]
            for lo, hi, timeline, matcher in regs:
                payload = (timeline, matcher)
                first = bisect_left(bounds, lo)  # bounds[first] == lo
                last = bisect_left(bounds, hi)  # bounds[last] == hi
                for j in range(first, last + 1):
                    segments[2 * j + 1].append(payload)
                for j in range(first + 1, last + 1):
                    segments[2 * j].append(payload)
            by_attr[attribute] = (bounds, [tuple(s) for s in segments])
        self._by_attr = by_attr


class MatchingEngine:
    """Per-node registry of operator matchers, kept in lockstep with ``U``.

    One engine serves every operator a node stores, across all
    per-origin subscription stores: matchers are shared by operator
    *equality*, so the same fragment received from several neighbours is
    indexed (and each arrival matched) once.
    """

    _PRUNE_SWEEP_EVERY = 256
    """Store adds between full matcher-prune sweeps (each check is O(1)
    per matcher thanks to the min-timestamp guard)."""

    def __init__(self, store: "EventStore") -> None:
        self._store = store
        self.horizon = store.horizon
        self._matchers: dict[CorrelationOperator, OperatorMatcher] = {}
        self._ingest_index: dict[str, _StabbingIndex] = {}
        self._refs: dict[CorrelationOperator, int] = {}
        self._adds_since_sweep = 0
        store.add_listener(self)

    # ------------------------------------------------------------------
    # EventStore listener protocol
    # ------------------------------------------------------------------
    def event_added(self, event: SimpleEvent) -> None:
        index = self._ingest_index.get(event.sensor_id)
        if index is not None:
            timestamp = event.timestamp
            for timeline, matcher in index.targets(event.attribute, event.value):
                timeline.add(event)
                if timestamp < matcher._min_ts:
                    matcher._min_ts = timestamp
        self._adds_since_sweep += 1
        if self._adds_since_sweep >= self._PRUNE_SWEEP_EVERY:
            self._adds_since_sweep = 0
            for matcher in self._matchers.values():
                matcher._prune()

    def horizon_advanced(self, horizon: float) -> None:
        self.horizon = horizon

    def sensor_fenced(self, sensor_id: str) -> None:
        """Mirror a store fence: drop the sensor from every matcher.

        Guarded by each matcher's per-sensor index, the scan is O(1)
        for matchers that never drew from the sensor; churn transitions
        are rare enough that the linear walk over matchers is noise.
        """
        for matcher in self._matchers.values():
            matcher.fence_sensor(sensor_id)

    # ------------------------------------------------------------------
    def matcher(self, operator: CorrelationOperator) -> OperatorMatcher:
        """Get or create (and backfill) the matcher for ``operator``."""
        found = self._matchers.get(operator)
        if found is None:
            found = OperatorMatcher(operator, self)
            self._matchers[operator] = found
            found.backfill(self._store)
            for slot, timeline in zip(found._slots, found._timelines):
                for sensor_id in sorted(slot.sensors):
                    self._ingest_index.setdefault(
                        sensor_id, _StabbingIndex()
                    ).add(slot.attribute, slot.interval, timeline, found)
        return found

    def register(self, operators: Iterable[CorrelationOperator] | CorrelationOperator) -> None:
        """Eagerly create matchers (the ``SubscriptionStore.add`` hook)."""
        if isinstance(operators, CorrelationOperator):
            self.matcher(operators)
        else:
            for operator in operators:
                self.matcher(operator)

    # ------------------------------------------------------------------
    # lifecycle (query cancellation)
    # ------------------------------------------------------------------
    def retain(self, operator: CorrelationOperator) -> OperatorMatcher:
        """Get the operator's matcher and count a long-lived reference.

        Subscription stores and local-subscription registrations retain
        the matchers they hold; :meth:`release` drops the reference when
        the operator is removed again (query cancellation), and the last
        release tears the matcher down.
        """
        matcher = self.matcher(operator)
        self._refs[operator] = self._refs.get(operator, 0) + 1
        return matcher

    def release(self, operator: CorrelationOperator) -> None:
        """Drop one reference; tear the matcher down at zero.

        Also serves as an unconditional discard for matchers that were
        created without :meth:`retain` (the multi-join relays' on-demand
        ring joins): with no recorded reference the matcher is removed
        outright.  Releasing an unknown operator is a no-op.

        Teardown removes the matcher, scrubs its timelines out of every
        per-sensor ingest index and drops indexes that became empty —
        the engine ends in the state it would hold had the operator
        never been registered.
        """
        remaining = self._refs.get(operator, 0) - 1
        if remaining > 0:
            self._refs[operator] = remaining
            return
        self._refs.pop(operator, None)
        matcher = self._matchers.pop(operator, None)
        if matcher is None:
            return
        for sensor_id in sorted(matcher.operator.sensors):
            index = self._ingest_index.get(sensor_id)
            if index is not None:
                index.discard(matcher)
                if not index:
                    del self._ingest_index[sensor_id]

    def matches_involving(
        self, operator: CorrelationOperator, event: SimpleEvent
    ) -> dict[str, list[SimpleEvent]]:
        """Drop-in replacement for the reference ``matches_involving``."""
        return self.matcher(operator).matches_involving(event)

    def instance_exists(
        self, operator: CorrelationOperator, trigger: SimpleEvent
    ) -> bool:
        """Drop-in replacement for the reference ``instance_exists``."""
        return self.matcher(operator).instance_exists(trigger)

    @property
    def n_matchers(self) -> int:
        return len(self._matchers)
