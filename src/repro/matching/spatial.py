"""Grid-pruned spatial combination search for finite ``delta_l``.

The reference implementation (:mod:`repro.model.matching`) decides
participation of each window candidate by filtering every other slot's
candidates with an exact distance test and backtracking over the
result — O(candidates²) distance evaluations per trigger before the
search even starts.

Here candidates are first bucketed into a coarse uniform grid with cell
size ``delta_l``.  Any pair closer than ``delta_l`` lies in the same or
an adjacent cell, so the 3×3 neighbourhood of a candidate's cell is a
complete superset of its admissible partners; only those few survive
the exact distance check.  The backtracking itself stays *exact* — the
grid only shrinks the lists it runs over, so the decision is identical
to the reference's, just reached after touching a constant-density
neighbourhood instead of every candidate.
"""

from __future__ import annotations

from math import floor
from typing import Sequence

from ..model.events import SimpleEvent
from ..model.locations import Location


class SlotGrid:
    """Uniform grid over one slot's window candidates (cell = delta_l)."""

    __slots__ = ("cell", "cells", "count")

    def __init__(self, cell: float, candidates: Sequence[SimpleEvent]) -> None:
        self.cell = cell
        self.cells: dict[tuple[int, int], list[SimpleEvent]] = {}
        self.count = len(candidates)
        for event in candidates:
            key = (floor(event.location.x / cell), floor(event.location.y / cell))
            self.cells.setdefault(key, []).append(event)

    def near(self, location: Location) -> list[SimpleEvent]:
        """Candidates strictly closer than ``delta_l`` to ``location``.

        Exact — the 3×3 cell neighbourhood is a superset of the open
        ``delta_l``-ball, and every member is distance-checked.
        """
        cx = floor(location.x / self.cell)
        cy = floor(location.y / self.cell)
        cells = self.cells
        out: list[SimpleEvent] = []
        limit = self.cell
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                bucket = cells.get((cx + dx, cy + dy))
                if not bucket:
                    continue
                for event in bucket:
                    if location.distance_to(event.location) < limit:
                        out.append(event)
        return out


def combination_exists(
    lists: Sequence[Sequence[SimpleEvent]], delta_l: float
) -> bool:
    """One event per list with pairwise spread < delta_l (exact search)."""
    order = sorted(range(len(lists)), key=lambda i: len(lists[i]))
    ordered = [lists[i] for i in order]
    chosen: list[SimpleEvent] = []

    def extend(i: int) -> bool:
        if i == len(ordered):
            return True
        for candidate in ordered[i]:
            location = candidate.location
            if all(
                location.distance_to(prev.location) < delta_l for prev in chosen
            ):
                chosen.append(candidate)
                if extend(i + 1):
                    chosen.pop()
                    return True
                chosen.pop()
        return False

    return extend(0)


def participating(
    windows: Sequence[Sequence[SimpleEvent]], delta_l: float
) -> list[list[SimpleEvent]] | None:
    """Per-slot candidates taking part in ≥1 spatially valid combination.

    Semantics identical to the reference ``_participating`` (same-order
    slot lists in, same membership out, ``None`` when no combination
    exists); the grid only accelerates the admissible-partner lookups.
    Callers guarantee every window is non-empty.
    """
    grids = [SlotGrid(delta_l, window) for window in windows]
    if not _anchored_combination_exists(grids, windows, delta_l):
        return None
    result: list[list[SimpleEvent]] = []
    for i, window in enumerate(windows):
        others = grids[:i] + grids[i + 1 :]
        kept: list[SimpleEvent] = []
        for candidate in window:
            near = [grid.near(candidate.location) for grid in others]
            if all(near) and combination_exists(near, delta_l):
                kept.append(candidate)
        result.append(kept)
    return result


def grid_instance_exists(operator, provider, trigger) -> bool:
    """Grid-pruned drop-in for :func:`repro.model.matching.instance_exists`.

    The user-side final check (a match instance with maximum member
    ``trigger`` exists in ``provider``'s events) with the spatial phase
    routed through :class:`SlotGrid` instead of the reference's
    all-pairs distance filter.  The decision is provably identical:
    ``SlotGrid.near`` returns exactly the open ``delta_l``-ball members
    the reference's list comprehension selects (the 3×3 neighbourhood is
    a superset and every member is distance-checked), and the
    backtracking search is the same.  ``provider`` is any
    ``SlotEventProvider`` — the node's event store, a delivery view, or
    the oracle's index.
    """
    from ..model.matching import window_candidates  # local: avoids cycle at import

    own_slot = operator.slot_for_event(trigger)
    if own_slot is None:
        return False
    candidates = window_candidates(operator, provider, trigger.timestamp)
    if any(not lst for lst in candidates.values()):
        return False
    delta_l = operator.delta_l
    if not (delta_l < float("inf")):
        return True
    lists: list[list[SimpleEvent]] = []
    for slot_id in sorted(candidates):
        if slot_id == own_slot.slot_id:
            lists.append([trigger])
            continue
        near = SlotGrid(delta_l, candidates[slot_id]).near(trigger.location)
        if not near:
            return False
        lists.append(near)
    return combination_exists(lists, delta_l)


def _anchored_combination_exists(
    grids: Sequence[SlotGrid],
    windows: Sequence[Sequence[SimpleEvent]],
    delta_l: float,
) -> bool:
    """Exact existence check, anchored on the sparsest slot.

    Every valid combination lies within ``delta_l`` of its member from
    the anchor slot, i.e. inside that member's 3×3 grid neighbourhood
    in every other slot — so anchoring loses no solutions.
    """
    anchor = min(range(len(windows)), key=lambda i: len(windows[i]))
    other_grids = [g for i, g in enumerate(grids) if i != anchor]
    for candidate in windows[anchor]:
        near = [grid.near(candidate.location) for grid in other_grids]
        if all(near) and combination_exists(near, delta_l):
            return True
    return False
