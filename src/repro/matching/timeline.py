"""Append-mostly sorted event timelines with zero-copy window views.

Events reach a node *near*-ordered: sensors publish in timestamp order
and link latencies are uniform, so out-of-order arrivals are rare and
shallow.  ``bisect.insort`` pays O(n) memmove per insert regardless;
appending and deferring to one timsort pass (O(n) on nearly sorted
input) amortises to O(1) per event.  Window queries return lightweight
*views* — (entries, lo, hi) triples satisfying the sequence protocol —
so the matcher sweep never copies slices of the hot timelines.

Entries are ``(timestamp, seq, sensor_id, event)`` tuples: a matcher
slot timeline mixes events of several sensors, and ``(sensor_id, seq)``
is the only network-wide unique identity, so the ``sensor_id``
component is what keeps the ordering total without ever comparing
events themselves.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, Sequence

from ..model.events import SimpleEvent

_INF = float("inf")

Entry = tuple[float, int, str, SimpleEvent]


class TimelineView(Sequence[SimpleEvent]):
    """Zero-copy window over a sorted timeline: events in ``[lo, hi)``.

    Valid until the underlying timeline mutates; consumers use a view
    immediately after the query that produced it (the matcher sweep and
    the reference matcher both do).
    """

    __slots__ = ("_entries", "_lo", "_hi")

    def __init__(self, entries: list[Entry], lo: int, hi: int) -> None:
        self._entries = entries
        self._lo = lo
        self._hi = hi

    def __len__(self) -> int:
        return self._hi - self._lo

    def __bool__(self) -> bool:
        return self._hi > self._lo

    def __getitem__(self, index):
        if isinstance(index, slice):
            lo, hi, step = index.indices(len(self))
            if step != 1:
                return [self._entries[self._lo + i][-1] for i in range(lo, hi, step)]
            return TimelineView(self._entries, self._lo + lo, self._lo + hi)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._entries[self._lo + index][-1]

    def __iter__(self) -> Iterator[SimpleEvent]:
        for i in range(self._lo, self._hi):
            yield self._entries[i][-1]

    def __eq__(self, other) -> bool:
        if isinstance(other, (list, tuple, TimelineView)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimelineView({list(self)!r})"


class Timeline:
    """Sorted-by-(timestamp, seq, sensor) event sequence, lazily kept."""

    __slots__ = ("_entries", "_dirty", "min_timestamp")

    def __init__(self) -> None:
        self._entries: list[Entry] = []
        self._dirty = False
        self.min_timestamp = _INF

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    # ------------------------------------------------------------------
    def add(self, event: SimpleEvent) -> None:
        """Append; order is restored lazily at the next query."""
        entries = self._entries
        entry = (event.timestamp, event.seq, event.sensor_id, event)
        if entries and not self._dirty and entry < entries[-1]:
            self._dirty = True
        entries.append(entry)
        if event.timestamp < self.min_timestamp:
            self.min_timestamp = event.timestamp

    def entries(self) -> list[Entry]:
        """The sorted backing list (shared, do not mutate)."""
        if self._dirty:
            self._entries.sort()
            self._dirty = False
        return self._entries

    # ------------------------------------------------------------------
    # range queries — all bounds follow the paper's half-open windows
    # ------------------------------------------------------------------
    def span(self, after: float, until: float) -> tuple[int, int]:
        """Index range of events with ``after < timestamp <= until``."""
        entries = self.entries()
        lo = bisect_right(entries, (after, _INF))
        hi = bisect_right(entries, (until, _INF))
        return lo, hi

    def view(self, after: float, until: float) -> TimelineView:
        lo, hi = self.span(after, until)
        return TimelineView(self._entries, lo, hi)

    def index_of(self, event: SimpleEvent) -> int | None:
        """Index of ``event`` (by key), or None when absent."""
        entries = self.entries()
        probe = (event.timestamp, event.seq, event.sensor_id)
        i = bisect_left(entries, probe)
        if i < len(entries) and entries[i][:3] == probe:
            return i
        return None

    def drop_sensor(self, sensor_id: str, until: float = _INF) -> int:
        """Remove entries of ``sensor_id`` with ``timestamp <= until``.

        The churn fence: when a sensor departs, its pre-departure
        history must leave every slot timeline it was indexed into.
        Mutates the backing list in place (live views keep observing the
        timeline, same as :meth:`drop_until`); returns the number of
        entries removed.  O(n) — churn transitions are orders of
        magnitude rarer than event arrivals.
        """
        entries = self._entries
        kept = [
            entry
            for entry in entries
            if entry[2] != sensor_id or entry[0] > until
        ]
        dropped = len(entries) - len(kept)
        if dropped:
            entries[:] = kept
            self.min_timestamp = (
                min(entry[0] for entry in entries) if entries else _INF
            )
        return dropped

    # ------------------------------------------------------------------
    def drop_until(self, horizon: float) -> list[SimpleEvent]:
        """Remove and return every event with ``timestamp <= horizon``."""
        if horizon < self.min_timestamp:  # cheap no-op guard (hot path)
            return []
        entries = self.entries()
        cut = bisect_right(entries, (horizon, _INF))
        if cut == 0:
            return []
        removed = [entry[-1] for entry in entries[:cut]]
        del entries[:cut]
        self.min_timestamp = entries[0][0] if entries else _INF
        return removed
