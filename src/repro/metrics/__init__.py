"""Metrics: traffic loads, the offline oracle, recall and reports."""

from .approx import ApproxReport, ApproxStats, churn_fences, measure_approx
from .oracle import (
    ORACLE_ENV_VAR,
    ORACLE_METHODS,
    EventIndex,
    SubscriptionTruth,
    compute_truth,
    default_oracle,
    operator_truth,
    oracle_operator,
)
from .recall import RecallReport, measure_recall, per_subscription_recall
from .report import (
    improvement_over,
    render_series_table,
    render_traffic_accounting,
    summarize_improvement,
    traffic_accounting,
)

__all__ = [
    "ApproxReport",
    "ApproxStats",
    "EventIndex",
    "churn_fences",
    "measure_approx",
    "ORACLE_ENV_VAR",
    "ORACLE_METHODS",
    "RecallReport",
    "SubscriptionTruth",
    "compute_truth",
    "default_oracle",
    "improvement_over",
    "measure_recall",
    "operator_truth",
    "oracle_operator",
    "per_subscription_recall",
    "render_series_table",
    "render_traffic_accounting",
    "summarize_improvement",
    "traffic_accounting",
]
