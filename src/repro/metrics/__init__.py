"""Metrics: traffic loads, the offline oracle, recall and reports."""

from .oracle import (
    EventIndex,
    SubscriptionTruth,
    compute_truth,
    oracle_operator,
)
from .recall import RecallReport, measure_recall, per_subscription_recall
from .report import improvement_over, render_series_table, summarize_improvement

__all__ = [
    "EventIndex",
    "RecallReport",
    "SubscriptionTruth",
    "compute_truth",
    "improvement_over",
    "measure_recall",
    "oracle_operator",
    "per_subscription_recall",
    "render_series_table",
    "summarize_improvement",
]
