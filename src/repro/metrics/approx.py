"""Offline oracle for the approximate answer lane (figs. 21–22).

:func:`measure_approx` replays the ground truth against every
certified answer the sketch lane produced: for each answered
subscription it counts the events that really fell into the queried
range (honouring churn fences — a retired sensor's history must not
count, exactly as ``EventStore.fence_sensor`` and the lane's own fence
refuse it) and checks the lane's certificate against it.

Two truths per answer:

* ``raw_true_count`` — events whose *value* lies in the closed query
  interval.  This is what a user ultimately cares about and what the
  recall-style accuracy ratio compares against.
* ``true_count`` — the truth the summary's error contract is stated
  over.  For the q-digest that is the *quantized* truth (events whose
  leaf cell falls into the cell-aligned query range); the
  multiresolution stack certifies against the raw count directly, so
  there both truths coincide.

The oracle pass asserts, per answer, that the certified bracket
contains the contract truth and that the midpoint estimate is off by
at most the summary's deterministic ``error_bound`` — the machine
check behind the "observed error <= guaranteed bound" acceptance
criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from ..model.events import SimpleEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..network.network import Network
    from ..workload.sensorscope import ChurnSchedule


@dataclass(frozen=True, slots=True)
class ApproxStats:
    """One answered subscription's certificate checked against truth."""

    sub_id: str
    estimate: int
    lower: int
    upper: int
    true_count: int
    raw_true_count: int
    observed_error: int
    error_bound: int
    n: int
    eps: float | None
    within_bound: bool

    @property
    def recall(self) -> float:
        """Symmetric count accuracy in ``[0, 1]`` against the raw truth.

        ``min / max`` of estimate and raw truth, so over- and
        under-counting are penalised alike; 1.0 when both are zero
        (vacuous success, mirroring :class:`RecallReport`).
        """
        top = max(self.estimate, self.raw_true_count)
        if top == 0:
            return 1.0
        return min(self.estimate, self.raw_true_count) / top


@dataclass(frozen=True, slots=True)
class ApproxReport:
    """All of one run's answers, oracle-checked."""

    stats: tuple[ApproxStats, ...]

    @property
    def queries(self) -> int:
        return len(self.stats)

    @property
    def mean_recall(self) -> float:
        """Mean per-answer count accuracy (1.0 when nothing answered)."""
        if not self.stats:
            return 1.0
        return sum(s.recall for s in self.stats) / len(self.stats)

    @property
    def max_observed_error(self) -> int:
        return max((s.observed_error for s in self.stats), default=0)

    @property
    def bound_violations(self) -> int:
        """Answers whose certificate failed the oracle check."""
        return sum(1 for s in self.stats if not s.within_bound)

    @property
    def all_within_bound(self) -> bool:
        return self.bound_violations == 0


def churn_fences(schedule: "ChurnSchedule | None") -> dict[str, float]:
    """Per-sensor truth fence: the last departure time (if any).

    The lane drops a sensor's summary on every leave and restarts it
    from empty on rejoin, so at answer time (the final push round runs
    after all churn) only readings *after the last leave* survive.
    Sensors that never depart have no fence.
    """
    if schedule is None:
        return {}
    fences: dict[str, float] = {}
    for time, sensor_id in schedule.departures():
        fences[sensor_id] = max(time, fences.get(sensor_id, time))
    return fences


def measure_approx(
    network: "Network",
    events: Iterable[SimpleEvent],
    fences: Mapping[str, float] | None = None,
) -> ApproxReport:
    """Oracle-check every certified answer of ``network``'s sketch lane.

    ``events`` is the full replayed trace (churned-away readings are
    never synthesized, so no aliveness filter is needed here);
    ``fences`` maps sensor ids to their last departure time — readings
    stamped at or before the fence are excluded from the truth, the
    exact rule the lane's :meth:`~repro.sketches.SketchLane.fence_sensor`
    applies on the answer side.
    """
    lane = network.sketches
    if lane is None:
        return ApproxReport(stats=())
    fences = dict(fences or {})
    trace = list(events)
    stats: list[ApproxStats] = []
    answers = lane.query_answers()
    for sub_id in sorted(answers):
        answer = answers[sub_id]
        summary = answer.summary
        values = [
            e.value
            for e in trace
            if e.attribute == answer.attribute
            and e.sensor_id in answer.sensors
            and not (
                e.sensor_id in fences and e.timestamp <= fences[e.sensor_id]
            )
        ]
        raw_true = sum(
            1 for v in values if answer.interval.contains(v)
        )
        if summary.quantized:
            c_lo, c_hi = summary.query_cells(
                answer.interval.lo, answer.interval.hi
            )
            true = sum(1 for v in values if c_lo <= summary.cell(v) <= c_hi)
        else:
            true = raw_true
        observed = abs(answer.estimate - true)
        within = (
            answer.lower <= true <= answer.upper
            and observed <= answer.error_bound
        )
        stats.append(
            ApproxStats(
                sub_id=sub_id,
                estimate=answer.estimate,
                lower=answer.lower,
                upper=answer.upper,
                true_count=true,
                raw_true_count=raw_true,
                observed_error=observed,
                error_bound=answer.error_bound,
                n=answer.n,
                eps=answer.eps,
                within_bound=within,
            )
        )
    return ApproxReport(stats=tuple(stats))
