"""Offline matching oracle — ground truth for the recall metric.

With global knowledge of every published event, enumerate for each
subscription the true *match instances*: pairs ``(subscription,
trigger)`` where the trigger is the maximum-timestamp member of some
valid complex event.  The per-instance participants are collected too,
so the multi-join baseline's false positives (delivered events that are
part of no true match) can be quantified.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..model.events import EventKey, SimpleEvent
from ..model.matching import instance_exists, match_at_trigger
from ..model.operators import CorrelationOperator, root_operator
from ..model.subscriptions import (
    AbstractSubscription,
    IdentifiedSubscription,
    Subscription,
)
from ..network.topology import Deployment


class EventIndex:
    """SlotEventProvider over an arbitrary event collection."""

    def __init__(self, events: Iterable[SimpleEvent]) -> None:
        self._by_sensor: dict[str, list[tuple[float, int, SimpleEvent]]] = {}
        self.by_key: dict[EventKey, SimpleEvent] = {}
        for event in events:
            self._by_sensor.setdefault(event.sensor_id, []).append(
                (event.timestamp, event.seq, event)
            )
            self.by_key[event.key] = event
        for timeline in self._by_sensor.values():
            timeline.sort()

    def events_for_sensor(
        self, sensor_id: str, after: float, until: float
    ) -> Sequence[SimpleEvent]:
        timeline = self._by_sensor.get(sensor_id)
        if not timeline:
            return ()
        lo = bisect.bisect_right(timeline, (after, float("inf")))
        hi = bisect.bisect_right(timeline, (until, float("inf")))
        return [entry[2] for entry in timeline[lo:hi]]

    def events_of(self, sensor_ids: Iterable[str]) -> list[SimpleEvent]:
        out: list[SimpleEvent] = []
        for sensor_id in sensor_ids:
            out.extend(e for _, _, e in self._by_sensor.get(sensor_id, ()))
        return out


@dataclass
class SubscriptionTruth:
    """Ground truth for one subscription."""

    sub_id: str
    operator: CorrelationOperator
    triggers: set[EventKey] = field(default_factory=set)
    participants: set[EventKey] = field(default_factory=set)

    @property
    def n_instances(self) -> int:
        return len(self.triggers)


def oracle_operator(
    subscription: Subscription, deployment: Deployment
) -> CorrelationOperator:
    """Root operator resolved with global deployment knowledge."""
    if isinstance(subscription, IdentifiedSubscription):
        return root_operator(subscription, "oracle")
    assert isinstance(subscription, AbstractSubscription)
    sensors: dict[str, list[str]] = {}
    for clause in subscription.clauses:
        sensors[clause.attribute] = sorted(
            s.sensor_id
            for s in deployment.sensors
            if s.attribute.name == clause.attribute
            and clause.region.contains(s.location)
        )
    return root_operator(subscription, "oracle", sensors)


def compute_truth(
    subscriptions: Iterable[Subscription],
    deployment: Deployment,
    events: Sequence[SimpleEvent],
    collect_participants: bool = True,
) -> dict[str, SubscriptionTruth]:
    """Enumerate every true match instance of every subscription.

    Only events produced by a subscription's own sensors can trigger it,
    so the scan is proportional to (subscriptions x their group's
    events), not (subscriptions x all events).
    """
    index = EventIndex(events)
    truths: dict[str, SubscriptionTruth] = {}
    for subscription in subscriptions:
        operator = oracle_operator(subscription, deployment)
        truth = SubscriptionTruth(subscription.sub_id, operator)
        for event in index.events_of(sorted(operator.sensors)):
            if operator.slot_for_event(event) is None:
                continue
            if not instance_exists(operator, index, event):
                continue
            truth.triggers.add(event.key)
            if collect_participants:
                found = match_at_trigger(operator, index, event.timestamp)
                if found:
                    for members in found.values():
                        truth.participants.update(m.key for m in members)
        truths[subscription.sub_id] = truth
    return truths
