"""Offline matching oracle — ground truth for the recall metric.

With global knowledge of every published event, enumerate for each
subscription the true *match instances*: pairs ``(subscription,
trigger)`` where the trigger is the maximum-timestamp member of some
valid complex event.  The per-instance participants are collected too,
so the multi-join baseline's false positives (delivered events that are
part of no true match) can be quantified.

Two interchangeable truth passes exist:

* ``method="engine"`` (the default) reuses the incremental matching
  engine's per-operator slot timelines and grid-pruned spatial search
  (:mod:`repro.matching`) in an offline harness — filter acceptance is
  evaluated once per (event, slot) instead of once per candidate
  trigger, which is what makes full-scale figure runs affordable;
* ``method="reference"`` is the original per-trigger window rescan over
  :class:`EventIndex`, kept in-tree as the semantics oracle for the
  oracle itself — ``tests/test_oracle_engine.py`` machine-checks that
  both passes produce identical triggers and participants;
* ``method="columnar"`` answers the same probes from the columnar
  shared-lane matcher (:mod:`repro.matching.columnar`), completing the
  three-way differential fence columnar == engine == reference.

The default is overridable per process via the ``REPRO_ORACLE``
environment variable (the experiment CLI's ``--oracle`` flag sets it).
"""

from __future__ import annotations

import bisect
import os
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..matching.columnar import ColumnarEngine
from ..matching.engine import OperatorMatcher
from ..model.events import EventKey, SimpleEvent
from ..model.matching import instance_exists, match_at_trigger
from ..model.operators import CorrelationOperator, root_operator
from ..model.subscriptions import (
    AbstractSubscription,
    IdentifiedSubscription,
    Subscription,
)
from ..network.topology import Deployment

ORACLE_ENV_VAR = "REPRO_ORACLE"

ORACLE_METHODS = ("engine", "columnar", "reference")


def default_oracle() -> str:
    """The truth pass to use, overridable via the environment."""
    raw = os.environ.get(ORACLE_ENV_VAR, "engine")  # repro-lint: ignore[env-read] -- documented REPRO_ORACLE knob, read once at experiment entry
    if raw not in ORACLE_METHODS:
        raise ValueError(
            f"{ORACLE_ENV_VAR} must be one of {ORACLE_METHODS}, got {raw!r}"
        )
    return raw


class EventIndex:
    """SlotEventProvider over an arbitrary event collection."""

    def __init__(self, events: Iterable[SimpleEvent]) -> None:
        self._by_sensor: dict[str, list[tuple[float, int, SimpleEvent]]] = {}
        self.by_key: dict[EventKey, SimpleEvent] = {}
        for event in events:
            self._by_sensor.setdefault(event.sensor_id, []).append(
                (event.timestamp, event.seq, event)
            )
            self.by_key[event.key] = event
        for timeline in self._by_sensor.values():
            timeline.sort()

    def events_for_sensor(
        self, sensor_id: str, after: float, until: float
    ) -> Sequence[SimpleEvent]:
        timeline = self._by_sensor.get(sensor_id)
        if not timeline:
            return ()
        lo = bisect.bisect_right(timeline, (after, float("inf")))
        hi = bisect.bisect_right(timeline, (until, float("inf")))
        return [entry[2] for entry in timeline[lo:hi]]

    def events_of(self, sensor_ids: Iterable[str]) -> list[SimpleEvent]:
        out: list[SimpleEvent] = []
        for sensor_id in sensor_ids:
            out.extend(e for _, _, e in self._by_sensor.get(sensor_id, ()))
        return out


class _FencedIndex:
    """Churn view over an :class:`EventIndex`.

    As the truth sweep crosses a scheduled departure, :meth:`fence`
    hides the departed sensor's earlier events from every subsequent
    window query — the offline equivalent of the store-level fence a
    retraction flood applies online.  Events after a re-join have later
    timestamps than the fence and stay visible.
    """

    __slots__ = ("_index", "_fences")

    def __init__(self, index: EventIndex) -> None:
        self._index = index
        self._fences: dict[str, float] = {}

    def fence(self, sensor_id: str, until: float) -> None:
        previous = self._fences.get(sensor_id)
        if previous is None or until > previous:
            self._fences[sensor_id] = until

    def events_for_sensor(
        self, sensor_id: str, after: float, until: float
    ) -> Sequence[SimpleEvent]:
        fence = self._fences.get(sensor_id)
        if fence is not None and fence > after:
            after = fence
        return self._index.events_for_sensor(sensor_id, after, until)


@dataclass
class SubscriptionTruth:
    """Ground truth for one subscription."""

    sub_id: str
    operator: CorrelationOperator
    triggers: set[EventKey] = field(default_factory=set)
    participants: set[EventKey] = field(default_factory=set)

    @property
    def n_instances(self) -> int:
        return len(self.triggers)


def oracle_operator(
    subscription: Subscription, deployment: Deployment
) -> CorrelationOperator:
    """Root operator resolved with global deployment knowledge."""
    if isinstance(subscription, IdentifiedSubscription):
        return root_operator(subscription, "oracle")
    assert isinstance(subscription, AbstractSubscription)
    sensors: dict[str, list[str]] = {}
    for clause in subscription.clauses:
        sensors[clause.attribute] = sorted(
            s.sensor_id
            for s in deployment.sensors
            if s.attribute.name == clause.attribute
            and clause.region.contains(s.location)
        )
    return root_operator(subscription, "oracle", sensors)


class _OfflineEngine:
    """Minimal :class:`~repro.matching.engine.MatchingEngine` stand-in.

    The offline oracle has no event store and no expiry: every replayed
    event is visible forever, so the horizon an
    :class:`OperatorMatcher` clamps against sits at ``-inf`` and its
    prune sweeps hit the O(1) nothing-expired fast path.
    """

    __slots__ = ()

    horizon = float("-inf")


_OFFLINE_ENGINE = _OfflineEngine()


def operator_truth(
    operator: CorrelationOperator,
    sub_id: str,
    index: EventIndex,
    collect_participants: bool = True,
    method: str | None = None,
    churn=None,
    cancelled_at: float | None = None,
    activated_at: float | None = None,
) -> SubscriptionTruth:
    """Ground truth of one resolved operator over an indexed event set.

    ``method="reference"`` rescans windows via the reference matcher;
    ``method="engine"`` ingests the operator's events into an offline
    :class:`OperatorMatcher` once and answers every trigger probe from
    its per-slot timelines.  Both enumerate the identical candidate
    triggers (events of the operator's own sensors that fill a slot) and
    produce identical ``triggers`` / ``participants`` sets.

    ``churn`` (a :class:`~repro.workload.sensorscope.ChurnSchedule`,
    already shifted to the replay clock) makes the truth churn-aware:
    candidate triggers are swept in timestamp order, and every scheduled
    departure fences the departed sensor's earlier events out of all
    later windows — an instance is credited only when each participant's
    sensor stayed alive through the trigger time.  Both passes apply the
    identical fence, so engine/reference equivalence is preserved under
    churn.

    ``cancelled_at`` / ``activated_at`` fence the subscription's
    *lifetime* exactly like sensor churn fences a sensor's: the query
    exists on ``[activated_at, cancelled_at]`` (each side optional), so
    only instances *triggered* inside that closed interval are truth —
    the same priority-1 tie-break churn uses, where an event stamped at
    the exact transition instant still counts.  The activation side is
    what keeps a *resubmitted* query id from inheriting its previous
    incarnation's truth.  Only the trigger is fenced: a freshly placed
    query legitimately matches against earlier, still-valid events
    already in the stores (the matcher backfill), so members may
    predate the activation — exactly as the live network delivers.
    Members never postdate a trigger, so the cancellation side fences
    members and triggers alike.
    """
    method = default_oracle() if method is None else method
    truth = SubscriptionTruth(sub_id, operator)
    candidates = index.events_of(sorted(operator.sensors))
    if cancelled_at is not None:
        candidates = [e for e in candidates if e.timestamp <= cancelled_at]
    triggers = candidates
    if activated_at is not None:
        triggers = [e for e in candidates if e.timestamp >= activated_at]
    departures: list[tuple[float, str]] = []
    if churn is not None:
        departures = [
            (t, sensor_id)
            for t, sensor_id in churn.departures()
            if sensor_id in operator.sensors
        ]
    if departures:
        # The fence sweeps below assume monotone trigger times.
        candidates.sort(key=lambda e: (e.timestamp, e.key))
        if triggers is not candidates:
            triggers.sort(key=lambda e: (e.timestamp, e.key))
    next_departure = 0

    if method == "reference":
        provider = _FencedIndex(index) if departures else index
        for event in triggers:
            while (
                next_departure < len(departures)
                and departures[next_departure][0] <= event.timestamp
            ):
                when, sensor_id = departures[next_departure]
                provider.fence(sensor_id, when)
                next_departure += 1
            if operator.slot_for_event(event) is None:
                continue
            if not instance_exists(operator, provider, event):
                continue
            truth.triggers.add(event.key)
            if collect_participants:
                found = match_at_trigger(operator, provider, event.timestamp)
                if found:
                    for members in found.values():
                        truth.participants.update(m.key for m in members)
        return truth
    if method == "columnar":
        # A private offline engine per operator: fences and ingests of
        # one truth pass must never leak into another's shared lanes.
        matcher = ColumnarEngine.offline().matcher(operator)
    elif method == "engine":
        matcher = OperatorMatcher(operator, _OFFLINE_ENGINE)
    else:
        raise ValueError(f"unknown oracle method {method!r}")
    for event in candidates:
        matcher.ingest(event)
    # Equal-timestamp triggers share one window; memoise per timestamp
    # (the reference recomputes — same result, it is the slow path).
    # The memo stays sound under churn: fences are applied before the
    # first probe at a timestamp, and equal timestamps see equal fences.
    participants_at: dict[float, dict | None] = {}
    for event in triggers:
        while (
            next_departure < len(departures)
            and departures[next_departure][0] <= event.timestamp
        ):
            when, sensor_id = departures[next_departure]
            matcher.fence_sensor(sensor_id, when)
            next_departure += 1
        if operator.slot_for_event(event) is None:
            continue
        if not matcher.instance_exists(event):
            continue
        truth.triggers.add(event.key)
        if collect_participants:
            t_star = event.timestamp
            if t_star not in participants_at:
                participants_at[t_star] = matcher.match_at_trigger(t_star)
            found = participants_at[t_star]
            if found:
                for members in found.values():
                    truth.participants.update(m.key for m in members)
    return truth


def compute_truth(
    subscriptions: Iterable[Subscription],
    deployment: Deployment,
    events: Sequence[SimpleEvent],
    collect_participants: bool = True,
    method: str | None = None,
    churn=None,
    cancellations: Mapping[str, float] | None = None,
    activations: Mapping[str, float] | None = None,
    outages: Sequence[tuple[str, float, float]] | None = None,
) -> dict[str, SubscriptionTruth]:
    """Enumerate every true match instance of every subscription.

    Only events produced by a subscription's own sensors can trigger it,
    so the scan is proportional to (subscriptions x their group's
    events), not (subscriptions x all events).  ``method`` selects the
    truth pass (see module docstring); ``None`` defers to
    :func:`default_oracle`.  ``churn`` — the scenario's churn schedule,
    shifted to the same clock as ``events`` — fences departed sensors'
    history (see :func:`operator_truth`).  ``cancellations`` /
    ``activations`` map subscription ids to the simulation times their
    ``cancel()`` / ``submit()`` ran; the query's truth is fenced to
    that lifetime exactly like a departed sensor's history — which also
    keeps resubmitted ids from inheriting their previous incarnation's
    truth.

    ``outages`` — ``(sensor_id, down_from, down_until)`` fences from a
    fault plan's correlated broker outages (already on the ``events``
    clock) — excludes the publications a crashed host dropped: a reading
    stamped inside the half-open window ``(down_from, down_until]``
    never left the broker, so no approach could deliver it and the
    oracle never charges it.  Unlike churn there is no retraction flood,
    so the sensor's *earlier* events stay visible — the network still
    holds them, matching online behaviour.  Applied identically before
    both truth passes (the filter shapes the index both passes share).
    """
    method = default_oracle() if method is None else method
    if outages:
        windows: dict[str, list[tuple[float, float]]] = {}
        for sensor_id, down_from, down_until in outages:
            windows.setdefault(sensor_id, []).append((down_from, down_until))
        events = [
            e
            for e in events
            if not any(
                down_from < e.timestamp <= down_until
                for down_from, down_until in windows.get(e.sensor_id, ())
            )
        ]
    index = EventIndex(events)
    truths: dict[str, SubscriptionTruth] = {}
    for subscription in subscriptions:
        operator = oracle_operator(subscription, deployment)
        truths[subscription.sub_id] = operator_truth(
            operator,
            subscription.sub_id,
            index,
            collect_participants,
            method,
            churn=churn,
            cancelled_at=(
                cancellations.get(subscription.sub_id)
                if cancellations is not None
                else None
            ),
            activated_at=(
                activations.get(subscription.sub_id)
                if activations is not None
                else None
            ),
        )
    return truths
