"""End-user event recall (Fig. 12) and false-positive accounting.

Recall: the fraction of true match instances the user could observe
from what was actually delivered.  An instance ``(subscription,
trigger)`` counts as delivered iff the trigger event reached the user
*and* the delivered subset still contains a valid complex event
anchored at that trigger — i.e. the user can reconstruct the match from
what they received.  Deterministic approaches measure 1.0 by
construction; Filter-Split-Forward trades a little recall for traffic
through the probabilistic set filter's false positives.

False positives (multi-join baseline): delivered events that take part
in no true instance of that subscription — pure extra traffic from the
binary-join approximation.

The reconstruction is the *user node's final local check* replayed over
the delivered subset; its ``delta_l`` phase routes through the
grid-pruned :func:`repro.matching.spatial.grid_instance_exists` (the
same pruning the engine and the oracle already use) instead of the
reference's all-pairs scan — identical decisions, machine-checked by
``tests/test_spatial_final_check.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..matching.spatial import grid_instance_exists as instance_exists
from ..network.delivery import DeliveryLog
from .oracle import SubscriptionTruth


@dataclass(frozen=True, slots=True)
class RecallReport:
    """Aggregated over all subscriptions of one run."""

    true_instances: int
    delivered_instances: int
    delivered_events: int
    false_positive_events: int

    @property
    def recall(self) -> float:
        """1.0 when there was nothing to deliver (vacuous success)."""
        if self.true_instances == 0:
            return 1.0
        return self.delivered_instances / self.true_instances

    @property
    def false_positive_rate(self) -> float:
        """Share of delivered events that belong to no true match."""
        if self.delivered_events == 0:
            return 0.0
        return self.false_positive_events / self.delivered_events


def measure_recall(
    truths: Mapping[str, SubscriptionTruth],
    delivery: DeliveryLog,
) -> RecallReport:
    """Compare delivered events against the oracle's instances."""
    true_instances = 0
    delivered_instances = 0
    delivered_events = 0
    false_positives = 0
    for sub_id, truth in truths.items():
        delivered = delivery.delivered(sub_id)
        delivered_events += len(delivered)
        false_positives += sum(
            1 for key in delivered if key not in truth.participants
        )
        if not truth.triggers:
            continue
        true_instances += len(truth.triggers)
        if not delivered:
            continue
        view = delivery.view(sub_id)
        for trigger_key in truth.triggers:
            trigger = delivered.get(trigger_key)
            if trigger is None:
                continue
            if instance_exists(truth.operator, view, trigger):
                delivered_instances += 1
    return RecallReport(
        true_instances, delivered_instances, delivered_events, false_positives
    )


def per_subscription_recall(
    truths: Mapping[str, SubscriptionTruth],
    delivery: DeliveryLog,
) -> dict[str, float]:
    """Recall broken down per subscription (diagnostics/tests)."""
    out: dict[str, float] = {}
    for sub_id, truth in truths.items():
        if not truth.triggers:
            out[sub_id] = 1.0
            continue
        delivered = delivery.delivered(sub_id)
        view = delivery.view(sub_id)
        hit = 0
        for trigger_key in truth.triggers:
            trigger = delivered.get(trigger_key)
            if trigger is not None and instance_exists(truth.operator, view, trigger):
                hit += 1
        out[sub_id] = hit / len(truth.triggers)
    return out
