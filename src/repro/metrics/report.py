"""Textual rendering of experiment results — the "rows/series the paper
reports" in plain monospace, suitable for bench output and
EXPERIMENTS.md."""

from __future__ import annotations

from typing import Mapping, Sequence


def render_series_table(
    title: str,
    x_label: str,
    xs: Sequence[int],
    series: Mapping[str, Sequence[float]],
    value_format: str = "{:.0f}",
) -> str:
    """One figure as a table: rows = approaches, columns = x values."""
    header = [x_label] + [str(x) for x in xs]
    rows: list[list[str]] = [header]
    for name, values in series.items():
        rows.append([name] + [value_format.format(v) for v in values])
    widths = [
        max(len(rows[r][c]) for r in range(len(rows))) for c in range(len(header))
    ]
    lines = [title, "=" * len(title)]
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(w) if j else cell.ljust(w)
                      for j, (cell, w) in enumerate(zip(row, widths)))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def traffic_accounting(results: Sequence[object]) -> dict[str, int]:
    """Total data units per kind over one approach's series of results.

    Works on any sequence of :class:`~repro.experiments.runner.RunResult`
    (duck-typed, so the metrics layer stays import-light).  The
    advertisement total deliberately **includes** churn-time retraction
    and re-flood traffic (``reflood_load``) on top of the setup flood:
    under churn the advertisement channel is live for the whole run, and
    accounting that only looked at setup would silently undercount it.
    """
    subscription = sum(r.subscription_load for r in results)
    event = sum(r.event_load for r in results)
    setup_ads = sum(r.advertisement_load for r in results)
    reflood = sum(getattr(r, "reflood_load", 0) for r in results)
    return {
        "subscription_units": subscription,
        "event_units": event,
        "advertisement_units": setup_ads + reflood,
        "reflood_units": reflood,
        "total_units": subscription + event + setup_ads + reflood,
    }


def render_traffic_accounting(
    title: str, per_approach: Mapping[str, Sequence[object]]
) -> str:
    """Per-approach unit totals (one row each), re-flood included."""
    kinds = ("subscription", "event", "advertisement", "reflood", "total")
    header = ["approach"] + [f"{kind} units" for kind in kinds]
    rows: list[list[str]] = [header]
    for name, results in per_approach.items():
        totals = traffic_accounting(results)
        rows.append([name] + [str(totals[f"{kind}_units"]) for kind in kinds])
    widths = [
        max(len(row[c]) for row in rows) for c in range(len(header))
    ]
    lines = [title, "=" * len(title)]
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(
                cell.rjust(w) if j else cell.ljust(w)
                for j, (cell, w) in enumerate(zip(row, widths))
            )
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def improvement_over(
    ours: Sequence[float], theirs: Sequence[float]
) -> list[float]:
    """Per-point relative improvement of `ours` vs `theirs` (positive =
    ours lower/better), as percentages."""
    out = []
    for a, b in zip(ours, theirs):
        out.append(0.0 if b == 0 else (b - a) / b * 100.0)
    return out


def summarize_improvement(ours: Sequence[float], theirs: Sequence[float]) -> str:
    imps = improvement_over(ours, theirs)
    if not imps:
        return "n/a"
    return f"{min(imps):.1f}% .. {max(imps):.1f}% (mean {sum(imps)/len(imps):.1f}%)"
