"""Textual rendering of experiment results — the "rows/series the paper
reports" in plain monospace, suitable for bench output and
EXPERIMENTS.md."""

from __future__ import annotations

from typing import Mapping, Sequence


def render_series_table(
    title: str,
    x_label: str,
    xs: Sequence[int],
    series: Mapping[str, Sequence[float]],
    value_format: str = "{:.0f}",
) -> str:
    """One figure as a table: rows = approaches, columns = x values."""
    header = [x_label] + [str(x) for x in xs]
    rows: list[list[str]] = [header]
    for name, values in series.items():
        rows.append([name] + [value_format.format(v) for v in values])
    widths = [
        max(len(rows[r][c]) for r in range(len(rows))) for c in range(len(header))
    ]
    lines = [title, "=" * len(title)]
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(w) if j else cell.ljust(w)
                      for j, (cell, w) in enumerate(zip(row, widths)))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def improvement_over(
    ours: Sequence[float], theirs: Sequence[float]
) -> list[float]:
    """Per-point relative improvement of `ours` vs `theirs` (positive =
    ours lower/better), as percentages."""
    out = []
    for a, b in zip(ours, theirs):
        out.append(0.0 if b == 0 else (b - a) / b * 100.0)
    return out


def summarize_improvement(ours: Sequence[float], theirs: Sequence[float]) -> str:
    imps = improvement_over(ours, theirs)
    if not imps:
        return "n/a"
    return f"{min(imps):.1f}% .. {max(imps):.1f}% (mean {sum(imps)/len(imps):.1f}%)"
