"""The publish/subscribe data model of Section IV-A.

Everything the five evaluated systems share: intervals, locations,
attribute types, events, advertisements, filters, subscriptions,
correlation operators and the complex-event matching semantics.
"""

from .advertisements import Advertisement, AdvertisementTable
from .attributes import (
    AMBIENT_TEMPERATURE,
    AttributeRegistry,
    AttributeType,
    RELATIVE_HUMIDITY,
    SENSORSCOPE_ATTRIBUTES,
    SURFACE_TEMPERATURE,
    WIND_DIRECTION,
    WIND_SPEED,
    sensorscope_registry,
)
from .events import ComplexEvent, EventKey, MatchInstance, SimpleEvent
from .filters import AbstractFilter, IdentifiedFilter, SimpleFilter
from .intervals import (
    EMPTY_INTERVAL,
    FULL_INTERVAL,
    Interval,
    merge_intervals,
    point,
    subtract,
    union_covers,
)
from .locations import (
    CircleRegion,
    EVERYWHERE,
    EverywhereRegion,
    Location,
    RectRegion,
    Region,
    SiteLocation,
    SiteRegion,
    UnionRegion,
    bounding_rect,
    spatial_span,
)
from .matching import (
    build_complex_events,
    complex_event_matches,
    instance_exists,
    match_at_trigger,
    matches_involving,
    window_candidates,
)
from .operators import (
    CorrelationOperator,
    Slot,
    operator_from_abstract,
    operator_from_identified,
    root_operator,
)
from .subscriptions import (
    AbstractSubscription,
    IdentifiedSubscription,
    Subscription,
    UNBOUNDED,
)

__all__ = [
    "AMBIENT_TEMPERATURE",
    "AbstractFilter",
    "AbstractSubscription",
    "Advertisement",
    "AdvertisementTable",
    "AttributeRegistry",
    "AttributeType",
    "CircleRegion",
    "ComplexEvent",
    "CorrelationOperator",
    "EMPTY_INTERVAL",
    "EVERYWHERE",
    "EventKey",
    "EverywhereRegion",
    "FULL_INTERVAL",
    "IdentifiedFilter",
    "IdentifiedSubscription",
    "Interval",
    "Location",
    "MatchInstance",
    "RELATIVE_HUMIDITY",
    "RectRegion",
    "Region",
    "SENSORSCOPE_ATTRIBUTES",
    "SURFACE_TEMPERATURE",
    "SimpleEvent",
    "SimpleFilter",
    "SiteLocation",
    "SiteRegion",
    "Slot",
    "Subscription",
    "UNBOUNDED",
    "UnionRegion",
    "WIND_DIRECTION",
    "WIND_SPEED",
    "bounding_rect",
    "build_complex_events",
    "complex_event_matches",
    "instance_exists",
    "match_at_trigger",
    "matches_involving",
    "merge_intervals",
    "operator_from_abstract",
    "operator_from_identified",
    "point",
    "root_operator",
    "sensorscope_registry",
    "spatial_span",
    "subtract",
    "union_covers",
    "window_candidates",
]
