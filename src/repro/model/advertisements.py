"""Data-source advertisements.

Section IV-A: a sensor ``d`` makes its presence known by producing a
*data source advertisement* ``DSA_d = (a_d, p_d)``.  Advertisements are
flooded through the acyclic network (Algorithm 1) and stored per
neighbour, so that subscriptions can deterministically follow the reverse
advertisement path toward matching sensors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from .locations import Location, Region


@dataclass(frozen=True, slots=True)
class Advertisement:
    """``DSA_d = (a_d, p_d)`` plus the sensor's id for identified routing."""

    sensor_id: str
    attribute: str
    location: Location

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"DSA({self.sensor_id}:{self.attribute}@{self.location})"


class AdvertisementTable:
    """Per-neighbour advertisement store of one processing node.

    Mirrors Figure 2 of the paper: a node keeps one ``DSA_m`` structure
    for each neighbour ``m`` plus ``DSA_local`` for attached sensors.
    Lookups answer the two questions subscription propagation asks:

    * which neighbour leads to sensor ``d`` (reverse advertisement path);
    * which sensors of attribute ``a`` inside region ``L`` exist at all
      (resolution of abstract subscriptions, and the "absent sources"
      check of Algorithm 3).
    """

    LOCAL = "__local__"

    def __init__(self) -> None:
        self._by_origin: dict[str, dict[str, Advertisement]] = {}
        self._next_hop: dict[str, str] = {}

    def add(self, origin: str, advertisement: Advertisement) -> bool:
        """Store an advertisement received from ``origin``.

        Returns False when the same sensor was already known (the flood
        then stops — in an acyclic network this only happens for a
        sensor re-advertising, not for loops).
        """
        table = self._by_origin.setdefault(origin, {})
        if advertisement.sensor_id in self._next_hop:
            already = table.get(advertisement.sensor_id)
            if already == advertisement:
                return False
        table[advertisement.sensor_id] = advertisement
        self._next_hop[advertisement.sensor_id] = origin
        return True

    def add_local(self, advertisement: Advertisement) -> bool:
        """Store an advertisement of a locally attached sensor."""
        return self.add(self.LOCAL, advertisement)

    def remove(self, sensor_id: str) -> bool:
        """Forget a retracted sensor; False when it was never known.

        The churn counterpart of :meth:`add`: a retraction flood removes
        the reverse-path entry, so a later re-join advertisement is
        *new* again and re-floods through the whole network (the flood
        of :meth:`add` would otherwise stop at the first node that still
        remembered the sensor).
        """
        origin = self._next_hop.pop(sensor_id, None)
        if origin is None:
            return False
        self._by_origin[origin].pop(sensor_id, None)
        return True

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def next_hop(self, sensor_id: str) -> str | None:
        """Neighbour the advertisement of ``sensor_id`` arrived from.

        ``LOCAL`` for attached sensors, None for unknown sensors.
        """
        return self._next_hop.get(sensor_id)

    def knows(self, sensor_id: str) -> bool:
        return sensor_id in self._next_hop

    def get(self, sensor_id: str) -> Advertisement | None:
        origin = self._next_hop.get(sensor_id)
        if origin is None:
            return None
        return self._by_origin[origin][sensor_id]

    def from_origin(self, origin: str) -> Mapping[str, Advertisement]:
        """All advertisements received from one neighbour (``DSA_m``)."""
        return self._by_origin.get(origin, {})

    def origins(self) -> Iterator[str]:
        return iter(self._by_origin)

    def all(self) -> Iterator[Advertisement]:
        for table in self._by_origin.values():
            yield from table.values()

    def sensors_matching(
        self, attribute: str, region: Region | None = None
    ) -> list[Advertisement]:
        """Advertised sensors of ``attribute`` (optionally within ``region``).

        This is the lookup that resolves an abstract filter ``F_{A,L}``
        into the concrete sensors it applies to.
        """
        hits = [ad for ad in self.all() if ad.attribute == attribute]
        if region is not None:
            hits = [ad for ad in hits if region.contains(ad.location)]
        hits.sort(key=lambda ad: ad.sensor_id)
        return hits

    def partition_by_origin(
        self, sensor_ids: Iterable[str]
    ) -> dict[str, list[str]]:
        """Group sensor ids by the neighbour their advertisements came from.

        The split step of Algorithm 3 forwards, to each neighbour, the
        projection of a subscription onto exactly this partition class.
        Unknown sensors are omitted (the caller decides whether that is
        an error or an "absent sources" drop).
        """
        partition: dict[str, list[str]] = {}
        for sensor_id in sensor_ids:
            origin = self._next_hop.get(sensor_id)
            if origin is None:
                continue
            partition.setdefault(origin, []).append(sensor_id)
        for group in partition.values():
            group.sort()
        return partition

    def __len__(self) -> int:
        return len(self._next_hop)
