"""Attribute types and value domains.

Section IV-A models each sensor as producing data of a fixed *attribute
type* ``a_d`` from a set ``A``, with values from a domain ``D_a``.  The
experiments use the five SensorScope measurement types.  The registry
below carries realistic value domains and units for those, and supports
user-defined attributes for other deployments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from .intervals import Interval


@dataclass(frozen=True, slots=True)
class AttributeType:
    """A sensor measurement type with its value domain.

    ``name`` is the identity (two attribute types are interchangeable iff
    their names match); ``domain`` bounds every legal measurement and is
    used to clip synthetic streams and generated filter ranges; ``unit``
    is informational.
    """

    name: str
    domain: Interval
    unit: str = ""

    def __post_init__(self) -> None:
        if self.domain.is_empty:
            raise ValueError(f"attribute {self.name!r} has an empty domain")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class AttributeRegistry(Mapping[str, AttributeType]):
    """Name-indexed collection of attribute types.

    Behaves as an immutable mapping after construction; the workload and
    topology builders look attributes up by name.
    """

    def __init__(self, attributes: list[AttributeType] | None = None) -> None:
        self._by_name: dict[str, AttributeType] = {}
        for attribute in attributes or []:
            self.register(attribute)

    def register(self, attribute: AttributeType) -> AttributeType:
        """Add an attribute type; re-registering an identical one is a no-op."""
        existing = self._by_name.get(attribute.name)
        if existing is not None:
            if existing != attribute:
                raise ValueError(
                    f"attribute {attribute.name!r} already registered "
                    f"with a different definition"
                )
            return existing
        self._by_name[attribute.name] = attribute
        return attribute

    def __getitem__(self, name: str) -> AttributeType:
        return self._by_name[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)

    def names(self) -> tuple[str, ...]:
        """Registered attribute names in registration order."""
        return tuple(self._by_name)


# ---------------------------------------------------------------------------
# The five SensorScope / Grand St. Bernard measurement types (Section VI-A)
# ---------------------------------------------------------------------------
AMBIENT_TEMPERATURE = AttributeType(
    "ambient_temperature", Interval(-40.0, 40.0), unit="degC"
)
SURFACE_TEMPERATURE = AttributeType(
    "surface_temperature", Interval(-45.0, 55.0), unit="degC"
)
RELATIVE_HUMIDITY = AttributeType("relative_humidity", Interval(0.0, 100.0), unit="%")
WIND_SPEED = AttributeType("wind_speed", Interval(0.0, 40.0), unit="m/s")
WIND_DIRECTION = AttributeType("wind_direction", Interval(0.0, 360.0), unit="deg")

SENSORSCOPE_ATTRIBUTES: tuple[AttributeType, ...] = (
    AMBIENT_TEMPERATURE,
    SURFACE_TEMPERATURE,
    RELATIVE_HUMIDITY,
    WIND_SPEED,
    WIND_DIRECTION,
)


def sensorscope_registry() -> AttributeRegistry:
    """Fresh registry pre-loaded with the five SensorScope attributes."""
    return AttributeRegistry(list(SENSORSCOPE_ATTRIBUTES))
