"""Events — sensor readings and their correlated combinations.

Section IV-A: a measurement of sensor ``d`` publishes an event
``e_d = (a_d, p_d, v, t)``.  Complex events are sets of simple events, one
per sensor (identified subscriptions) or per attribute type (abstract
subscriptions), whose timestamps all lie within ``delta_t`` of the
maximum timestamp.

Every simple event additionally carries the producing sensor's id and a
per-sensor sequence number; ``(sensor_id, seq)`` is the identity used by
the per-link forwarding flags of the publish/subscribe event propagation
(Algorithm 5 sends no data unit twice over the same link).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .locations import Location, spatial_span

EventKey = tuple[str, int]
"""Network-wide identity of a simple event: ``(sensor_id, seq)``."""


@dataclass(frozen=True, slots=True)
class SimpleEvent:
    """One sensor reading ``(a_d, p_d, v, t)`` plus provenance."""

    sensor_id: str
    attribute: str
    location: Location
    value: float
    timestamp: float
    seq: int = 0

    def __post_init__(self) -> None:
        # Pin timestamps (and values) to float so every comparison —
        # bisect probes against ``(t, seq, …)`` tuples, numpy float64
        # columns, jittered arrival times from LinkFault — happens in
        # one dtype.  ``float64 == python float`` is exact IEEE-754, but
        # a stray ``int`` timestamp would make tuple comparisons and
        # searchsorted disagree on mixed-type ties.
        if type(self.timestamp) is not float:
            object.__setattr__(self, "timestamp", float(self.timestamp))
        if type(self.value) is not float:
            object.__setattr__(self, "value", float(self.value))

    @property
    def key(self) -> EventKey:
        """Identity used for duplicate suppression on links."""
        return (self.sensor_id, self.seq)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"e({self.sensor_id}:{self.attribute}={self.value:g} "
            f"@t={self.timestamp:g})"
        )


@dataclass(frozen=True)
class ComplexEvent:
    """A correlated combination of simple events.

    Construction sorts the members deterministically; the matching rules
    (completeness, per-member filter match, timestamp and spatial
    correlation) live in :mod:`repro.model.matching` — a ``ComplexEvent``
    is just the value object handed to subscribers.
    """

    events: tuple[SimpleEvent, ...]

    def __init__(self, events: Iterable[SimpleEvent]) -> None:
        ordered = tuple(
            sorted(events, key=lambda e: (e.timestamp, e.sensor_id, e.seq))
        )
        if not ordered:
            raise ValueError("a complex event needs at least one simple event")
        object.__setattr__(self, "events", ordered)

    @property
    def timestamp(self) -> float:
        """The event time ``t = max_i t_i`` (matching condition 3)."""
        return max(e.timestamp for e in self.events)

    @property
    def temporal_spread(self) -> float:
        """``t - min_i t_i``; below ``delta_t`` for any valid match."""
        times = [e.timestamp for e in self.events]
        return max(times) - min(times)

    @property
    def spatial_spread(self) -> float:
        """Largest pairwise distance between member locations."""
        return spatial_span([e.location for e in self.events])

    @property
    def sensor_ids(self) -> frozenset[str]:
        return frozenset(e.sensor_id for e in self.events)

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset(e.attribute for e in self.events)

    @property
    def trigger(self) -> SimpleEvent:
        """The member realising the maximum timestamp.

        Ties break deterministically on ``(sensor_id, seq)``; the trigger
        identifies a match *instance* for the recall metric.
        """
        return max(self.events, key=lambda e: (e.timestamp, e.sensor_id, e.seq))

    def keys(self) -> frozenset[EventKey]:
        return frozenset(e.key for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[SimpleEvent]:
        return iter(self.events)

    def __hash__(self) -> int:
        return hash(self.events)


@dataclass(frozen=True, slots=True)
class MatchInstance:
    """A delivered/true match, identified by subscription and trigger.

    Two complex events with the same trigger for the same subscription
    are the same *instance*: the paper counts each satisfied condition
    once, and the recall metric (Fig. 12) compares delivered instances
    against the oracle's.
    """

    subscription_id: str
    trigger: EventKey

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"match({self.subscription_id} <- {self.trigger})"
