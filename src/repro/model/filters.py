"""Filters — range conditions on sensor events (Section IV-A).

The paper defines three filter flavours:

* a **simple filter** ``f_a``: a range condition ``min <= a <= max`` (or
  ``a = v``) on one attribute type;
* a **simple filter with identification** ``f_d``: a simple filter pinned
  to one concrete sensor via its location/id;
* an **abstract filter** ``F_{A,L}``: per-attribute simple filters
  constrained to sensors inside a region ``L``.

Complex filters with identification (``F_D``) are represented at the
subscription level as mappings from sensor id to identified filter.
"""

from __future__ import annotations

from dataclasses import dataclass

from .advertisements import Advertisement
from .events import SimpleEvent
from .intervals import Interval, point
from .locations import Region


@dataclass(frozen=True, slots=True)
class SimpleFilter:
    """``min <= a <= max`` over one attribute type."""

    attribute: str
    interval: Interval

    def __post_init__(self) -> None:
        if self.interval.is_empty:
            raise ValueError(
                f"filter on {self.attribute!r} has an empty range; "
                "unsatisfiable filters must be rejected at creation"
            )

    @classmethod
    def equals(cls, attribute: str, value: float) -> "SimpleFilter":
        """The ``a = v`` form of a simple filter."""
        return cls(attribute, point(value))

    def matches_value(self, value: float) -> bool:
        return self.interval.contains(value)

    def matches_event(self, event: SimpleEvent) -> bool:
        """Attribute-typed value test (no identity/region constraint)."""
        return event.attribute == self.attribute and self.interval.contains(
            event.value
        )

    def covers(self, other: "SimpleFilter") -> bool:
        """Whether every value accepted by ``other`` is accepted here."""
        return self.attribute == other.attribute and self.interval.contains_interval(
            other.interval
        )

    def intersect(self, other: "SimpleFilter") -> "SimpleFilter | None":
        """Conjunction of two filters on the same attribute (None if empty)."""
        if self.attribute != other.attribute:
            raise ValueError("cannot intersect filters on different attributes")
        joint = self.interval.intersect(other.interval)
        if joint.is_empty:
            return None
        return SimpleFilter(self.attribute, joint)

    def widen(self, amount: float) -> "SimpleFilter":
        """Coarsened filter (Section VI-F recall mitigation)."""
        return SimpleFilter(self.attribute, self.interval.widen(amount))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.interval.lo:g}<={self.attribute}<={self.interval.hi:g}"


@dataclass(frozen=True, slots=True)
class IdentifiedFilter:
    """``(min <= a_d <= max) AND (location(d) = p_d)`` — pinned to sensor d."""

    sensor_id: str
    condition: SimpleFilter

    @property
    def attribute(self) -> str:
        return self.condition.attribute

    @property
    def interval(self) -> Interval:
        return self.condition.interval

    def matches_event(self, event: SimpleEvent) -> bool:
        return event.sensor_id == self.sensor_id and self.condition.matches_event(
            event
        )

    def covers(self, other: "IdentifiedFilter") -> bool:
        return self.sensor_id == other.sensor_id and self.condition.covers(
            other.condition
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.condition}@{self.sensor_id}"


@dataclass(frozen=True, slots=True)
class AbstractFilter:
    """One clause ``f_a AND p_d in L`` of an abstract filter ``F_{A,L}``."""

    condition: SimpleFilter
    region: Region

    @property
    def attribute(self) -> str:
        return self.condition.attribute

    def matches_event(self, event: SimpleEvent) -> bool:
        return self.condition.matches_event(event) and self.region.contains(
            event.location
        )

    def applies_to(self, advertisement: Advertisement) -> bool:
        """Whether an advertised sensor falls under this clause."""
        return (
            advertisement.attribute == self.attribute
            and self.region.contains(advertisement.location)
        )

    def identify(self, advertisement: Advertisement) -> IdentifiedFilter:
        """Pin the clause to a concrete advertised sensor."""
        if not self.applies_to(advertisement):
            raise ValueError(
                f"{advertisement} does not satisfy abstract clause {self}"
            )
        return IdentifiedFilter(advertisement.sensor_id, self.condition)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.condition} in {self.region!r}"
