"""Closed-interval algebra used by filters, subscriptions and subsumption.

The paper expresses simple filters as range conditions ``min <= a <= max``
(Section IV-A).  Intervals are the one-dimensional building block of every
coverage and subsumption decision in the system, so this module keeps the
algebra small, explicit and total: every operation is defined for empty
intervals as well.

All intervals are treated as *closed* ``[lo, hi]``.  The paper's examples
use strict bounds (``50 < a < 80``); for real-valued sensor domains the
distinction has measure zero and no effect on any traffic metric, so we
standardise on closed bounds (documented deviation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed real interval ``[lo, hi]``.

    An interval with ``lo > hi`` is the canonical *empty* interval; use
    :data:`EMPTY_INTERVAL` rather than constructing new empty instances so
    equality checks stay trivial.
    """

    lo: float
    hi: float

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the interval contains no points."""
        return self.lo > self.hi

    @property
    def is_point(self) -> bool:
        """True when the interval is a single value (``a = v`` filters)."""
        return self.lo == self.hi

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the closed interval."""
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` is entirely inside this interval.

        The empty interval is contained in everything; nothing non-empty
        is contained in the empty interval.
        """
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point."""
        if self.is_empty or other.is_empty:
            return False
        return self.lo <= other.hi and other.lo <= self.hi

    # ------------------------------------------------------------------
    # constructive operations
    # ------------------------------------------------------------------
    def intersect(self, other: "Interval") -> "Interval":
        """The (possibly empty) intersection of the two intervals."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return EMPTY_INTERVAL
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def clamp(self, domain: "Interval") -> "Interval":
        """Alias of :meth:`intersect`, named for clipping to a domain."""
        return self.intersect(domain)

    def widen(self, amount: float) -> "Interval":
        """Grow the interval by ``amount`` on each side (coarsening).

        Used by the paper's Section VI-F mitigation: enlarging filter
        ranges to recover recall at the price of extra traffic.
        """
        if self.is_empty:
            return self
        if amount < 0:
            raise ValueError("widen() takes a non-negative amount")
        return Interval(self.lo - amount, self.hi + amount)

    # ------------------------------------------------------------------
    # measure & sampling
    # ------------------------------------------------------------------
    @property
    def length(self) -> float:
        """Lebesgue measure of the interval (0 for empty and points)."""
        if self.is_empty:
            return 0.0
        return self.hi - self.lo

    def sample(self, u: float) -> float:
        """Map ``u`` in [0, 1] onto a point of the interval.

        Point intervals always return their single value.  Raises on
        empty intervals — there is nothing to sample.
        """
        if self.is_empty:
            raise ValueError("cannot sample the empty interval")
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"sample coordinate {u!r} outside [0, 1]")
        return self.lo + u * (self.hi - self.lo)

    def relative_position(self, value: float) -> float:
        """Inverse of :meth:`sample` for non-degenerate intervals."""
        if self.is_empty or self.is_point:
            raise ValueError("relative_position needs a non-degenerate interval")
        return (value - self.lo) / (self.hi - self.lo)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_empty:
            return "[]"
        return f"[{self.lo:g}, {self.hi:g}]"


EMPTY_INTERVAL = Interval(1.0, 0.0)
FULL_INTERVAL = Interval(-math.inf, math.inf)


def point(value: float) -> Interval:
    """The degenerate interval ``[value, value]`` (``a = v`` filters)."""
    return Interval(value, value)


def union_covers(cover: Iterable[Interval], target: Interval) -> bool:
    """Exact 1-D test: does the union of ``cover`` contain ``target``?

    Sweep the target from left to right, extending the covered frontier
    with every interval that reaches it.  Runs in ``O(n log n)``.
    Used by the exact subsumption checker and as the base case of the
    recursive rectangle-cover test.
    """
    if target.is_empty:
        return True
    spans = sorted(
        (iv for iv in cover if iv.overlaps(target)), key=lambda iv: (iv.lo, -iv.hi)
    )
    if not spans:
        return False
    frontier = target.lo
    for iv in spans:
        if iv.lo > frontier:
            return False
        frontier = max(frontier, iv.hi)
        if frontier >= target.hi:
            return True
    return frontier >= target.hi


def subtract(target: Interval, hole: Interval) -> Iterator[Interval]:
    """Yield the (0, 1 or 2) non-empty pieces of ``target`` minus ``hole``.

    The pieces are closed intervals; boundary points shared with the hole
    are kept, which is harmless for the measure-based uses in this
    code base (exact cover tests treat a zero-length residue as covered).
    """
    if target.is_empty:
        return
    if hole.is_empty or not hole.overlaps(target):
        yield target
        return
    if target.lo < hole.lo:
        yield Interval(target.lo, hole.lo)
    if hole.hi < target.hi:
        yield Interval(hole.hi, target.hi)


def merge_intervals(intervals: Sequence[Interval]) -> list[Interval]:
    """Merge overlapping/adjacent intervals into a disjoint sorted list."""
    live = sorted((iv for iv in intervals if not iv.is_empty), key=lambda iv: iv.lo)
    merged: list[Interval] = []
    for iv in live:
        if merged and iv.lo <= merged[-1].hi:
            merged[-1] = merged[-1].hull(iv)
        else:
            merged.append(iv)
    return merged
