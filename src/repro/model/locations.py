"""Locations and regions — the spatial half of the paper's data model.

Section IV-A: every sensor has a location ``p_d`` from a location domain
(2-D or 3-D space, or a hierarchy).  Abstract subscriptions constrain
sensors to a region ``L`` and correlate events whose pairwise distance is
below the spatial correlation distance ``delta_l``.

We implement the 2-D Euclidean domain the experiments use, with
rectangular and circular regions plus finite unions, and a hierarchical
location domain (``SiteLocation``) mirroring the Swiss Experiment's
"field site > station > sensor" organisation mentioned in the paper's
introduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from .intervals import Interval


@dataclass(frozen=True, slots=True)
class Location:
    """A point in the 2-D Euclidean location domain."""

    x: float
    y: float

    def distance_to(self, other: "Location") -> float:
        """Euclidean distance between two locations."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x:g}, {self.y:g})"


def spatial_span(locations: Sequence[Location]) -> float:
    """Largest pairwise distance among ``locations``.

    This is the quantity compared against ``delta_l`` when matching a
    complex event against an abstract subscription
    (``|max(p_i - p_j)| < delta_l`` in the paper).  Empty and singleton
    inputs span zero.
    """
    n = len(locations)
    if n < 2:
        return 0.0
    return max(
        locations[i].distance_to(locations[j])
        for i in range(n)
        for j in range(i + 1, n)
    )


class Region:
    """Abstract region of the location domain (``L`` in the paper).

    Concrete regions only need containment; the topology builder and the
    workload generator construct them, the matching code queries them.
    """

    def contains(self, location: Location) -> bool:
        """Whether ``location`` lies in the region."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class RectRegion(Region):
    """Axis-aligned rectangle — the workhorse region for experiments."""

    x_range: Interval
    y_range: Interval

    def contains(self, location: Location) -> bool:
        return self.x_range.contains(location.x) and self.y_range.contains(location.y)

    def contains_region(self, other: "RectRegion") -> bool:
        """Rectangle-in-rectangle containment (used for region coverage)."""
        return self.x_range.contains_interval(
            other.x_range
        ) and self.y_range.contains_interval(other.y_range)

    @classmethod
    def around(cls, center: Location, half_width: float) -> "RectRegion":
        """Square region centred on ``center`` with the given half width."""
        if half_width < 0:
            raise ValueError("half_width must be non-negative")
        return cls(
            Interval(center.x - half_width, center.x + half_width),
            Interval(center.y - half_width, center.y + half_width),
        )


@dataclass(frozen=True, slots=True)
class CircleRegion(Region):
    """Disc region — natural for "sensors within r of a point" queries."""

    center: Location
    radius: float

    def contains(self, location: Location) -> bool:
        return self.center.distance_to(location) <= self.radius


@dataclass(frozen=True, slots=True)
class UnionRegion(Region):
    """Finite union of regions (the paper's "union of such regions")."""

    parts: tuple[Region, ...]

    def contains(self, location: Location) -> bool:
        return any(part.contains(location) for part in self.parts)


@dataclass(frozen=True, slots=True)
class EverywhereRegion(Region):
    """The whole location domain; used when a query has no spatial bound."""

    def contains(self, location: Location) -> bool:
        return True


EVERYWHERE = EverywhereRegion()


@dataclass(frozen=True, slots=True)
class SiteLocation:
    """Hierarchical location ``site/station/sensor`` (Swiss Experiment).

    The paper notes the location domain may be "a sub-location in a
    hierarchically organized location domain"; containment is path-prefix
    containment.
    """

    path: tuple[str, ...]

    def is_within(self, ancestor: "SiteLocation") -> bool:
        """Whether this location lies under ``ancestor`` in the hierarchy."""
        if len(ancestor.path) > len(self.path):
            return False
        return self.path[: len(ancestor.path)] == ancestor.path

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "/".join(self.path)


@dataclass(frozen=True, slots=True)
class SiteRegion(Region):
    """Region of the hierarchical domain: everything under one prefix."""

    root: SiteLocation

    def contains(self, location: Location) -> bool:  # pragma: no cover
        raise TypeError("SiteRegion contains SiteLocations, not 2-D points")

    def contains_site(self, location: SiteLocation) -> bool:
        return location.is_within(self.root)


def bounding_rect(locations: Iterable[Location], margin: float = 0.0) -> RectRegion:
    """Smallest axis-aligned rectangle containing ``locations``.

    Convenience for building abstract-subscription regions around a
    group of stations.
    """
    pts = list(locations)
    if not pts:
        raise ValueError("bounding_rect needs at least one location")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return RectRegion(
        Interval(min(xs) - margin, max(xs) + margin),
        Interval(min(ys) - margin, max(ys) + margin),
    )
