"""Complex-event matching semantics (Section IV-A).

A complex event ``E = {e_1 .. e_n}`` matches a subscription ``s`` at time
``t`` iff

1. completeness — one simple event per sensor (identified) or per
   attribute type (abstract);
2. every member matches ``s``'s filter for its position;
3. ``t = max_i t_i``;
4. ``|t - t_i| < delta_t`` for all members;
5. (abstract only) pairwise location spread below ``delta_l``.

The same semantics drive three consumers:

* the offline **oracle** that enumerates ground-truth match instances
  for the recall metric (Fig. 12);
* the **node-level** window matching of Algorithm 5, phrased over
  :class:`~repro.model.operators.CorrelationOperator` so it applies to
  whole subscriptions and to split fragments alike;
* the **final local check** a user's node performs before delivering.

Node matching is anchored on *candidate triggers*: any valid match fits
in the half-open window ``(t - delta_t, t]`` of its maximum-timestamp
member, so scanning the windows of all plausible maxima is exact.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Mapping, Protocol, Sequence

from .events import ComplexEvent, SimpleEvent
from .operators import CorrelationOperator, Slot
from .subscriptions import (
    AbstractSubscription,
    IdentifiedSubscription,
    Subscription,
)


class SlotEventProvider(Protocol):
    """Timeline lookup the matcher needs from an event store."""

    def events_for_sensor(
        self, sensor_id: str, after: float, until: float
    ) -> Sequence[SimpleEvent]:
        """Events of ``sensor_id`` with ``after < timestamp <= until``."""
        ...


# ---------------------------------------------------------------------------
# paper-definition matching of a materialised complex event
# ---------------------------------------------------------------------------
def complex_event_matches(subscription: Subscription, event: ComplexEvent) -> bool:
    """The verbatim Section IV-A definition, for a concrete ``E``."""
    t = event.timestamp
    if any(t - e.timestamp >= subscription.delta_t for e in event.events):
        return False
    if isinstance(subscription, IdentifiedSubscription):
        wanted = subscription.sensor_ids
        seen = [e.sensor_id for e in event.events]
        if len(seen) != len(wanted) or set(seen) != wanted:
            return False
        return all(subscription.matches_simple(e) for e in event.events)
    wanted_attrs = subscription.attributes
    seen_attrs = [e.attribute for e in event.events]
    if len(seen_attrs) != len(wanted_attrs) or set(seen_attrs) != wanted_attrs:
        return False
    if not all(subscription.matches_simple(e) for e in event.events):
        return False
    return event.spatial_spread < subscription.delta_l


# ---------------------------------------------------------------------------
# operator-level window matching
# ---------------------------------------------------------------------------
def window_candidates(
    operator: CorrelationOperator,
    provider: SlotEventProvider,
    trigger_time: float,
) -> dict[str, list[SimpleEvent]]:
    """Per-slot filter-matching events in ``(trigger_time - dt, trigger_time]``.

    Slots with no candidate map to empty lists; the caller decides
    whether the window is complete.
    """
    after = trigger_time - operator.delta_t
    out: dict[str, list[SimpleEvent]] = {}
    for slot in operator.slots:
        hits: list[SimpleEvent] = []
        for sensor_id in sorted(slot.sensors):
            for event in provider.events_for_sensor(sensor_id, after, trigger_time):
                if slot.accepts(event):
                    hits.append(event)
        out[slot.slot_id] = hits
    return out


def _combination_exists(
    slot_candidates: Sequence[Sequence[SimpleEvent]], delta_l: float
) -> bool:
    """Whether one event per slot can be chosen with spread < delta_l."""
    chosen: list[SimpleEvent] = []

    def extend(i: int) -> bool:
        if i == len(slot_candidates):
            return True
        for candidate in slot_candidates[i]:
            if all(
                candidate.location.distance_to(prev.location) < delta_l
                for prev in chosen
            ):
                chosen.append(candidate)
                if extend(i + 1):
                    chosen.pop()
                    return True
                chosen.pop()
        return False

    return extend(0)


def _participating(
    slot_candidates: Mapping[str, list[SimpleEvent]], delta_l: float
) -> dict[str, list[SimpleEvent]] | None:
    """Candidates that take part in at least one valid combination.

    With unbounded ``delta_l`` every candidate participates (any
    combination is valid once every slot is filled).  With a finite
    ``delta_l`` an event participates iff fixing it still leaves a valid
    combination of the other slots.
    """
    ordered = sorted(slot_candidates)
    lists = [slot_candidates[sid] for sid in ordered]
    if any(not lst for lst in lists):
        return None
    if math.isinf(delta_l):
        return {sid: list(slot_candidates[sid]) for sid in ordered}
    if not _combination_exists(lists, delta_l):
        return None
    result: dict[str, list[SimpleEvent]] = {sid: [] for sid in ordered}
    for i, sid in enumerate(ordered):
        others = lists[:i] + lists[i + 1 :]
        for candidate in lists[i]:
            near = [
                [
                    e
                    for e in lst
                    if e.location.distance_to(candidate.location) < delta_l
                ]
                for lst in others
            ]
            if _combination_exists(near, delta_l):
                result[sid].append(candidate)
    return result


def match_at_trigger(
    operator: CorrelationOperator,
    provider: SlotEventProvider,
    trigger_time: float,
) -> dict[str, list[SimpleEvent]] | None:
    """Participants of matches whose maximum timestamp is ``trigger_time``.

    None when the window is incomplete (some slot empty) or, for finite
    ``delta_l``, no spatially valid combination exists.
    """
    candidates = window_candidates(operator, provider, trigger_time)
    return _participating(candidates, operator.delta_l)


def matches_involving(
    operator: CorrelationOperator,
    provider: SlotEventProvider,
    event: SimpleEvent,
) -> dict[str, list[SimpleEvent]]:
    """All participants of matches the newly arrived ``event`` takes part in.

    Scans the candidate-trigger windows that can contain ``event``:
    ``event`` itself, and every already-stored filler with a timestamp in
    ``[event.timestamp, event.timestamp + delta_t)`` (network delays may
    deliver the true maximum before earlier-stamped members).  Returns
    the per-slot union of participants, empty when ``event`` matches
    nothing.
    """
    own_slot = operator.slot_for_event(event)
    if own_slot is None:
        return {}
    trigger_times: set[float] = {event.timestamp}
    horizon = event.timestamp + operator.delta_t
    for slot in operator.slots:
        for sensor_id in sorted(slot.sensors):
            for later in provider.events_for_sensor(
                sensor_id, event.timestamp, horizon
            ):
                # exclusive upper edge: |t* - t_event| < delta_t required
                if later.timestamp < horizon and slot.accepts(later):
                    trigger_times.add(later.timestamp)
    union: dict[str, dict] = {s.slot_id: {} for s in operator.slots}
    for t_star in sorted(trigger_times):
        found = match_at_trigger(operator, provider, t_star)
        if found is None:
            continue
        if not any(e.key == event.key for e in found.get(own_slot.slot_id, [])):
            continue
        for slot_id, events in found.items():
            bucket = union[slot_id]
            for e in events:
                bucket[e.key] = e
    if not any(union.values()):
        return {}
    return {
        slot_id: sorted(bucket.values(), key=lambda e: (e.timestamp, e.key))
        for slot_id, bucket in union.items()
        if bucket
    }


def instance_exists(
    operator: CorrelationOperator,
    provider: SlotEventProvider,
    trigger: SimpleEvent,
) -> bool:
    """Oracle primitive: does a match with maximum member ``trigger`` exist?

    Used to enumerate ground-truth instances for the recall metric: an
    instance is identified by (subscription, trigger event); it exists
    iff the trigger fills a slot and every slot has a filler inside the
    trigger-anchored window (with a spatially valid combination that
    includes the trigger when ``delta_l`` is finite).
    """
    own_slot = operator.slot_for_event(trigger)
    if own_slot is None:
        return False
    candidates = window_candidates(operator, provider, trigger.timestamp)
    if any(not lst for lst in candidates.values()):
        return False
    if math.isinf(operator.delta_l):
        return True
    lists = []
    for slot_id in sorted(candidates):
        if slot_id == own_slot.slot_id:
            lists.append([trigger])
        else:
            lists.append(
                [
                    e
                    for e in candidates[slot_id]
                    if e.location.distance_to(trigger.location) < operator.delta_l
                ]
            )
    return _combination_exists(lists, operator.delta_l)


def build_complex_events(
    participants: Mapping[str, Sequence[SimpleEvent]],
) -> ComplexEvent:
    """Pack per-slot participants into one deliverable complex event.

    When a slot holds several participants the earliest is chosen; the
    deliverable then satisfies completeness with exactly one member per
    slot.  (Users interested in every combination can re-expand from the
    per-slot participants; the traffic metrics only depend on the set of
    simple events forwarded, which is the participants' union.)
    """
    chosen = [
        min(events, key=lambda e: (e.timestamp, e.key))
        for events in participants.values()
        if events
    ]
    return ComplexEvent(chosen)
