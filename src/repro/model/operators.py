"""Correlation operators — the unit of subscription placement.

Section V-B: as subscriptions travel from the user toward the sensors
they are split, each time the matching advertisement paths diverge, into
*correlation operators*: (sub)sets of filters that still require
time-(and possibly space-)correlation of several streams.  An operator
over a single stream is a *simple operator*; the distributed multi-join
baseline additionally uses *binary joins* (a main stream sanctioned by a
filtering stream).

The representation below serves all five evaluated systems:

* each operator carries one :class:`Slot` per required stream — for
  identified subscriptions a slot is one sensor, for resolved abstract
  subscriptions a slot is one attribute type with the set of sensors
  inside the region that can fill it;
* provenance (root subscription id and subscriber node) sticks to every
  projection so result streams can be attributed end-to-end;
* coverage between operators with the same slot structure implements the
  pair-wise covering check, and the boxes handed to the probabilistic
  set filter are derived from the slot intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .events import SimpleEvent
from .intervals import Interval
from .subscriptions import (
    AbstractSubscription,
    IdentifiedSubscription,
    Subscription,
    UNBOUNDED,
)


@dataclass(frozen=True, slots=True)
class Slot:
    """One stream position of a correlation operator.

    ``slot_id`` is the correlation dimension (sensor id for identified
    subscriptions, attribute type for abstract ones); ``sensors`` are the
    concrete sensors whose events may fill the slot; ``attribute`` and
    ``interval`` give the value condition.
    """

    slot_id: str
    attribute: str
    interval: Interval
    sensors: frozenset[str]

    def accepts(self, event: SimpleEvent) -> bool:
        """Whether ``event`` can fill this slot."""
        return (
            event.sensor_id in self.sensors
            and event.attribute == self.attribute
            and self.interval.contains(event.value)
        )

    def covers(self, other: "Slot") -> bool:
        """Same stream position with a containing value range."""
        return (
            self.slot_id == other.slot_id
            and self.attribute == other.attribute
            and self.sensors == other.sensors
            and self.interval.contains_interval(other.interval)
        )

    def with_interval(self, interval: Interval) -> "Slot":
        return Slot(self.slot_id, self.attribute, interval, self.sensors)

    def with_sensors(self, sensors: frozenset[str]) -> "Slot":
        """Slot restricted to a sensor subset (projection onto a subtree)."""
        if not sensors:
            raise ValueError("a slot needs at least one sensor")
        return Slot(self.slot_id, self.attribute, self.interval, sensors)


@dataclass(frozen=True)
class CorrelationOperator:
    """A placed (fragment of a) subscription.

    Operators are value objects: projecting the same subscription onto
    the same slot subset yields an equal operator, which is what the
    per-neighbour subscription stores rely on for duplicate suppression.
    """

    subscription_id: str
    subscriber: str
    slots: tuple[Slot, ...]
    delta_t: float
    delta_l: float = UNBOUNDED
    main_slot: str | None = None  # set only on binary joins (multi-join baseline)

    def __init__(
        self,
        subscription_id: str,
        subscriber: str,
        slots: Iterable[Slot],
        delta_t: float,
        delta_l: float = UNBOUNDED,
        main_slot: str | None = None,
    ) -> None:
        ordered = tuple(sorted(slots, key=lambda s: s.slot_id))
        if not ordered:
            raise ValueError("an operator needs at least one slot")
        ids = {s.slot_id for s in ordered}
        if len(ids) != len(ordered):
            raise ValueError("duplicate slot in operator")
        if main_slot is not None and main_slot not in ids:
            raise ValueError(f"main slot {main_slot!r} not among operator slots")
        object.__setattr__(self, "subscription_id", subscription_id)
        object.__setattr__(self, "subscriber", subscriber)
        object.__setattr__(self, "slots", ordered)
        object.__setattr__(self, "delta_t", delta_t)
        object.__setattr__(self, "delta_l", delta_l)
        object.__setattr__(self, "main_slot", main_slot)
        # Matchers are keyed by operator equality on the event hot path;
        # the generated frozen-dataclass hash re-walks every slot (and
        # its sensor frozenset) per lookup, so cache it once.
        object.__setattr__(
            self,
            "_hash",
            hash(
                (subscription_id, subscriber, ordered, delta_t, delta_l, main_slot)
            ),
        )

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def op_id(self) -> str:
        """Stable human-readable identity (subscription + slot ids)."""
        tag = ",".join(s.slot_id for s in self.slots)
        kind = f"|bj:{self.main_slot}" if self.main_slot else ""
        return f"{self.subscription_id}[{tag}]{kind}"

    @property
    def slot_ids(self) -> frozenset[str]:
        return frozenset(s.slot_id for s in self.slots)

    @property
    def sensors(self) -> frozenset[str]:
        """Every concrete sensor any slot may draw events from."""
        return frozenset(sid for s in self.slots for sid in s.sensors)

    @property
    def is_simple(self) -> bool:
        """Single-stream operators suffer no further splitting."""
        return len(self.slots) == 1

    @property
    def is_binary_join(self) -> bool:
        return self.main_slot is not None

    @property
    def signature(
        self,
    ) -> tuple[
        tuple[tuple[str, str, tuple[str, ...]], ...], float, float, str | None
    ]:
        """Grouping key for coverage: slot structure + correlation params.

        Only operators with the same signature are comparable for
        subsumption (the paper filters "only subscriptions over the same
        attributes" and, for binary joins, "with the same signature").
        """
        return (
            tuple((s.slot_id, s.attribute, tuple(sorted(s.sensors))) for s in self.slots),
            self.delta_t,
            self.delta_l,
            self.main_slot,
        )

    def slot(self, slot_id: str) -> Slot:
        for s in self.slots:
            if s.slot_id == slot_id:
                return s
        raise KeyError(slot_id)

    # ------------------------------------------------------------------
    # matching helpers
    # ------------------------------------------------------------------
    def slot_for_event(self, event: SimpleEvent) -> Slot | None:
        """The slot ``event`` can fill, or None if it matches no slot."""
        for s in self.slots:
            if s.accepts(event):
                return s
        return None

    def accepts_some(self, event: SimpleEvent) -> bool:
        return self.slot_for_event(event) is not None

    # ------------------------------------------------------------------
    # projection / splitting
    # ------------------------------------------------------------------
    def project(self, slot_ids: Iterable[str]) -> "CorrelationOperator":
        """Projection onto a slot subset — the split step of Algorithm 3.

        Projections never keep a binary-join marker: the multi-join
        baseline re-derives binary joins explicitly.
        """
        wanted = set(slot_ids)
        kept = [s for s in self.slots if s.slot_id in wanted]
        if len(kept) != len(wanted):
            missing = wanted - {s.slot_id for s in kept}
            raise KeyError(f"operator has no slots {sorted(missing)}")
        return CorrelationOperator(
            self.subscription_id,
            self.subscriber,
            kept,
            self.delta_t,
            self.delta_l,
        )

    def project_sensors(self, sensor_ids: Iterable[str]) -> "CorrelationOperator | None":
        """Projection onto the slots fillable by the given sensors.

        This is the "projection of the subscription on the neighbour's
        data space" of Algorithm 3 (line 8): the advertisement table
        yields the sensors behind a neighbour, and the operator keeps the
        slots those sensors can fill.  Returns None when no slot remains.
        """
        available = set(sensor_ids)
        kept = [
            s.with_sensors(frozenset(s.sensors & available))
            for s in self.slots
            if s.sensors & available
        ]
        if not kept:
            return None
        return CorrelationOperator(
            self.subscription_id,
            self.subscriber,
            kept,
            self.delta_t,
            self.delta_l,
        )

    def binary_joins(self) -> list["CorrelationOperator"]:
        """Ring-pair the slots into binary joins (multi-join baseline).

        Following [7] as distributed in Section III-B: each slot becomes
        the *main* stream of one binary join whose *filtering* stream is
        the next slot in a deterministic ring.  Operators with a single
        slot are returned unchanged (nothing to pair).  Two-slot
        operators form a ring of two: each stream is the main of one
        exact join (binary joins equal multi-joins with two attributes).
        *Every* slot must be a main stream — an event only travels
        toward the user on its own main stream, so a slot without one
        would strand its events at the divergence node and silently
        lose every match instance they anchor.
        """
        if len(self.slots) == 1:
            return [self]
        joins = []
        n = len(self.slots)
        for i, main in enumerate(self.slots):
            sanction = self.slots[(i + 1) % n]
            joins.append(
                CorrelationOperator(
                    self.subscription_id,
                    self.subscriber,
                    (main, sanction),
                    self.delta_t,
                    self.delta_l,
                    main_slot=main.slot_id,
                )
            )
        return joins

    # ------------------------------------------------------------------
    # coverage
    # ------------------------------------------------------------------
    def covers(self, other: "CorrelationOperator") -> bool:
        """Pair-wise covering: every event set matching ``other`` matches us.

        Requires the identical slot structure (paper: comparisons happen
        only between subscriptions over the same attributes) plus
        per-slot range containment and at-least-as-loose correlation
        distances.
        """
        if self.signature[0] != other.signature[0]:
            return False
        if self.main_slot != other.main_slot:
            return False
        if self.delta_t < other.delta_t or self.delta_l < other.delta_l:
            return False
        ours = {s.slot_id: s for s in self.slots}
        return all(ours[s.slot_id].covers(s) for s in other.slots)

    def as_box(self) -> tuple[Interval, ...]:
        """The operator's value hyper-rectangle, slot-ordered.

        This is the geometry handed to the probabilistic set filter:
        each slot contributes one dimension (the paper treats each
        sensor, or each attribute plus the location, as one attribute of
        the set-subsumption problem).
        """
        return tuple(s.interval for s in self.slots)

    def widened(self, amount: float) -> "CorrelationOperator":
        """Coarsened copy of the operator (Section VI-F mitigation)."""
        return CorrelationOperator(
            self.subscription_id,
            self.subscriber,
            (s.with_interval(s.interval.widen(amount)) for s in self.slots),
            self.delta_t,
            self.delta_l,
            self.main_slot,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.op_id


# ---------------------------------------------------------------------------
# construction from subscriptions
# ---------------------------------------------------------------------------
def operator_from_identified(
    subscription: IdentifiedSubscription, subscriber: str
) -> CorrelationOperator:
    """Root operator of an identified subscription: one slot per sensor."""
    return CorrelationOperator(
        subscription.sub_id,
        subscriber,
        (
            Slot(f.sensor_id, f.attribute, f.interval, frozenset({f.sensor_id}))
            for f in subscription.filters
        ),
        subscription.delta_t,
    )


def operator_from_abstract(
    subscription: AbstractSubscription,
    subscriber: str,
    sensors_by_attribute: Mapping[str, Sequence[str]],
) -> CorrelationOperator:
    """Root operator of a resolved abstract subscription.

    ``sensors_by_attribute`` comes from
    :meth:`repro.model.subscriptions.AbstractSubscription.resolve`; every
    attribute must have at least one sensor (otherwise the subscription
    has absent sources and Algorithm 3 drops it before this point).
    """
    slots = []
    for clause in subscription.clauses:
        sensors = sensors_by_attribute.get(clause.attribute, ())
        if not sensors:
            raise ValueError(
                f"attribute {clause.attribute!r} of {subscription.sub_id} "
                "has no advertised sensors in its region"
            )
        slots.append(
            Slot(
                clause.attribute,
                clause.attribute,
                clause.condition.interval,
                frozenset(sensors),
            )
        )
    return CorrelationOperator(
        subscription.sub_id,
        subscriber,
        slots,
        subscription.delta_t,
        subscription.delta_l,
    )


def root_operator(
    subscription: Subscription,
    subscriber: str,
    sensors_by_attribute: Mapping[str, Sequence[str]] | None = None,
) -> CorrelationOperator:
    """Dispatch on subscription flavour."""
    if isinstance(subscription, IdentifiedSubscription):
        return operator_from_identified(subscription, subscriber)
    if sensors_by_attribute is None:
        raise ValueError("abstract subscriptions need resolved sensors")
    return operator_from_abstract(subscription, subscriber, sensors_by_attribute)
