"""User subscriptions (Section IV-A).

Two flavours:

* **identified** ``S_id = (F_D, delta_t)`` — ranges over explicitly named
  sensors; a complex match needs one event per sensor in ``D``;
* **abstract** ``S_ab = (F_{A,L}, delta_t, delta_l)`` — ranges over
  attribute *types* bounded to a region ``L``; a complex match needs one
  event per attribute type, produced by sensors inside ``L`` whose
  pairwise distance stays below ``delta_l``.

``delta_t`` is the temporal correlation distance: all member timestamps
must be within ``delta_t`` of the maximum member timestamp.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .advertisements import Advertisement, AdvertisementTable
from .events import SimpleEvent
from .filters import AbstractFilter, IdentifiedFilter, SimpleFilter
from .intervals import Interval
from .locations import Region

UNBOUNDED: float = math.inf
"""Spatial correlation distance meaning "independent of proximity"."""


def _check_delta_t(delta_t: float) -> None:
    if not delta_t > 0:
        raise ValueError("delta_t must be positive (events never share timestamps)")


@dataclass(frozen=True)
class IdentifiedSubscription:
    """``(F_D, delta_t)`` — a complex filter with identification.

    ``filters`` holds exactly one identified filter per sensor of ``D``;
    the constructor sorts them so equal subscriptions compare equal.
    """

    sub_id: str
    filters: tuple[IdentifiedFilter, ...]
    delta_t: float

    def __init__(
        self,
        sub_id: str,
        filters: Iterable[IdentifiedFilter],
        delta_t: float,
    ) -> None:
        ordered = tuple(sorted(filters, key=lambda f: f.sensor_id))
        if not ordered:
            raise ValueError("a subscription needs at least one filter")
        seen = {f.sensor_id for f in ordered}
        if len(seen) != len(ordered):
            raise ValueError("duplicate sensor in identified subscription")
        _check_delta_t(delta_t)
        object.__setattr__(self, "sub_id", sub_id)
        object.__setattr__(self, "filters", ordered)
        object.__setattr__(self, "delta_t", delta_t)

    # ------------------------------------------------------------------
    @property
    def sensor_ids(self) -> frozenset[str]:
        """The sensor set ``D``."""
        return frozenset(f.sensor_id for f in self.filters)

    @property
    def by_sensor(self) -> Mapping[str, IdentifiedFilter]:
        return {f.sensor_id: f for f in self.filters}

    def filter_for(self, sensor_id: str) -> IdentifiedFilter | None:
        for f in self.filters:
            if f.sensor_id == sensor_id:
                return f
        return None

    def matches_simple(self, event: SimpleEvent) -> bool:
        """Paper's simple-event match: ``d in D`` and ``f_d(v)`` true."""
        f = self.filter_for(event.sensor_id)
        return f is not None and f.matches_event(event)

    def widened(self, amount: float) -> "IdentifiedSubscription":
        """Coarsened copy (Section VI-F recall mitigation)."""
        return IdentifiedSubscription(
            self.sub_id,
            (
                IdentifiedFilter(f.sensor_id, f.condition.widen(amount))
                for f in self.filters
            ),
            self.delta_t,
        )

    @classmethod
    def from_ranges(
        cls,
        sub_id: str,
        ranges: Mapping[str, tuple[str, float, float]],
        delta_t: float,
    ) -> "IdentifiedSubscription":
        """Build from ``{sensor_id: (attribute, lo, hi)}`` — test-friendly."""
        return cls(
            sub_id,
            (
                IdentifiedFilter(sensor, SimpleFilter(attr, Interval(lo, hi)))
                for sensor, (attr, lo, hi) in ranges.items()
            ),
            delta_t,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = " AND ".join(str(f) for f in self.filters)
        return f"{self.sub_id}: {body} (dt={self.delta_t:g})"


@dataclass(frozen=True)
class AbstractSubscription:
    """``(F_{A,L}, delta_t, delta_l)`` — region-scoped, attribute-typed.

    ``clauses`` holds one abstract filter per attribute type of ``A``,
    all sharing the region ``L`` (enforced).
    """

    sub_id: str
    clauses: tuple[AbstractFilter, ...]
    delta_t: float
    delta_l: float

    def __init__(
        self,
        sub_id: str,
        clauses: Iterable[AbstractFilter],
        delta_t: float,
        delta_l: float = UNBOUNDED,
    ) -> None:
        ordered = tuple(sorted(clauses, key=lambda c: c.attribute))
        if not ordered:
            raise ValueError("a subscription needs at least one clause")
        attrs = {c.attribute for c in ordered}
        if len(attrs) != len(ordered):
            raise ValueError("duplicate attribute in abstract subscription")
        regions = {id(c.region) for c in ordered}
        if len({repr(c.region) for c in ordered}) > 1 and len(regions) > 1:
            raise ValueError("all clauses of F_{A,L} must share the region L")
        _check_delta_t(delta_t)
        if not delta_l > 0:
            raise ValueError("delta_l must be positive (or math.inf)")
        object.__setattr__(self, "sub_id", sub_id)
        object.__setattr__(self, "clauses", ordered)
        object.__setattr__(self, "delta_t", delta_t)
        object.__setattr__(self, "delta_l", delta_l)

    # ------------------------------------------------------------------
    @property
    def attributes(self) -> frozenset[str]:
        """The attribute set ``A``."""
        return frozenset(c.attribute for c in self.clauses)

    @property
    def region(self) -> Region:
        return self.clauses[0].region

    def clause_for(self, attribute: str) -> AbstractFilter | None:
        for c in self.clauses:
            if c.attribute == attribute:
                return c
        return None

    def matches_simple(self, event: SimpleEvent) -> bool:
        """``a_d in A``, ``p_d in L`` and ``f_{a_d}(v)`` true."""
        clause = self.clause_for(event.attribute)
        return clause is not None and clause.matches_event(event)

    def resolve(
        self, advertisements: AdvertisementTable
    ) -> dict[str, list[Advertisement]]:
        """Concrete sensors per attribute, from advertised sources.

        Returns ``{attribute: [advertisements in L]}``; an empty list for
        some attribute means the subscription currently has absent
        sources and must not be forwarded (Algorithm 3, line 3).
        """
        return {
            clause.attribute: advertisements.sensors_matching(
                clause.attribute, clause.region
            )
            for clause in self.clauses
        }

    @classmethod
    def from_ranges(
        cls,
        sub_id: str,
        ranges: Mapping[str, tuple[float, float]],
        region: Region,
        delta_t: float,
        delta_l: float = UNBOUNDED,
    ) -> "AbstractSubscription":
        """Build from ``{attribute: (lo, hi)}`` over one region."""
        return cls(
            sub_id,
            (
                AbstractFilter(SimpleFilter(attr, Interval(lo, hi)), region)
                for attr, (lo, hi) in ranges.items()
            ),
            delta_t,
            delta_l,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = " AND ".join(str(c.condition) for c in self.clauses)
        return f"{self.sub_id}: {body} in region (dt={self.delta_t:g}, dl={self.delta_l:g})"


Subscription = IdentifiedSubscription | AbstractSubscription
"""Union type accepted wherever either flavour works."""
