"""Network substrate: topology, links, messages, node storage, routing.

Implements the system model of Section IV-B — processing nodes in an
acyclic graph, advertisement/subscription/event propagation, per-link
traffic metering and end-user delivery logging.
"""

from .delivery import DeliveryLog
from .eventstore import EventStore
from .links import LinkId, TrafficMeter, TrafficSnapshot
from .messages import (
    AdvertisementMessage,
    EventMessage,
    Message,
    OperatorMessage,
)
from .network import Network, UNICAST_ORIGIN
from .node import LOCAL, Node, SubscriptionStore
from .routing import RoutingTable, graph_center
from .topology import (
    Deployment,
    SensorPlacement,
    build_deployment,
    large_network,
    large_sources,
    medium_scale,
    small_scale,
)

__all__ = [
    "AdvertisementMessage",
    "Deployment",
    "DeliveryLog",
    "EventMessage",
    "EventStore",
    "LOCAL",
    "LinkId",
    "Message",
    "Network",
    "Node",
    "OperatorMessage",
    "RoutingTable",
    "SensorPlacement",
    "SubscriptionStore",
    "TrafficMeter",
    "TrafficSnapshot",
    "UNICAST_ORIGIN",
    "build_deployment",
    "graph_center",
    "large_network",
    "large_sources",
    "medium_scale",
    "small_scale",
]
