"""End-user delivery accounting.

Every approach ultimately hands simple events (or assembled complex
events) to the subscribing user.  The log records, per subscription,
exactly which simple events reached the user; the recall metric then
replays the matching semantics over this delivered subset and compares
against the offline oracle (see ``repro.metrics``).
"""

from __future__ import annotations

import bisect
from collections import Counter
from typing import Iterable, Mapping, Sequence

from ..model.events import EventKey, SimpleEvent


class _DeliveredView:
    """SlotEventProvider over one subscription's delivered events."""

    def __init__(self, events: Iterable[SimpleEvent]) -> None:
        self._by_sensor: dict[str, list[tuple[float, int, SimpleEvent]]] = {}
        for event in events:
            self._by_sensor.setdefault(event.sensor_id, []).append(
                (event.timestamp, event.seq, event)
            )
        for timeline in self._by_sensor.values():
            timeline.sort()

    def events_for_sensor(
        self, sensor_id: str, after: float, until: float
    ) -> Sequence[SimpleEvent]:
        timeline = self._by_sensor.get(sensor_id)
        if not timeline:
            return ()
        lo = bisect.bisect_right(timeline, (after, float("inf")))
        hi = bisect.bisect_right(timeline, (until, float("inf")))
        return [entry[2] for entry in timeline[lo:hi]]


class DeliveryLog:
    """What each subscriber actually received."""

    def __init__(self) -> None:
        self._events: dict[str, dict[EventKey, SimpleEvent]] = {}
        self.complex_deliveries: Counter[str] = Counter()
        self.registered: set[str] = set()
        self._generation: Counter[str] = Counter()

    def register(self, sub_id: str) -> None:
        """Announce a subscription so zero-delivery cases are visible."""
        self.registered.add(sub_id)
        self._events.setdefault(sub_id, {})

    def record_events(self, sub_id: str, events: Iterable[SimpleEvent]) -> None:
        bucket = self._events.setdefault(sub_id, {})
        for event in events:
            bucket[event.key] = event

    def record_complex(self, sub_id: str, count: int = 1) -> None:
        self.complex_deliveries[sub_id] += count

    def reset(self, sub_id: str) -> None:
        """Forget a subscription's delivered history (id reuse).

        A subscription id resubmitted after cancellation is a new
        incarnation: its log starts empty so the old incarnation's
        deliveries never pollute the new one's results or recall.  The
        id stays registered; the generation counter ticks so consumers
        caching per-log-state results (``QueryHandle.matches``) notice.
        """
        self._events[sub_id] = {}
        self.complex_deliveries.pop(sub_id, None)
        self._generation[sub_id] += 1

    def generation(self, sub_id: str) -> int:
        """How many times this id's log was reset (cache invalidation)."""
        return self._generation[sub_id]

    # ------------------------------------------------------------------
    def delivered(self, sub_id: str) -> Mapping[EventKey, SimpleEvent]:
        return self._events.get(sub_id, {})

    def delivered_count(self, sub_id: str) -> int:
        return len(self._events.get(sub_id, {}))

    def total_delivered(self) -> int:
        return sum(len(bucket) for bucket in self._events.values())

    def view(self, sub_id: str) -> _DeliveredView:
        """Matching-compatible provider over the delivered events."""
        return _DeliveredView(self._events.get(sub_id, {}).values())

    def subscriptions(self) -> list[str]:
        return sorted(self.registered | set(self._events))
