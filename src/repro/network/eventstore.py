"""Per-node event storage ``U`` (Figure 2 / Algorithm 5).

All received simple events are stored together, indexed by producing
sensor and ordered by timestamp, so the window matcher can ask for
"events of sensor d with ``after < t <= until``" in logarithmic time.
Events have a finite validity (Section IV-B): once older than the
current time minus the validity they can no longer take part in any
correlation (validity > delta_t by construction) and are pruned, which
bounds node memory exactly as the paper argues.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Sequence

from ..model.events import EventKey, SimpleEvent


class EventStore:
    """Timestamp-ordered, sensor-indexed set of unexpired events."""

    def __init__(self, validity: float) -> None:
        if validity <= 0:
            raise ValueError("validity must be positive")
        self.validity = validity
        self._by_sensor: dict[str, list[tuple[float, int, SimpleEvent]]] = {}
        self._keys: set[EventKey] = set()
        self._latest = float("-inf")

    # ------------------------------------------------------------------
    def add(self, event: SimpleEvent, now: float) -> bool:
        """Insert ``event``; False when it is a duplicate or expired.

        Insertion lazily prunes the sensor's timeline, so memory stays
        bounded without a periodic sweep timer (the simulator agenda can
        then run to quiescence).
        """
        if event.key in self._keys:
            return False
        if now - event.timestamp > self.validity:
            return False
        timeline = self._by_sensor.setdefault(event.sensor_id, [])
        bisect.insort(timeline, (event.timestamp, event.seq, event))
        self._keys.add(event.key)
        self._latest = max(self._latest, event.timestamp)
        self._prune_sensor(event.sensor_id, now)
        return True

    def __contains__(self, key: EventKey) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    # ------------------------------------------------------------------
    # the SlotEventProvider interface used by repro.model.matching
    # ------------------------------------------------------------------
    def events_for_sensor(
        self, sensor_id: str, after: float, until: float
    ) -> Sequence[SimpleEvent]:
        """Stored events of ``sensor_id`` with ``after < t <= until``."""
        timeline = self._by_sensor.get(sensor_id)
        if not timeline:
            return ()
        lo = bisect.bisect_right(timeline, (after, float("inf")))
        hi = bisect.bisect_right(timeline, (until, float("inf")))
        return [entry[2] for entry in timeline[lo:hi]]

    def all_events(self) -> Iterator[SimpleEvent]:
        for timeline in self._by_sensor.values():
            for _, _, event in timeline:
                yield event

    @property
    def latest_timestamp(self) -> float:
        """Largest timestamp ever inserted (-inf when empty)."""
        return self._latest

    # ------------------------------------------------------------------
    def prune(self, now: float) -> list[EventKey]:
        """Drop every expired event; returns the removed keys.

        Callers use the removed keys to clean their per-event
        forwarded-to flags.
        """
        removed: list[EventKey] = []
        for sensor_id in list(self._by_sensor):
            removed.extend(self._prune_sensor(sensor_id, now))
        return removed

    def _prune_sensor(self, sensor_id: str, now: float) -> list[EventKey]:
        timeline = self._by_sensor.get(sensor_id)
        if not timeline:
            return []
        horizon = now - self.validity
        cut = bisect.bisect_right(timeline, (horizon, float("inf")))
        if cut == 0:
            return []
        removed = [entry[2].key for entry in timeline[:cut]]
        del timeline[:cut]
        self._keys.difference_update(removed)
        if not timeline:
            del self._by_sensor[sensor_id]
        return removed
