"""Per-node event storage ``U`` (Figure 2 / Algorithm 5).

All received simple events are stored together, indexed by producing
sensor and ordered by timestamp, so the window matcher can ask for
"events of sensor d with ``after < t <= until``" in logarithmic time.
Events have a finite validity (Section IV-B): once older than the
current time minus the validity they can no longer take part in any
correlation (validity > delta_t by construction) and are pruned, which
bounds node memory exactly as the paper argues.

Two performance properties matter on the ingest hot path:

* events arrive *near*-ordered, so timelines append and re-sort lazily
  (one timsort pass over nearly sorted data is O(n)) instead of paying
  ``bisect.insort``'s O(n) memmove per insert;
* window queries return zero-copy :class:`TimelineView`\\ s over the
  sorted backing lists.

Expiry is governed by a store-wide monotone **horizon** (the largest
``now − validity`` any insert or prune has observed): every query
clamps below it, so an event is visible iff ``timestamp > horizon``
regardless of which per-sensor timeline physical pruning last touched.
Listeners (the incremental matching engine) mirror the store through
``event_added`` / ``horizon_advanced`` callbacks and therefore agree
with every query — the invariant the matcher-equivalence property
tests lean on.
"""

from __future__ import annotations

from typing import Iterator, Protocol, Sequence

from ..matching.timeline import Timeline, TimelineView
from ..model.events import EventKey, SimpleEvent


class StoreListener(Protocol):
    """Mirroring protocol for consumers of store mutations."""

    def event_added(self, event: SimpleEvent) -> None: ...

    def horizon_advanced(self, horizon: float) -> None: ...

    def sensor_fenced(self, sensor_id: str) -> None: ...


class EventStore:
    """Timestamp-ordered, sensor-indexed set of unexpired events."""

    def __init__(self, validity: float) -> None:
        if validity <= 0:
            raise ValueError("validity must be positive")
        self.validity = validity
        self._by_sensor: dict[str, Timeline] = {}
        self._keys: set[EventKey] = set()
        self._latest = float("-inf")
        self._horizon = float("-inf")
        self._fences: dict[str, float] = {}
        self._listeners: list[StoreListener] = []

    # ------------------------------------------------------------------
    def add_listener(self, listener: StoreListener) -> None:
        self._listeners.append(listener)

    @property
    def horizon(self) -> float:
        """Expiry cutoff: only events with ``timestamp > horizon`` are
        visible to queries."""
        return self._horizon

    # ------------------------------------------------------------------
    def add(self, event: SimpleEvent, now: float) -> bool:
        """Insert ``event``; False when it is a duplicate or expired.

        Insertion lazily prunes the sensor's timeline, so memory stays
        bounded without a periodic sweep timer (the simulator agenda can
        then run to quiescence).
        """
        if event.key in self._keys:
            return False
        if now - event.timestamp > self.validity:
            return False
        fence = self._fences.get(event.sensor_id)
        if fence is not None and event.timestamp <= fence:
            return False  # pre-departure straggler of a retracted sensor
        self._advance_horizon(now - self.validity)
        timeline = self._by_sensor.get(event.sensor_id)
        if timeline is None:
            timeline = self._by_sensor[event.sensor_id] = Timeline()
        timeline.add(event)
        self._keys.add(event.key)
        if event.timestamp > self._latest:
            self._latest = event.timestamp
        self._prune_sensor(event.sensor_id)
        for listener in self._listeners:
            listener.event_added(event)
        return True

    def _advance_horizon(self, horizon: float) -> None:
        if horizon > self._horizon:
            self._horizon = horizon
            for listener in self._listeners:
                listener.horizon_advanced(horizon)

    # ------------------------------------------------------------------
    # churn fences
    # ------------------------------------------------------------------
    def fence_sensor(self, sensor_id: str, now: float) -> list[EventKey]:
        """Retract a departed sensor's history; returns the removed keys.

        Called when an advertisement retraction arrives: the sensor's
        stored events are dropped, listeners mirror the drop
        (``sensor_fenced``), and until :meth:`unfence_sensor` any
        arriving event of the sensor stamped at or before ``now`` is
        rejected — a forwarded copy of pre-departure history must not
        re-enter through a slower path after the fence.  Returned keys
        let the node clean its per-event forwarded-to flags, exactly as
        :meth:`prune` does.
        """
        fence = max(now, self._fences.get(sensor_id, float("-inf")))
        self._fences[sensor_id] = fence
        removed: list[EventKey] = []
        timeline = self._by_sensor.pop(sensor_id, None)
        if timeline:
            removed = [e.key for e in timeline.drop_until(float("inf"))]
            self._keys.difference_update(removed)
        for listener in self._listeners:
            listener.sensor_fenced(sensor_id)
        return removed

    def unfence_sensor(self, sensor_id: str) -> None:
        """Lift the fence when the sensor re-advertises (re-join)."""
        self._fences.pop(sensor_id, None)

    def fence_of(self, sensor_id: str) -> float | None:
        """The active fence timestamp, None when the sensor is unfenced."""
        return self._fences.get(sensor_id)

    def __contains__(self, key: EventKey) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    # ------------------------------------------------------------------
    # the SlotEventProvider interface used by repro.model.matching
    # ------------------------------------------------------------------
    def events_for_sensor(
        self, sensor_id: str, after: float, until: float
    ) -> Sequence[SimpleEvent]:
        """Stored events of ``sensor_id`` with ``after < t <= until``."""
        timeline = self._by_sensor.get(sensor_id)
        if not timeline:
            return ()
        return timeline.view(max(after, self._horizon), until)

    def sensor_events(self, sensor_id: str) -> Sequence[SimpleEvent]:
        """Every visible event of ``sensor_id`` (matcher backfill)."""
        timeline = self._by_sensor.get(sensor_id)
        if not timeline:
            return ()
        return timeline.view(self._horizon, float("inf"))

    def all_events(self) -> Iterator[SimpleEvent]:
        for sensor_id in self._by_sensor:
            yield from self.sensor_events(sensor_id)

    @property
    def latest_timestamp(self) -> float:
        """Largest timestamp ever inserted (-inf when empty)."""
        return self._latest

    # ------------------------------------------------------------------
    def prune(self, now: float) -> list[EventKey]:
        """Drop every expired event; returns the removed keys.

        Callers use the removed keys to clean their per-event
        forwarded-to flags.
        """
        self._advance_horizon(now - self.validity)
        removed: list[EventKey] = []
        for sensor_id in list(self._by_sensor):
            removed.extend(self._prune_sensor(sensor_id))
        return removed

    def _prune_sensor(self, sensor_id: str) -> list[EventKey]:
        timeline = self._by_sensor.get(sensor_id)
        if not timeline:
            return []
        dropped = timeline.drop_until(self._horizon)
        if not dropped:
            return []
        removed = [event.key for event in dropped]
        self._keys.difference_update(removed)
        if not timeline:
            del self._by_sensor[sensor_id]
        return removed
