"""Seeded transport fault injection — link loss/delay and broker outages.

The paper's evaluation assumes a perfectly reliable transport; related
WSN work (Mitici et al., Lai et al.) treats loss and whole-base-station
failures as the operating regime.  A :class:`FaultPlan` is the frozen,
hashable description of that regime for one run:

* per-link fault models (:class:`LinkFault`: drop probability plus a
  fixed-delay/jitter pair added to the base link latency);
* broker outage schedules with **correlated failure domains**
  (:class:`OutageWindow`: every broker in the domain crashes at
  ``start`` and recovers at ``end``, together).

Plans are pure data: all randomness is drawn at send time from a
simulator stream named after ``plan.seed`` (derived via
:func:`repro.seeding.derive_seed`), so runs stay PYTHONHASHSEED-
independent and sharded == serial — the single-threaded agenda fixes
the draw order.  ``FaultPlan.none()`` is falsy and the network then
bypasses the fault lane entirely, byte-identical to a plan-less run.

Outage times are on the **program clock** (0 = replay start), exactly
like churn transitions and lifecycle edges; compilation shifts them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .topology import Deployment


@dataclass(frozen=True, slots=True)
class LinkFault:
    """One directed link's misbehaviour.

    ``drop`` is the per-transmission loss probability; ``delay`` a
    deterministic extra transit time and ``jitter`` the width of a
    uniform random addition on top — both added to the network's base
    ``latency``.  The all-zero fault (the default) is falsy.
    """

    drop: float = 0.0
    delay: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "jitter"):
            value = getattr(self, name)
            if math.isnan(value) or value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")
        if self.drop > 1:
            raise ValueError(f"drop is a probability, got {self.drop!r}")

    def __bool__(self) -> bool:
        return bool(self.drop or self.delay or self.jitter)


@dataclass(frozen=True, slots=True)
class OutageWindow:
    """A correlated broker failure: every node in ``domain`` is down on
    ``(start, end]`` of the program clock.

    Crash and recovery edges run at agenda priority 1, the same
    tie-break sensor churn uses: a reading stamped at exactly ``start``
    is published before the crash, one stamped at exactly ``end`` is
    published before the recovery (and is therefore lost) — which is
    precisely the half-open window the oracle fences.
    """

    domain: tuple[str, ...]
    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.domain:
            raise ValueError("an outage needs a non-empty failure domain")
        if math.isnan(self.start) or math.isnan(self.end):
            raise ValueError("outage times must not be NaN")
        if self.start < 0:
            raise ValueError(f"outage start {self.start:g} before program t=0")
        if self.end <= self.start:
            raise ValueError(
                f"outage must end after it starts, got "
                f"[{self.start:g}, {self.end:g}]"
            )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """The complete fault description of one run — frozen and hashable,
    so scenarios carrying a plan stay valid memo keys for the sharded
    runner.

    ``default`` applies to every directed link without an explicit
    entry in ``links``; ``seed`` names the simulator stream all drop
    and jitter draws come from (independent of every model stream).
    """

    default: LinkFault = LinkFault()
    links: tuple[tuple[str, str, LinkFault], ...] = ()
    outages: tuple[OutageWindow, ...] = ()
    seed: int = 97

    @classmethod
    def none(cls) -> "FaultPlan":
        """The null plan: falsy, and the network skips the fault lane."""
        return cls()

    def __bool__(self) -> bool:
        return bool(
            self.default
            or any(fault for _, _, fault in self.links)
            or self.outages
        )

    def link_fault(self, src: str, dst: str) -> LinkFault:
        """The fault model of the directed link ``src -> dst``."""
        for s, d, fault in self.links:
            if s == src and d == dst:
                return fault
        return self.default

    def link_faults(self) -> dict[tuple[str, str], LinkFault]:
        """Explicit per-link overrides as a lookup dict (transport
        precomputes this once; the plan itself stays tuple-frozen)."""
        return {(s, d): fault for s, d, fault in self.links}

    def sensor_down_windows(
        self, deployment: "Deployment"
    ) -> tuple[tuple[str, float, float], ...]:
        """Per-sensor down windows ``(sensor_id, start, end)`` implied
        by the outage schedule: a sensor is down while its hosting
        broker is.  Program-clock times; the oracle excludes exactly the
        events such a sensor would have published into ``(start, end]``
        — the publications a down host drops.
        """
        out: list[tuple[str, float, float]] = []
        for window in self.outages:
            domain = set(window.domain)
            for placement in sorted(
                deployment.sensors, key=lambda p: p.sensor_id
            ):
                if placement.node_id in domain:
                    out.append((placement.sensor_id, window.start, window.end))
        return tuple(out)

    def validate_against(self, deployment: "Deployment") -> None:
        """Reject outage domains naming nodes outside the deployment."""
        known = set(deployment.graph.nodes)
        for window in self.outages:
            unknown = sorted(set(window.domain) - known)
            if unknown:
                raise ValueError(
                    f"outage domain names unknown nodes {unknown}"
                )
