"""Traffic metering.

The experiments compare approaches on *network traffic*: every message
crossing a link is charged to the metric of its kind.  The meter keeps
global totals (what the figures plot) and per-link breakdowns (useful
for hot-spot analysis of the centralized scheme and for tests that pin
down where traffic is saved).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..sketches.messages import SketchPushMessage, SketchSubscribeMessage
from .messages import Message, UnsubscribeMessage

_SKETCH_MESSAGES = (SketchSubscribeMessage, SketchPushMessage)

LinkId = tuple[str, str]
"""Directed link: (sender node id, receiver node id)."""


@dataclass(frozen=True, slots=True)
class TrafficSnapshot:
    """Immutable totals at one instant — what experiment points record.

    ``teardown_units`` is the *subset* of ``subscription_units`` that
    travelled as :class:`UnsubscribeMessage` — both sides of a
    submit/cancel pair bill the subscription channel, but the admit/
    retire experiments report registration and teardown separately.
    ``retransmission_units`` and ``refresh_units`` are likewise subsets
    (units re-sent by the reliability layer's ack timers, and units
    carried by soft-state refresh rounds): the reliability overhead
    figure 18 plots.  ``sketch_units`` is the approximate lane's share
    (group registrations on the subscription channel, digest pushes on
    the event channel) — figures 21-22 split it out the same way.
    ``dropped_messages`` counts transmissions the fault lane lost (or
    that arrived at a crashed broker).
    """

    subscription_units: int
    event_units: int
    advertisement_units: int
    messages: int
    teardown_units: int = 0
    retransmission_units: int = 0
    refresh_units: int = 0
    dropped_messages: int = 0
    sketch_units: int = 0

    def minus(self, baseline: "TrafficSnapshot") -> "TrafficSnapshot":
        """Traffic accumulated since ``baseline`` was taken."""
        return TrafficSnapshot(
            self.subscription_units - baseline.subscription_units,
            self.event_units - baseline.event_units,
            self.advertisement_units - baseline.advertisement_units,
            self.messages - baseline.messages,
            self.teardown_units - baseline.teardown_units,
            self.retransmission_units - baseline.retransmission_units,
            self.refresh_units - baseline.refresh_units,
            self.dropped_messages - baseline.dropped_messages,
            self.sketch_units - baseline.sketch_units,
        )


class TrafficMeter:
    """Accumulates per-kind unit counts, globally and per directed link."""

    def __init__(self) -> None:
        self.subscription_units = 0
        self.event_units = 0
        self.advertisement_units = 0
        self.messages = 0
        self.teardown_units = 0
        self.retransmission_units = 0
        self.refresh_units = 0
        self.dropped_messages = 0
        self.sketch_units = 0
        self.per_link: Counter[LinkId] = Counter()
        self.per_link_events: Counter[LinkId] = Counter()
        self.per_link_subscriptions: Counter[LinkId] = Counter()

    def record(
        self,
        link: LinkId,
        message: Message,
        hops: int = 1,
        retransmission: bool = False,
    ) -> None:
        """Charge ``message`` travelling ``hops`` links starting at ``link``.

        ``hops > 1`` is used by the unicast shortcut of the centralized
        baseline, where a message logically crosses a whole shortest
        path; the per-link breakdown then attributes everything to the
        first link (totals — what the paper reports — stay exact).
        ``retransmission=True`` marks a reliability-layer resend: it
        bills every channel like the original copy and additionally the
        ``retransmission_units`` subset.
        """
        sub = message.subscription_units * hops
        evt = message.event_units * hops
        adv = message.advertisement_units * hops
        self.subscription_units += sub
        self.event_units += evt
        self.advertisement_units += adv
        self.messages += 1
        if isinstance(message, UnsubscribeMessage):
            self.teardown_units += sub
        if retransmission:
            self.retransmission_units += sub + evt + adv
        if getattr(message, "refresh_epoch", None) is not None:
            self.refresh_units += sub + adv
        if isinstance(message, _SKETCH_MESSAGES):
            self.sketch_units += sub + evt
        self.per_link[link] += sub + evt + adv
        if evt:
            self.per_link_events[link] += evt
        if sub:
            self.per_link_subscriptions[link] += sub

    def record_drop(self) -> None:
        """Count one transmission lost by the fault lane."""
        self.dropped_messages += 1

    def snapshot(self) -> TrafficSnapshot:
        return TrafficSnapshot(
            self.subscription_units,
            self.event_units,
            self.advertisement_units,
            self.messages,
            self.teardown_units,
            self.retransmission_units,
            self.refresh_units,
            self.dropped_messages,
            self.sketch_units,
        )

    def busiest_links(self, n: int = 5) -> list[tuple[LinkId, int]]:
        """The ``n`` most loaded directed links (unit totals)."""
        return self.per_link.most_common(n)
