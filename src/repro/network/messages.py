"""Message types exchanged between processing nodes.

Data propagation in the system is three-fold (Section IV-B):
advertisements, subscriptions (as correlation operators), and events.
Each message knows how many *data units* it costs on a link, which is
what the paper's two headline metrics count:

* **subscription load** — one unit per correlation operator per link;
* **publication load** — one unit per simple event per link for
  publish/subscribe forwarding, and one unit per *(event, result-set
  stream)* per link for the approaches that construct per-subscription
  result sets (naive, operator placement, centralized).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model.advertisements import Advertisement
from ..model.events import SimpleEvent
from ..model.operators import CorrelationOperator
from ..sketches.messages import SketchPushMessage, SketchSubscribeMessage


@dataclass(frozen=True, slots=True)
class AdvertisementMessage:
    """Flooded ``DSA_d`` (Algorithm 1), or its retraction.

    ``retract=True`` floods the *departure* of a sensor: receivers drop
    the advertisement, fence the sensor's stored events and forward the
    retraction — the inverse of Algorithm 1, introduced for churn.  A
    later re-join floods the plain advertisement again (the re-flood
    path).  Retractions cost one advertisement unit per link, exactly
    like the advertisement they cancel; both are part of the
    advertisement load the churn experiments account for.

    ``refresh_epoch`` tags soft-state refresh copies: round ``k`` of the
    reliability layer's periodic re-flood.  Refresh copies dedupe per
    sensor per epoch (not via the advertisement table, which would stop
    them before they reach a recovered, state-less broker) and renew the
    receiver's soft-state clock for the sensor.
    """

    advertisement: Advertisement
    retract: bool = False
    refresh_epoch: int | None = None

    @property
    def subscription_units(self) -> int:
        return 0

    @property
    def event_units(self) -> int:
        return 0

    @property
    def advertisement_units(self) -> int:
        return 1


@dataclass(frozen=True, slots=True)
class OperatorMessage:
    """A correlation operator travelling the reverse advertisement path.

    ``refresh_epoch`` tags soft-state re-sends: the sender re-offers an
    operator it already forwarded over this link so a broker that
    crashed (and lost its stores) re-learns it.  Receivers that still
    hold the operator ignore the copy.

    ``plan`` carries the compiled placement plan the operator travels
    under (``None``: the paper's heuristic routing).  The network layer
    treats it as an opaque object exposing ``next_hops(node_id,
    sensors)`` — plans are built by ``repro.placement``, which sits
    above this layer.  A planned operator costs exactly one
    subscription unit per link, like any other.
    """

    operator: CorrelationOperator
    refresh_epoch: int | None = None
    plan: object | None = None

    @property
    def subscription_units(self) -> int:
        return 1

    @property
    def event_units(self) -> int:
        return 0

    @property
    def advertisement_units(self) -> int:
        return 0


@dataclass(frozen=True, slots=True)
class UnsubscribeMessage:
    """A query-lifecycle retirement travelling the operator channel.

    Cancellation is the inverse of Algorithm 3: the message retraces
    exactly the links the subscription's correlation operators were
    forwarded over (each node remembers where it sent them), removing
    the stored operators and repairing coverage decisions on the way —
    so the routing state left behind is the state of a network that
    never saw the subscription.  It costs one subscription unit per
    link, exactly like the operator flood it cancels; both sides of a
    submit/cancel pair are part of the subscription load.
    """

    subscription_id: str

    @property
    def subscription_units(self) -> int:
        return 1

    @property
    def event_units(self) -> int:
        return 0

    @property
    def advertisement_units(self) -> int:
        return 0


@dataclass(frozen=True, slots=True)
class EventMessage:
    """A simple event on a link.

    ``streams`` names the result-set streams (operator ids) the event
    travels in for per-subscription forwarding; an empty tuple means
    publish/subscribe forwarding where the link carries the event once
    for everyone.  The unit cost follows the paper's accounting: one
    per stream, or one in total for publish/subscribe.
    """

    event: SimpleEvent
    streams: tuple[str, ...] = ()

    @property
    def subscription_units(self) -> int:
        return 0

    @property
    def event_units(self) -> int:
        return max(1, len(self.streams))

    @property
    def advertisement_units(self) -> int:
        return 0


Message = (
    AdvertisementMessage
    | OperatorMessage
    | EventMessage
    | UnsubscribeMessage
    | SketchSubscribeMessage
    | SketchPushMessage
)
