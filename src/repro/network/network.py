"""The simulated overlay network tying nodes, links and the clock together.

One :class:`Network` instance hosts one approach's node set on one
deployment.  It owns the traffic meter (what the experiments read), the
delivery log (what the recall metric reads) and the simulator; node
implementations only ever call :meth:`send` / :meth:`unicast` and the
injection helpers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..deprecation import warn_deprecated
from ..model.events import SimpleEvent
from ..model.subscriptions import Subscription
from ..sim import Simulator
from .delivery import DeliveryLog
from .links import TrafficMeter
from .messages import EventMessage, Message, OperatorMessage
from .routing import RoutingTable, graph_center
from .topology import Deployment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import Node

UNICAST_ORIGIN = "__unicast__"
"""Origin marker for messages that arrive via multi-hop unicast."""


class Network:
    """Message fabric + bookkeeping for one simulated run."""

    def __init__(
        self,
        deployment: Deployment,
        sim: Simulator | None = None,
        latency: float = 0.05,
        validity: float | None = None,
        delta_t: float = 5.0,
        matching: str = "incremental",
    ) -> None:
        if matching not in ("incremental", "reference"):
            raise ValueError(f"unknown matching mode {matching!r}")
        self.deployment = deployment
        self.sim = sim if sim is not None else Simulator(seed=deployment.seed)
        self.latency = latency
        self.delta_t = delta_t
        # Node-level matcher implementation: the incremental engine
        # (repro.matching) or the reference window scan — identical
        # results, wildly different wall-clock (see BENCH_micro.json).
        self.matching = matching
        # Event validity (Section IV-B): longer than delta_t plus the
        # worst-case transit so correlating events never expire early.
        transit = deployment.diameter() * latency
        floor = delta_t + transit + 1.0
        self.validity = max(validity, floor) if validity is not None else 4 * floor
        self.meter = TrafficMeter()
        self.delivery = DeliveryLog()
        self.nodes: dict[str, "Node"] = {}
        self._routing: RoutingTable | None = None
        self._center: str | None = None
        self.dropped_subscriptions: list[str] = []
        # Adjacency snapshot: networkx views allocate per lookup, and
        # send() validates neighbourhood once per message on the hot
        # path.  The deployment graph is immutable for a run.
        self._adjacency: dict[str, set[str]] = {
            node: set(self.deployment.graph.neighbors(node))
            for node in self.deployment.graph.nodes
        }
        self._sorted_neighbors: dict[str, list[str]] = {
            node: sorted(adjacent) for node, adjacent in self._adjacency.items()
        }

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: "Node") -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        if node.node_id not in self.deployment.graph:
            raise ValueError(f"{node.node_id!r} not in the deployment graph")
        self.nodes[node.node_id] = node

    def populate(self, node_factory) -> None:
        """Create one node per graph vertex using ``node_factory(node_id, net)``."""
        for node_id in sorted(self.deployment.graph.nodes):
            self.add_node(node_factory(node_id, self))

    def neighbors(self, node_id: str) -> list[str]:
        return self._sorted_neighbors[node_id]

    # ------------------------------------------------------------------
    # routing (centralized baseline only)
    # ------------------------------------------------------------------
    @property
    def routing(self) -> RoutingTable:
        if self._routing is None:
            self._routing = RoutingTable(self.deployment.graph)
        return self._routing

    @property
    def center(self) -> str:
        if self._center is None:
            self._center = graph_center(self.deployment.graph)
        return self._center

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: Message) -> None:
        """One-hop transfer to a neighbour; charged per link."""
        if dst not in self._adjacency[src]:
            raise ValueError(f"{src!r} and {dst!r} are not neighbours")
        self.meter.record((src, dst), message)
        self.sim.schedule(
            self.latency, lambda: self.nodes[dst].receive(message, src)
        )

    def unicast(self, src: str, dst: str, message: Message) -> None:
        """Multi-hop transfer along the unique path; charged per hop.

        Used by the centralized baseline.  Totals are exact (units x
        hops); delivery happens once at the destination after the
        path's cumulative latency — intermediate nodes only relay, they
        never inspect centralized traffic.
        """
        if src == dst:
            self.nodes[dst].receive(message, UNICAST_ORIGIN)
            return
        hops = self.routing.distance(src, dst)
        first = self.routing.next_hop(src, dst)
        self.meter.record((src, first), message, hops=hops)
        self.sim.schedule(
            self.latency * hops,
            lambda: self.nodes[dst].receive(message, UNICAST_ORIGIN),
        )

    # ------------------------------------------------------------------
    # workload injection
    # ------------------------------------------------------------------
    def attach_sensor(self, node_id: str, placement) -> None:
        """Install a sensor and advertise it (Algorithm 1, local branch)."""
        self.nodes[node_id].attach_sensor(placement.advertisement())

    def attach_all_sensors(self) -> None:
        for placement in self.deployment.sensors:
            self.attach_sensor(placement.node_id, placement)

    def detach_sensor(self, node_id: str, sensor_id: str) -> None:
        """Churn leave: retract a sensor from its hosting node."""
        self.nodes[node_id].detach_sensor(sensor_id)

    def schedule_churn(self, schedule) -> int:
        """Schedule a churn schedule's join/leave transitions.

        ``schedule`` is a :class:`~repro.workload.sensorscope.ChurnSchedule`
        (duck-typed via ``transitions()`` to keep the network layer free
        of workload imports).  Transition times must already be in this
        simulation's clock (the experiment runner shifts them together
        with the replayed events).  Lifecycle edges run at agenda
        priority 1: a reading stamped at the exact departure instant is
        published before its node departs, a deterministic tie-break.
        Returns the number of transitions scheduled.
        """
        node_of_sensor = {
            s.sensor_id: s for s in self.deployment.sensors
        }
        entries = []
        for time, sensor_id, kind in schedule.transitions():
            placement = node_of_sensor[sensor_id]
            if kind == "leave":
                entries.append(
                    (
                        time,
                        lambda p=placement: self.detach_sensor(
                            p.node_id, p.sensor_id
                        ),
                    )
                )
            else:
                entries.append(
                    (
                        time,
                        lambda p=placement: self.attach_sensor(p.node_id, p),
                    )
                )
        self.sim.schedule_timeline(entries, priority=1)
        return len(entries)

    def register_subscription(self, node_id: str, subscription: Subscription) -> None:
        """Register a user subscription at ``node_id``."""
        self.delivery.register(subscription.sub_id)
        self.nodes[node_id].subscribe(subscription)

    def inject_subscription(self, node_id: str, subscription: Subscription) -> None:
        """Deprecated alias of :meth:`register_subscription`."""
        warn_deprecated(
            "Network.inject_subscription",
            "Network.register_subscription (or repro.api.Session.submit)",
        )
        self.register_subscription(node_id, subscription)

    def cancel_subscription(self, node_id: str, sub_id: str) -> bool:
        """Cancel a subscription previously registered at ``node_id``.

        Starts the reverse-path operator removal (see
        :meth:`repro.network.node.Node.unsubscribe`); run the simulator
        to quiescence to let the teardown reach every node that stored a
        fragment.  Returns False when the subscription is not registered
        at that node (dropped for absent sources, or already cancelled).
        """
        return self.nodes[node_id].unsubscribe(sub_id)

    def publish(self, node_id: str, event: SimpleEvent) -> None:
        """A locally attached sensor produced a reading."""
        self.nodes[node_id].publish(event)

    # ------------------------------------------------------------------
    def run_to_quiescence(self, max_events: int | None = None) -> float:
        """Drain the agenda (no timers persist — stores prune lazily)."""
        return self.sim.run(max_events=max_events)
