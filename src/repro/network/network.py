"""The simulated overlay network tying nodes, links and the clock together.

One :class:`Network` instance hosts one approach's node set on one
deployment.  It owns the traffic meter (what the experiments read), the
delivery log (what the recall metric reads) and the simulator; node
implementations only ever call :meth:`send` / :meth:`unicast` and the
injection helpers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..deprecation import warn_deprecated
from ..model.events import SimpleEvent
from ..model.subscriptions import Subscription
from ..sim import AgendaBudgetExceeded, SimulationError, Simulator
from .delivery import DeliveryLog
from .faults import FaultPlan
from .links import TrafficMeter
from .messages import EventMessage, Message, OperatorMessage
from .reliability import ReliabilityConfig, Transport
from ..sketches import SketchConfig, SketchLane
from .routing import RoutingTable, graph_center
from .topology import Deployment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import Node

UNICAST_ORIGIN = "__unicast__"
"""Origin marker for messages that arrive via multi-hop unicast."""


class LivelockError(SimulationError):
    """:meth:`Network.run_to_quiescence` exhausted its event budget.

    Carries a diagnosis: the hottest pending agenda action kinds and the
    per-link traffic leaders at abort time — enough to name a
    retransmit/refresh feedback loop without re-running under a
    debugger.
    """

    def __init__(
        self,
        max_events: int,
        pending_actions: list[tuple[str, int]],
        busiest_links: list[tuple[tuple[str, str], int]],
    ) -> None:
        actions = (
            ", ".join(f"{name} x{count}" for name, count in pending_actions)
            or "none"
        )
        links = (
            ", ".join(
                f"{src}->{dst} ({units} units)"
                for (src, dst), units in busiest_links
            )
            or "none"
        )
        super().__init__(
            f"no quiescence within max_events={max_events}; "
            f"hottest pending actions: {actions}; "
            f"busiest links: {links}"
        )
        self.pending_actions = pending_actions
        self.busiest_links = busiest_links


class _DeliveryFlush:
    """One agenda entry delivering a batch of same-instant messages.

    Items are replayed in append order — identical to the order the
    individual agenda entries would have fired — with consecutive
    same-destination runs handed to :meth:`Node.receive_batch` so a
    node drains a whole timestamp's arrivals in one pass.
    """

    __slots__ = ("network", "items")

    def __init__(self, network: "Network", items: list) -> None:
        self.network = network
        self.items = items

    def __call__(self) -> None:
        nodes = self.network.nodes
        items = self.items
        i = 0
        n = len(items)
        while i < n:
            dst = items[i][0]
            j = i + 1
            while j < n and items[j][0] == dst:
                j += 1
            if j - i == 1:
                nodes[dst].receive(items[i][1], items[i][2])
            else:
                nodes[dst].receive_batch(
                    [(message, origin) for (_d, message, origin) in items[i:j]]
                )
            i = j


class Network:
    """Message fabric + bookkeeping for one simulated run."""

    def __init__(
        self,
        deployment: Deployment,
        sim: Simulator | None = None,
        latency: float = 0.05,
        validity: float | None = None,
        delta_t: float = 5.0,
        matching: str = "incremental",
        faults: FaultPlan | None = None,
        reliability: ReliabilityConfig | None = None,
        answer_mode: str = "exact",
        sketch: "SketchConfig | None" = None,
    ) -> None:
        if matching not in ("incremental", "columnar", "reference"):
            raise ValueError(f"unknown matching mode {matching!r}")
        if answer_mode not in ("exact", "approximate"):
            raise ValueError(
                f"answer_mode must be 'exact' or 'approximate', "
                f"got {answer_mode!r}"
            )
        if answer_mode == "exact" and sketch is not None:
            raise ValueError(
                "a sketch config requires answer_mode='approximate'"
            )
        if answer_mode == "approximate" and (
            faults is not None or reliability is not None
        ):
            raise ValueError(
                "the approximate lane cannot ride the unreliable "
                "transport: digest pushes assume lossless in-order "
                "delivery (a lost push would silently widen the error "
                "past the certified bound)"
            )
        self.deployment = deployment
        self.sim = sim if sim is not None else Simulator(seed=deployment.seed)
        self.latency = latency
        self.delta_t = delta_t
        # Node-level matcher implementation: the incremental engine
        # (repro.matching) or the reference window scan — identical
        # results, wildly different wall-clock (see BENCH_micro.json).
        self.matching = matching
        # Event validity (Section IV-B): longer than delta_t plus the
        # worst-case transit so correlating events never expire early.
        transit = deployment.diameter() * latency
        floor = delta_t + transit + 1.0
        self.validity = max(validity, floor) if validity is not None else 4 * floor
        self.meter = TrafficMeter()
        self.delivery = DeliveryLog()
        self.nodes: dict[str, "Node"] = {}
        self._routing: RoutingTable | None = None
        self._center: str | None = None
        self.dropped_subscriptions: list[str] = []
        # Adjacency snapshot: networkx views allocate per lookup, and
        # send() validates neighbourhood once per message on the hot
        # path.  The deployment graph is immutable for a run.
        self._adjacency: dict[str, set[str]] = {
            node: set(self.deployment.graph.neighbors(node))
            for node in self.deployment.graph.nodes
        }
        self._sorted_neighbors: dict[str, list[str]] = {
            node: sorted(adjacent) for node, adjacent in self._adjacency.items()
        }
        # Fault lane: only built when something can actually go wrong.
        # With no (truthy) plan and no reliability layer, send/unicast
        # keep the historical inline path — byte-identical runs.
        self.faults = faults if faults is not None else FaultPlan.none()
        if faults is not None:
            self.faults.validate_against(deployment)
        self.reliability = reliability
        self.down: set[str] = set()
        self.transport: Transport | None = (
            Transport(self, self.faults, reliability)
            if (bool(self.faults) or reliability is not None)
            else None
        )
        # Approximate answer lane: only built when asked for.  The
        # default exact mode leaves ``sketches`` None and every hook in
        # the node/event path fenced off — byte-identical runs, same
        # null-fence pattern as the transport above.
        self.answer_mode = answer_mode
        self.sketches: SketchLane | None = (
            SketchLane(sketch if sketch is not None else SketchConfig())
            if answer_mode == "approximate"
            else None
        )
        # Open delivery batch for the plain (fault-free) send path:
        # ``(arrival_time, agenda_sequence, items)``.  See ``send``.
        self._batch: tuple[float, int, list] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: "Node") -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        if node.node_id not in self.deployment.graph:
            raise ValueError(f"{node.node_id!r} not in the deployment graph")
        self.nodes[node.node_id] = node

    def populate(self, node_factory) -> None:
        """Create one node per graph vertex using ``node_factory(node_id, net)``."""
        for node_id in sorted(self.deployment.graph.nodes):
            self.add_node(node_factory(node_id, self))

    def neighbors(self, node_id: str) -> list[str]:
        return self._sorted_neighbors[node_id]

    # ------------------------------------------------------------------
    # routing (centralized baseline only)
    # ------------------------------------------------------------------
    @property
    def routing(self) -> RoutingTable:
        if self._routing is None:
            self._routing = RoutingTable(self.deployment.graph)
        return self._routing

    @property
    def center(self) -> str:
        if self._center is None:
            self._center = graph_center(self.deployment.graph)
        return self._center

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: Message) -> None:
        """One-hop transfer to a neighbour; charged per link.

        The single interception point of the fault lane: with a fault
        plan or reliability layer active, delivery is delegated to the
        :class:`~repro.network.reliability.Transport`, which may drop,
        delay or retransmit it.
        """
        if dst not in self._adjacency[src]:
            raise ValueError(f"{src!r} and {dst!r} are not neighbours")
        if self.transport is not None:
            self.transport.send(src, dst, message)
            return
        self.meter.record((src, dst), message)
        # Batch agenda execution (columnar mode only): consecutive sends
        # targeting the same arrival instant share one agenda entry, and
        # the flush drains a whole timestamp's deliveries through each
        # node in one pass.  A batch stays open only while the
        # simulator's scheduling sequence is unchanged — the batched
        # sends are then provably consecutive in FIFO order, so no other
        # same-instant action can sort between them and delivery order
        # is exactly the unbatched order.  The incremental and reference
        # modes keep the historical one-entry-per-send path.
        if self.matching != "columnar":
            self.sim.schedule(
                self.latency, lambda: self.nodes[dst].receive(message, src)
            )
            return
        sim = self.sim
        when = sim.now + self.latency
        batch = self._batch
        if (
            batch is not None
            and batch[0] == when
            and batch[1] == sim.sequence
        ):
            batch[2].append((dst, message, src))
            return
        items: list = [(dst, message, src)]
        sim.at(when, _DeliveryFlush(self, items))
        self._batch = (when, sim.sequence, items)

    def unicast(self, src: str, dst: str, message: Message) -> None:
        """Multi-hop transfer along the unique path; charged per hop.

        Used by the centralized baseline.  Totals are exact (units x
        hops); delivery happens once at the destination after the
        path's cumulative latency — intermediate nodes only relay, they
        never inspect centralized traffic.  Under a fault plan each hop
        draws its own loss/delay, so longer paths are proportionally
        more fragile — the centralized baseline pays for its star.
        """
        if src == dst:
            self.nodes[dst].receive(message, UNICAST_ORIGIN)
            return
        if self.transport is not None:
            links: list[tuple[str, str]] = []
            here = src
            while here != dst:
                step = self.routing.next_hop(here, dst)
                links.append((here, step))
                here = step
            self.transport.unicast(
                src, dst, UNICAST_ORIGIN, message, tuple(links)
            )
            return
        hops = self.routing.distance(src, dst)
        first = self.routing.next_hop(src, dst)
        self.meter.record((src, first), message, hops=hops)
        self.sim.schedule(
            self.latency * hops,
            lambda: self.nodes[dst].receive(message, UNICAST_ORIGIN),
        )

    # ------------------------------------------------------------------
    # workload injection
    # ------------------------------------------------------------------
    def attach_sensor(self, node_id: str, placement) -> None:
        """Install a sensor and advertise it (Algorithm 1, local branch)."""
        self.nodes[node_id].attach_sensor(placement.advertisement())

    def attach_all_sensors(self) -> None:
        for placement in self.deployment.sensors:
            self.attach_sensor(placement.node_id, placement)

    def detach_sensor(self, node_id: str, sensor_id: str) -> None:
        """Churn leave: retract a sensor from its hosting node."""
        self.nodes[node_id].detach_sensor(sensor_id)

    def schedule_churn(self, schedule) -> int:
        """Schedule a churn schedule's join/leave transitions.

        ``schedule`` is a :class:`~repro.workload.sensorscope.ChurnSchedule`
        (duck-typed via ``transitions()`` to keep the network layer free
        of workload imports).  Transition times must already be in this
        simulation's clock (the experiment runner shifts them together
        with the replayed events).  Lifecycle edges run at agenda
        priority 1: a reading stamped at the exact departure instant is
        published before its node departs, a deterministic tie-break.
        Returns the number of transitions scheduled.
        """
        node_of_sensor = {
            s.sensor_id: s for s in self.deployment.sensors
        }
        entries = []
        for time, sensor_id, kind in schedule.transitions():
            placement = node_of_sensor[sensor_id]
            if kind == "leave":
                entries.append(
                    (
                        time,
                        lambda p=placement: self.detach_sensor(
                            p.node_id, p.sensor_id
                        ),
                    )
                )
            else:
                entries.append(
                    (
                        time,
                        lambda p=placement: self.attach_sensor(p.node_id, p),
                    )
                )
        self.sim.schedule_timeline(entries, priority=1)
        return len(entries)

    def register_subscription(
        self,
        node_id: str,
        subscription: Subscription,
        plan: object | None = None,
    ) -> None:
        """Register a user subscription at ``node_id``.

        ``plan`` (an opaque compiled placement plan exposing
        ``next_hops``; see ``repro.placement``) routes the operator
        pieces explicitly instead of the approach's heuristic.  With
        ``plan=None`` the call is exactly the historical registration —
        the null-plan fence the placement tests machine-check.
        """
        self.delivery.register(subscription.sub_id)
        if plan is None:
            self.nodes[node_id].subscribe(subscription)
            return
        if self.reliability is not None:
            raise ValueError(
                "compiled placement plans cannot ride the reliability "
                "layer: soft-state refresh re-offers operator pieces "
                "without their plan, which would misroute them"
            )
        if self.sketches is not None:
            raise ValueError(
                "compiled placement plans cannot be combined with the "
                "approximate answer lane: eligible subscriptions bypass "
                "operator placement entirely"
            )
        self.nodes[node_id].subscribe(subscription, plan)

    def inject_subscription(self, node_id: str, subscription: Subscription) -> None:
        """Deprecated alias of :meth:`register_subscription`."""
        warn_deprecated(
            "Network.inject_subscription",
            "Network.register_subscription (or repro.api.Session.submit)",
        )
        self.register_subscription(node_id, subscription)

    def cancel_subscription(self, node_id: str, sub_id: str) -> bool:
        """Cancel a subscription previously registered at ``node_id``.

        Starts the reverse-path operator removal (see
        :meth:`repro.network.node.Node.unsubscribe`); run the simulator
        to quiescence to let the teardown reach every node that stored a
        fragment.  Returns False when the subscription is not registered
        at that node (dropped for absent sources, or already cancelled).
        """
        return self.nodes[node_id].unsubscribe(sub_id)

    def publish(self, node_id: str, event: SimpleEvent) -> None:
        """A locally attached sensor produced a reading."""
        if self.down and node_id in self.down:
            # A crashed broker's sensors keep sampling, but the readings
            # die at the host — the publications the oracle fences out.
            return
        self.nodes[node_id].publish(event)

    # ------------------------------------------------------------------
    # broker outages (correlated failure domains)
    # ------------------------------------------------------------------
    def crash_node(self, node_id: str) -> None:
        """Take a broker down: volatile store/matcher state is lost.

        In-flight unacked transfers it originated are abandoned (its
        send state is volatile too); messages addressed to it while down
        are dropped by the transport at delivery time.
        """
        if node_id not in self.nodes:
            raise ValueError(f"unknown node {node_id!r}")
        if node_id in self.down:
            return
        self.down.add(node_id)
        self.nodes[node_id].crash()
        if self.transport is not None:
            self.transport.abandon_from(node_id)

    def recover_node(self, node_id: str) -> None:
        """Bring a crashed broker back: it re-enters via the re-flood
        path (local advertisements flood again, exactly like a churn
        re-join); remote state returns with the next refresh round."""
        if node_id not in self.down:
            return
        self.down.discard(node_id)
        self.nodes[node_id].recover()

    def schedule_outages(self, outages, offset: float = 0.0) -> int:
        """Schedule correlated crash/recover edges from outage windows.

        ``outages`` is an iterable of
        :class:`~repro.network.faults.OutageWindow`; ``offset`` shifts
        their program-clock times into this simulation's clock.  Edges
        run at agenda priority 1, the churn tie-break: a publication
        stamped at the exact crash instant still goes out first.
        Returns the number of edges scheduled.
        """
        entries = []
        for window in outages:
            for node_id in sorted(window.domain):
                entries.append(
                    (
                        offset + window.start,
                        lambda n=node_id: self.crash_node(n),
                    )
                )
                entries.append(
                    (
                        offset + window.end,
                        lambda n=node_id: self.recover_node(n),
                    )
                )
        self.sim.schedule_timeline(entries, priority=1)
        return len(entries)

    def schedule_refresh(self, times: Iterable[tuple[float, int]]) -> int:
        """Schedule soft-state refresh rounds at ``(absolute time, epoch)``.

        Each round asks every live broker (in sorted order, one agenda
        entry per broker so draws interleave deterministically) to
        re-flood its local advertisements, re-offer forwarded operators
        and expire remote soft state that missed ``expiry_rounds``
        consecutive rounds.  Requires the reliability layer; a finite
        timeline, never self-rescheduling, so quiescence still exists.
        """
        if self.reliability is None:
            raise ValueError("refresh requires a reliability config")
        expiry_rounds = self.reliability.expiry_rounds
        entries = []
        for time, epoch in times:
            for node_id in sorted(self.nodes):
                entries.append(
                    (
                        time,
                        lambda n=node_id, k=epoch: self._refresh_node(
                            n, k, expiry_rounds
                        ),
                    )
                )
        self.sim.schedule_timeline(entries, priority=1)
        return len(entries)

    def _refresh_node(self, node_id: str, epoch: int, expiry_rounds: int) -> None:
        if node_id in self.down:
            return
        self.nodes[node_id].refresh_soft_state(epoch, expiry_rounds)

    def schedule_sketch_rounds(
        self, times: Iterable[tuple[float, int]]
    ) -> int:
        """Schedule digest push rounds at ``(absolute time, round no)``.

        Each round ticks every broker (sorted order, one agenda entry
        per broker, priority 1 — so a reading stamped at the round
        instant is folded in before the round pushes, the same
        tie-break churn and refresh use): leaves of every push tree
        send their merged local summaries upstream, interior brokers
        then merge and relay as the pushes arrive.  A finite timeline,
        never self-rescheduling, so quiescence still exists.  Requires
        ``answer_mode='approximate'``.
        """
        if self.sketches is None:
            raise ValueError(
                "sketch rounds require Network(answer_mode='approximate')"
            )
        entries = []
        for time, round_no in times:
            for node_id in sorted(self.nodes):
                entries.append(
                    (
                        time,
                        lambda n=node_id, r=round_no: self.sketches.begin_round(
                            self.nodes[n], r
                        ),
                    )
                )
        self.sim.schedule_timeline(entries, priority=1)
        return len(entries)

    # ------------------------------------------------------------------
    def run_to_quiescence(self, max_events: int | None = None) -> float:
        """Drain the agenda (no timers persist — stores prune lazily).

        On budget exhaustion raises :class:`LivelockError` with the
        hottest pending agenda actions and the busiest links — the
        diagnosis a retransmit/refresh storm needs.
        """
        try:
            return self.sim.run(max_events=max_events)
        except AgendaBudgetExceeded:
            raise LivelockError(
                max_events if max_events is not None else 0,
                self.sim.agenda_summary(),
                self.meter.busiest_links(),
            ) from None
