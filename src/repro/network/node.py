"""The processing-node base class — storage layout of Figure 2 plus the
machinery every approach shares.

Each node keeps

* ``ads`` — advertisements per neighbour (``DSA_m``) and local sensors;
* ``stores[origin]`` — subscriptions/operators received from each
  neighbour (``S_m``) or from local users (``S_local``), split into the
  *uncovered* set (candidates for forwarding) and the *covered* set
  (redundant for forwarding, still defining correlation needs);
* ``store`` — the shared set ``U`` of unexpired simple events, ordered
  by timestamp;
* per-event forwarded-to flags (the ``sendTo`` array of Algorithm 5),
  so no data unit crosses the same link twice in the same stream.

Protocol behaviour — how subscriptions are filtered/split and how events
are propagated — lives in the subclasses under ``repro.core`` (the
Filter-Split-Forward contribution) and ``repro.baselines``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterable, Iterator

from ..matching.engine import MatchingEngine
from ..model.advertisements import Advertisement, AdvertisementTable
from ..model.events import EventKey, SimpleEvent
from ..model.matching import matches_involving as reference_matches_involving
from ..model.operators import CorrelationOperator, root_operator
from ..model.subscriptions import (
    AbstractSubscription,
    IdentifiedSubscription,
    Subscription,
)
from .messages import (
    AdvertisementMessage,
    EventMessage,
    Message,
    OperatorMessage,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network

LOCAL = AdvertisementTable.LOCAL
"""Origin marker for locally attached sensors / local users."""

_PRUNE_EVERY = 64
"""Lazy store-pruning cadence (events between sweeps)."""


class SubscriptionStore:
    """``S_m`` of Figure 2: operators received from one origin.

    When the node runs the incremental matching engine, storing an
    operator also registers its :class:`OperatorMatcher` — from then on
    every ingested event is indexed as it arrives instead of being
    rediscovered by scans.
    """

    def __init__(self, engine: MatchingEngine | None = None) -> None:
        self.uncovered: list[CorrelationOperator] = []
        self.covered: list[CorrelationOperator] = []
        self._by_sensor: dict[str, list[tuple[CorrelationOperator, bool, object]]] = {}
        self._engine = engine

    def add(self, operator: CorrelationOperator, covered: bool) -> None:
        (self.covered if covered else self.uncovered).append(operator)
        # Resolve the operator's matcher once at store time; the event
        # hot path then queries it with zero lookup layers.
        matcher = (
            self._engine.matcher(operator) if self._engine is not None else None
        )
        for sensor_id in operator.sensors:
            self._by_sensor.setdefault(sensor_id, []).append(
                (operator, covered, matcher)
            )

    def ops_for_sensor(
        self, sensor_id: str, include_covered: bool
    ) -> Iterator[CorrelationOperator]:
        """Operators with a slot drawing from ``sensor_id``.

        The event path only needs operators a new event could concern —
        this index keeps per-event work proportional to the relevant
        operators instead of the whole store.
        """
        for operator, is_covered, _matcher in self._by_sensor.get(sensor_id, ()):
            if include_covered or not is_covered:
                yield operator

    def matched_for_sensor(
        self, sensor_id: str, include_covered: bool
    ) -> Iterator[tuple[CorrelationOperator, object]]:
        """(operator, matcher) pairs for the incremental event path."""
        for operator, is_covered, matcher in self._by_sensor.get(sensor_id, ()):
            if include_covered or not is_covered:
                yield operator, matcher

    def same_signature_uncovered(
        self, operator: CorrelationOperator
    ) -> list[CorrelationOperator]:
        """The comparison set for subsumption checks (arrival order)."""
        return [
            op for op in self.uncovered if op.signature == operator.signature
        ]

    def all_operators(self) -> Iterator[CorrelationOperator]:
        yield from self.uncovered
        yield from self.covered

    def __len__(self) -> int:
        return len(self.uncovered) + len(self.covered)


class Node:
    """Base processing node; subclasses implement the protocol hooks."""

    def __init__(self, node_id: str, network: "Network") -> None:
        self.node_id = node_id
        self.network = network
        self.ads = AdvertisementTable()
        self.stores: dict[str, SubscriptionStore] = {}
        self.local_subscriptions: list[tuple[Subscription, CorrelationOperator]] = []
        self._local_by_sensor: dict[
            str, list[tuple[Subscription, CorrelationOperator]]
        ] = {}
        from .eventstore import EventStore  # local import avoids cycles

        self.store = EventStore(network.validity)
        # The incremental matching engine mirrors the event store; the
        # reference matcher remains selectable (Network(matching=
        # "reference")) as the oracle for equivalence tests and as the
        # recompute-on-arrival baseline for benchmarks.
        self.matching: MatchingEngine | None = (
            MatchingEngine(self.store)
            if network.matching == "incremental"
            else None
        )
        self._sent: dict[EventKey, set[Hashable]] = {}
        self._adds_since_prune = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def neighbors(self) -> list[str]:
        return self.network.neighbors(self.node_id)

    @property
    def now(self) -> float:
        return self.network.sim.now

    def receive(self, message: Message, origin: str) -> None:
        """Dispatch a delivered message to the protocol hooks.

        Events are checked first: they outnumber the other kinds by
        orders of magnitude once a run is flowing.
        """
        if isinstance(message, EventMessage):
            self.handle_event(message.event, origin, message.streams)
        elif isinstance(message, OperatorMessage):
            self.handle_operator(message.operator, origin)
        elif isinstance(message, AdvertisementMessage):
            if message.retract:
                self.handle_retraction(message.advertisement, origin)
            else:
                self.handle_advertisement(message.advertisement, origin)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown message {message!r}")

    def store_for(self, origin: str) -> SubscriptionStore:
        store = self.stores.get(origin)
        if store is None:
            store = self.stores[origin] = SubscriptionStore(self.matching)
        return store

    def matches_involving(
        self, operator: CorrelationOperator, event: SimpleEvent
    ) -> dict[str, list[SimpleEvent]]:
        """Participants of matches ``event`` takes part in, for ``operator``.

        Dispatches to the incremental engine (default) or the reference
        window-scanning matcher (``Network(matching="reference")``);
        both are exact and return identical participants.
        """
        if self.matching is not None:
            return self.matching.matches_involving(operator, event)
        return reference_matches_involving(operator, self.store, event)

    # ------------------------------------------------------------------
    # sending helpers
    # ------------------------------------------------------------------
    def send_operator(self, neighbor: str, operator: CorrelationOperator) -> None:
        self.network.send(self.node_id, neighbor, OperatorMessage(operator))

    def send_event(
        self, neighbor: str, event: SimpleEvent, streams: tuple[str, ...] = ()
    ) -> None:
        self.network.send(self.node_id, neighbor, EventMessage(event, streams))

    def was_sent(self, key: EventKey, tag: Hashable) -> bool:
        tags = self._sent.get(key)
        return tags is not None and tag in tags

    def mark_sent(self, key: EventKey, tag: Hashable) -> None:
        self._sent.setdefault(key, set()).add(tag)

    # ------------------------------------------------------------------
    # injection entry points
    # ------------------------------------------------------------------
    def attach_sensor(self, advertisement: Advertisement) -> None:
        """Algorithm 1, lines 2-7: local sensor appears, flood its DSA.

        Also the churn *re-join* path: a sensor whose advertisement was
        retracted on departure is new again, so the same flood carries
        its return through the whole network (the re-flood), lifting the
        local event fence on the way.
        """
        self.store.unfence_sensor(advertisement.sensor_id)
        if not self.ads.add_local(advertisement):
            return
        for neighbor in self.neighbors:
            self.network.send(
                self.node_id, neighbor, AdvertisementMessage(advertisement)
            )

    def detach_sensor(self, sensor_id: str) -> None:
        """Churn leave: retract a locally attached sensor everywhere.

        The inverse of :meth:`attach_sensor`: the advertisement is
        removed from the local table, the sensor's stored history is
        fenced, and a retraction floods outward so every other node does
        the same (:meth:`handle_retraction`).  Unknown or already
        detached sensors are a no-op.
        """
        advertisement = self.ads.get(sensor_id)
        if advertisement is None:
            return
        self.ads.remove(sensor_id)
        self.fence_sensor_state(sensor_id)
        for neighbor in self.neighbors:
            self.network.send(
                self.node_id,
                neighbor,
                AdvertisementMessage(advertisement, retract=True),
            )

    def publish(self, event: SimpleEvent) -> None:
        """A locally attached sensor produced a reading."""
        self.handle_event(event, LOCAL, ())

    def subscribe(self, subscription: Subscription) -> None:
        """Register a local user subscription.

        Resolves abstract subscriptions against the advertisement table
        (local knowledge only — the table was filled by flooding) and
        performs the absent-sources check of Algorithm 3, line 3.
        """
        root = self.build_root_operator(subscription)
        if root is None:
            self.network.dropped_subscriptions.append(subscription.sub_id)
            return
        self.local_subscriptions.append((subscription, root))
        # The whole root operator drives the final local check even when
        # handle_operator stores only fragments of it; resolve its
        # matcher once here.
        matcher = (
            self.matching.matcher(root) if self.matching is not None else None
        )
        for sensor_id in root.sensors:
            self._local_by_sensor.setdefault(sensor_id, []).append(
                (subscription, root, matcher)
            )
        self.handle_operator(root, LOCAL)

    def build_root_operator(
        self, subscription: Subscription
    ) -> CorrelationOperator | None:
        """Root operator, or None when some source is absent."""
        if isinstance(subscription, IdentifiedSubscription):
            if not all(self.ads.knows(s) for s in subscription.sensor_ids):
                return None
            return root_operator(subscription, self.node_id)
        assert isinstance(subscription, AbstractSubscription)
        resolved = subscription.resolve(self.ads)
        if any(not ads for ads in resolved.values()):
            return None
        sensors = {
            attr: [ad.sensor_id for ad in ads] for attr, ads in resolved.items()
        }
        return root_operator(subscription, self.node_id, sensors)

    # ------------------------------------------------------------------
    # protocol hooks
    # ------------------------------------------------------------------
    def handle_advertisement(self, advertisement: Advertisement, origin: str) -> None:
        """Algorithm 1, lines 8-13: store and flood onwards.

        A re-join advertisement of a previously retracted sensor takes
        exactly this path (the retraction removed the table entry, so
        the flood does not stop early) and lifts the event fence: events
        the sensor publishes after rejoining are stored and matched
        again.
        """
        self.store.unfence_sensor(advertisement.sensor_id)
        if not self.ads.add(origin, advertisement):
            return
        for neighbor in self.neighbors:
            if neighbor != origin:
                self.network.send(
                    self.node_id, neighbor, AdvertisementMessage(advertisement)
                )

    def handle_retraction(self, advertisement: Advertisement, origin: str) -> None:
        """Churn leave, remote side: forget, fence and flood onwards.

        Mirrors :meth:`handle_advertisement` for departures: the reverse
        advertisement path entry is removed (so a later re-join floods
        through again), the departed sensor's stored events are fenced
        out of matching, and the retraction continues through the tree.
        The duplicate guard is the table itself — an unknown sensor
        means the flood already passed here.
        """
        if not self.ads.remove(advertisement.sensor_id):
            return
        self.fence_sensor_state(advertisement.sensor_id)
        for neighbor in self.neighbors:
            if neighbor != origin:
                self.network.send(
                    self.node_id,
                    neighbor,
                    AdvertisementMessage(advertisement, retract=True),
                )

    def fence_sensor_state(self, sensor_id: str) -> None:
        """Drop a departed sensor's events from ``U`` and the per-event
        forwarded-to flags (the matching engine mirrors the drop through
        the store's listener protocol)."""
        for key in self.store.fence_sensor(sensor_id, self.now):
            self._sent.pop(key, None)

    def handle_operator(self, operator: CorrelationOperator, origin: str) -> None:
        raise NotImplementedError

    def handle_event(
        self, event: SimpleEvent, origin: str, streams: tuple[str, ...]
    ) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared event-path building blocks
    # ------------------------------------------------------------------
    def ingest(self, event: SimpleEvent) -> bool:
        """Insert into ``U``; False for duplicates/expired (drop & stop)."""
        if not self.store.add(event, self.now):
            return False
        self._adds_since_prune += 1
        if self._adds_since_prune >= _PRUNE_EVERY:
            self._adds_since_prune = 0
            for key in self.store.prune(self.now):
                self._sent.pop(key, None)
        return True

    def deliver_local_matches(self, event: SimpleEvent) -> None:
        """Final, exact matching against whole local subscriptions.

        Algorithm 5, line 14-15: for ``j == n`` the whole local
        subscriptions are checked and matching complex events delivered
        to the user.  Participants are logged for the recall metric.
        """
        for subscription, root, matcher in self._local_by_sensor.get(
            event.sensor_id, ()
        ):
            if matcher is not None:
                participants = matcher.matches_involving(event)
            else:
                participants = reference_matches_involving(root, self.store, event)
            if not participants:
                continue
            delivered = [e for events in participants.values() for e in events]
            self.network.delivery.record_events(subscription.sub_id, delivered)
            self.network.delivery.record_complex(subscription.sub_id)

    def split_targets(
        self, operator: CorrelationOperator, exclude: Iterable[str] = ()
    ) -> dict[str, CorrelationOperator]:
        """Algorithm 3, lines 7-9: project the operator per neighbour.

        Partitions the operator's sensors by the reverse advertisement
        path and returns ``{neighbour: projected operator}`` — the
        deterministic split the paper uses.  Locally attached sensors
        need no forwarding and are skipped, as are excluded origins
        (normally the one the operator came from).
        """
        partition = self.ads.partition_by_origin(operator.sensors)
        partition.pop(LOCAL, None)
        for origin in exclude:
            partition.pop(origin, None)
        targets: dict[str, CorrelationOperator] = {}
        for neighbor, sensor_ids in sorted(partition.items()):
            piece = operator.project_sensors(sensor_ids)
            if piece is not None:
                targets[neighbor] = piece
        return targets

    def pubsub_forward(
        self,
        event: SimpleEvent,
        sender: str,
        include_covered: bool = False,
    ) -> None:
        """Per-neighbour publish/subscribe forwarding (Algorithm 5).

        For every neighbour ``j`` (except the sender), the event — and
        any stored events it newly correlates with — is forwarded iff it
        participates in a complex match of an operator received from
        ``j``, at most once per link.
        """
        sent = self._sent
        for neighbor in self.neighbors:
            if neighbor == sender:
                continue
            store = self.stores.get(neighbor)
            if store is None:
                continue
            outgoing: dict[EventKey, SimpleEvent] = {}
            for operator, matcher in store.matched_for_sensor(
                event.sensor_id, include_covered
            ):
                if matcher is not None:
                    participants = matcher.matches_involving(event)
                else:
                    participants = reference_matches_involving(
                        operator, self.store, event
                    )
                for events in participants.values():
                    for member in events:
                        # inline was_sent — this loop touches every
                        # participant of every matching operator
                        tags = sent.get(member.key)
                        if tags is None or neighbor not in tags:
                            outgoing[member.key] = member
            for key, member in sorted(outgoing.items()):
                self.mark_sent(key, neighbor)
                self.send_event(neighbor, member)

    def stream_forward(
        self,
        event: SimpleEvent,
        sender: str,
        include_covered: bool,
    ) -> None:
        """Per-subscription result-set forwarding (naive / operator
        placement).

        Every stored operator is its own result stream: an event is sent
        once per (operator stream, link), so overlapping subscriptions
        pay repeatedly — exactly the redundancy the paper attributes to
        these approaches.  With ``include_covered`` the streams of
        operators covered *at this node* are generated here from the
        covering operator's incoming stream (Section III-A: the covered
        operator "generates traffic only from the node where coverage
        was detected, to the user's node").
        """
        for neighbor in self.neighbors:
            if neighbor == sender:
                continue
            store = self.stores.get(neighbor)
            if store is None:
                continue
            outgoing: dict[EventKey, tuple[SimpleEvent, list[str]]] = {}
            for operator, matcher in store.matched_for_sensor(
                event.sensor_id, include_covered
            ):
                if matcher is not None:
                    participants = matcher.matches_involving(event)
                else:
                    participants = reference_matches_involving(
                        operator, self.store, event
                    )
                if not participants:
                    continue
                tag = (operator.op_id, neighbor)
                for events in participants.values():
                    for member in events:
                        if not self.was_sent(member.key, tag):
                            self.mark_sent(member.key, tag)
                            entry = outgoing.setdefault(member.key, (member, []))
                            entry[1].append(operator.op_id)
            for key, (member, streams) in sorted(outgoing.items()):
                self.send_event(neighbor, member, tuple(sorted(streams)))
