"""The processing-node base class — storage layout of Figure 2 plus the
machinery every approach shares.

Each node keeps

* ``ads`` — advertisements per neighbour (``DSA_m``) and local sensors;
* ``stores[origin]`` — subscriptions/operators received from each
  neighbour (``S_m``) or from local users (``S_local``), split into the
  *uncovered* set (candidates for forwarding) and the *covered* set
  (redundant for forwarding, still defining correlation needs);
* ``store`` — the shared set ``U`` of unexpired simple events, ordered
  by timestamp;
* per-event forwarded-to flags (the ``sendTo`` array of Algorithm 5),
  so no data unit crosses the same link twice in the same stream.

Protocol behaviour — how subscriptions are filtered/split and how events
are propagated — lives in the subclasses under ``repro.core`` (the
Filter-Split-Forward contribution) and ``repro.baselines``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterable, Iterator

from ..matching.columnar import ColumnarEngine
from ..matching.engine import MatchingEngine
from ..model.advertisements import Advertisement, AdvertisementTable
from ..model.events import EventKey, SimpleEvent
from ..model.matching import matches_involving as reference_matches_involving
from ..model.operators import CorrelationOperator, root_operator
from ..model.subscriptions import (
    AbstractSubscription,
    IdentifiedSubscription,
    Subscription,
)
from ..sketches.messages import SketchPushMessage, SketchSubscribeMessage
from ..subsumption.pairwise import find_cover
from .messages import (
    AdvertisementMessage,
    EventMessage,
    Message,
    OperatorMessage,
    UnsubscribeMessage,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network

LOCAL = AdvertisementTable.LOCAL
"""Origin marker for locally attached sensors / local users."""

_PRUNE_EVERY = 64
"""Lazy store-pruning cadence (events between sweeps)."""


LifecycleSeq = tuple[int, ...]
"""Arrival rank of a stored/dispatched operator record.

Tuples order lexicographically: plain arrivals rank ``(major, minor)``,
entries re-derived during cancellation repair extend the rank of the
record they derive from (``rank + (minor,)``), so a repaired store keeps
exactly the arrival order the counterfactual never-subscribed run would
have produced — which is what the covered/uncovered repair relies on.
"""


class SeqSource:
    """Per-node allocator of :data:`LifecycleSeq` ranks."""

    __slots__ = ("_major", "_prefix", "_minor")

    def __init__(self) -> None:
        self._major = 0
        self._prefix: LifecycleSeq = ()
        self._minor = 0

    def begin_arrival(self, prefix: LifecycleSeq | None = None) -> None:
        """Open a new allocation context.

        ``None`` starts the next top-level arrival; a prefix re-opens
        the context *inside* an existing record's rank (cancellation
        repair re-deriving entries at their counterfactual position).
        """
        if prefix is None:
            self._major += 1
            self._prefix = (self._major,)
        else:
            self._prefix = prefix
        self._minor = 0

    def next(self) -> LifecycleSeq:
        self._minor += 1
        return self._prefix + (self._minor,)


def insert_by_seq(records: list, record) -> None:
    """Place a seq-ranked record at its arrival-order position.

    Plain arrivals carry monotone ranks and append; cancellation repair
    derives entries ranked inside an existing record's prefix, which
    must sit at their counterfactual position for the before-only
    coverage checks to see the right candidates.  Shared by the
    subscription stores and the multi-join dispatch ledger.
    """
    if records and record.seq < records[-1].seq:
        position = len(records)
        while position and records[position - 1].seq > record.seq:
            position -= 1
        records.insert(position, record)
    else:
        records.append(record)


class StoredOperator:
    """One stored operator record: rank, coverage flag, resolved matcher."""

    __slots__ = ("seq", "operator", "covered", "matcher")

    def __init__(
        self,
        seq: LifecycleSeq,
        operator: CorrelationOperator,
        covered: bool,
        matcher: object,
    ) -> None:
        self.seq = seq
        self.operator = operator
        self.covered = covered
        self.matcher = matcher


class SubscriptionStore:
    """``S_m`` of Figure 2: operators received from one origin.

    When the node runs the incremental matching engine, storing an
    operator also retains its :class:`OperatorMatcher` — from then on
    every ingested event is indexed as it arrives instead of being
    rediscovered by scans; removing the operator again (query
    cancellation) releases the matcher.

    Records keep their arrival rank (:data:`LifecycleSeq`) so that
    cancellation repair can re-evaluate coverage decisions against
    exactly the candidates each operator would have seen had the
    cancelled subscription never existed.
    """

    def __init__(
        self,
        engine: MatchingEngine | None = None,
        seq_source: SeqSource | None = None,
    ) -> None:
        self._records: list[StoredOperator] = []
        self._by_sensor: dict[str, list[StoredOperator]] = {}
        self._op_ids: dict[str, int] = {}
        self._engine = engine
        self._seq_source = seq_source if seq_source is not None else SeqSource()

    @property
    def uncovered(self) -> list[CorrelationOperator]:
        """Uncovered operators in arrival order (forwarding candidates)."""
        return [r.operator for r in self._records if not r.covered]

    @property
    def covered(self) -> list[CorrelationOperator]:
        return [r.operator for r in self._records if r.covered]

    def add(
        self,
        operator: CorrelationOperator,
        covered: bool,
        seq: LifecycleSeq | None = None,
    ) -> StoredOperator:
        """Store an operator; ``seq`` overrides the rank (repair only)."""
        # Resolve the operator's matcher once at store time; the event
        # hot path then queries it with zero lookup layers.
        matcher = (
            self._engine.retain(operator) if self._engine is not None else None
        )
        record = StoredOperator(
            seq if seq is not None else self._seq_source.next(),
            operator,
            covered,
            matcher,
        )
        insert_by_seq(self._records, record)
        self._op_ids[operator.op_id] = self._op_ids.get(operator.op_id, 0) + 1
        for sensor_id in sorted(operator.sensors):
            self._by_sensor.setdefault(sensor_id, []).append(record)
        return record

    def has_operator(self, op_id: str) -> bool:
        """Whether a record with this operator id is currently stored.

        The reliability layer's duplicate guard: a soft-state re-offer
        (or a redundantly delivered copy) of an operator this store
        already holds must not be re-handled.
        """
        return op_id in self._op_ids

    def remove_subscription(self, sub_id: str) -> list[StoredOperator]:
        """Drop every record of ``sub_id``; releases retained matchers."""
        removed = [
            r for r in self._records if r.operator.subscription_id == sub_id
        ]
        if not removed:
            return []
        self._records = [
            r for r in self._records if r.operator.subscription_id != sub_id
        ]
        sensors = {sid for r in removed for sid in r.operator.sensors}
        for sensor_id in sorted(sensors):
            bucket = [
                r
                for r in self._by_sensor.get(sensor_id, ())
                if r.operator.subscription_id != sub_id
            ]
            if bucket:
                self._by_sensor[sensor_id] = bucket
            else:
                self._by_sensor.pop(sensor_id, None)
        for record in removed:
            count = self._op_ids.get(record.operator.op_id, 0) - 1
            if count > 0:
                self._op_ids[record.operator.op_id] = count
            else:
                self._op_ids.pop(record.operator.op_id, None)
        if self._engine is not None:
            for record in removed:
                self._engine.release(record.operator)
        return removed

    def records(self) -> list[StoredOperator]:
        """Every record in arrival order (cancellation repair walks it)."""
        return list(self._records)

    def uncovered_before(self, seq: LifecycleSeq) -> list[CorrelationOperator]:
        """Uncovered operators that arrived strictly before ``seq``."""
        return [
            r.operator for r in self._records if not r.covered and r.seq < seq
        ]

    def ops_for_sensor(
        self, sensor_id: str, include_covered: bool
    ) -> Iterator[CorrelationOperator]:
        """Operators with a slot drawing from ``sensor_id``.

        The event path only needs operators a new event could concern —
        this index keeps per-event work proportional to the relevant
        operators instead of the whole store.
        """
        for record in self._by_sensor.get(sensor_id, ()):
            if include_covered or not record.covered:
                yield record.operator

    def matched_for_sensor(
        self, sensor_id: str, include_covered: bool
    ) -> Iterator[tuple[CorrelationOperator, object]]:
        """(operator, matcher) pairs for the incremental event path."""
        for record in self._by_sensor.get(sensor_id, ()):
            if include_covered or not record.covered:
                yield record.operator, record.matcher

    def same_signature_uncovered(
        self, operator: CorrelationOperator
    ) -> list[CorrelationOperator]:
        """The comparison set for subsumption checks (arrival order)."""
        return [
            r.operator
            for r in self._records
            if not r.covered and r.operator.signature == operator.signature
        ]

    def all_operators(self) -> Iterator[CorrelationOperator]:
        for record in self._records:
            if not record.covered:
                yield record.operator
        for record in self._records:
            if record.covered:
                yield record.operator

    def __len__(self) -> int:
        return len(self._records)


def _make_engine(
    mode: str, store
) -> "MatchingEngine | ColumnarEngine | None":
    """Node-level matcher implementation for a ``Network.matching`` mode."""
    if mode == "incremental":
        return MatchingEngine(store)
    if mode == "columnar":
        return ColumnarEngine(store)
    return None


class Node:
    """Base processing node; subclasses implement the protocol hooks."""

    def __init__(self, node_id: str, network: "Network") -> None:
        self.node_id = node_id
        self.network = network
        self.ads = AdvertisementTable()
        self.stores: dict[str, SubscriptionStore] = {}
        self.local_subscriptions: list[tuple[Subscription, CorrelationOperator]] = []
        self._local_by_sensor: dict[
            str, list[tuple[Subscription, CorrelationOperator]]
        ] = {}
        from .eventstore import EventStore  # local import avoids cycles

        self.store = EventStore(network.validity)
        # The incremental matching engine mirrors the event store; the
        # columnar engine shares slot timelines across operators
        # (Network(matching="columnar")); the reference matcher remains
        # selectable (Network(matching="reference")) as the oracle for
        # equivalence tests and as the recompute-on-arrival baseline
        # for benchmarks.
        self.matching: MatchingEngine | ColumnarEngine | None = _make_engine(
            network.matching, self.store
        )
        self._columnar: ColumnarEngine | None = (
            self.matching if isinstance(self.matching, ColumnarEngine) else None
        )
        self._sent: dict[EventKey, set[Hashable]] = {}
        self._adds_since_prune = 0
        self._seq_source = SeqSource()
        # Reverse-path memory for query cancellation and soft-state
        # refresh: per subscription, the exact operator pieces this node
        # forwarded to each neighbour.  An UnsubscribeMessage retraces
        # these edges; a refresh round re-offers the pieces.
        self._forwarded_subs: dict[
            str, dict[str, dict[str, CorrelationOperator]]
        ] = {}
        # Operator pieces adopted under a compiled placement plan.  A
        # plan may fold a branch back along its trunk (delayed split),
        # so completed matches must travel to the neighbour the branch
        # events arrived from — the one case the forwarding loops'
        # neighbour==sender skip must not apply to.  Heuristically
        # placed operators never need this (the operator tree is a
        # tree; events climb strictly toward the consumer), so the set
        # stays empty outside compiled placements and the skip keeps
        # its historical behaviour bit-for-bit.
        self._planned_ops: set[str] = set()
        # Soft-state clock: last refresh epoch seen per sensor (0 =
        # only the setup flood).  Dedupes refresh floods and drives
        # advertisement expiry.
        self._ad_epochs: dict[str, int] = {}
        # Local advertisements parked during a broker outage; recovery
        # re-attaches them through the re-flood path.
        self._crashed_locals: list[Advertisement] = []

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def neighbors(self) -> list[str]:
        return self.network.neighbors(self.node_id)

    @property
    def now(self) -> float:
        return self.network.sim.now

    def receive_batch(self, batch: list[tuple[Message, str]]) -> None:
        """Drain one same-instant delivery batch in arrival order.

        The plain transport coalesces consecutive same-destination
        deliveries of one timestamp into a single call (see
        ``network._DeliveryFlush``); semantics are exactly sequential
        :meth:`receive` calls.
        """
        for message, origin in batch:
            self.receive(message, origin)

    def receive(self, message: Message, origin: str) -> None:
        """Dispatch a delivered message to the protocol hooks.

        Events are checked first: they outnumber the other kinds by
        orders of magnitude once a run is flowing.
        """
        if isinstance(message, EventMessage):
            self.handle_event(message.event, origin, message.streams)
        elif isinstance(message, OperatorMessage):
            if self.network.reliability is not None and self.knows_operator(
                message.operator.op_id
            ):
                # Soft-state re-offer (or redundant copy) of an operator
                # already stored here: re-handling would duplicate
                # records and forwarding — duplicates stay invisible.
                return
            self._seq_source.begin_arrival()
            if message.plan is not None:
                self.adopt_planned(message.operator, origin, message.plan)
            else:
                self.handle_operator(message.operator, origin)
        elif isinstance(message, UnsubscribeMessage):
            self.handle_unsubscribe(message.subscription_id, origin)
        elif isinstance(message, SketchSubscribeMessage):
            self.network.sketches.handle_subscribe(self, message, origin)
        elif isinstance(message, SketchPushMessage):
            self.network.sketches.handle_push(self, message, origin)
        elif isinstance(message, AdvertisementMessage):
            if message.refresh_epoch is not None and not message.retract:
                self.handle_refresh_advertisement(
                    message.advertisement, origin, message.refresh_epoch
                )
            elif message.retract:
                self.handle_retraction(message.advertisement, origin)
            else:
                self.handle_advertisement(message.advertisement, origin)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown message {message!r}")

    def store_for(self, origin: str) -> SubscriptionStore:
        store = self.stores.get(origin)
        if store is None:
            store = self.stores[origin] = SubscriptionStore(
                self.matching, self._seq_source
            )
        return store

    def matches_involving(
        self, operator: CorrelationOperator, event: SimpleEvent
    ) -> dict[str, list[SimpleEvent]]:
        """Participants of matches ``event`` takes part in, for ``operator``.

        Dispatches to the incremental engine (default) or the reference
        window-scanning matcher (``Network(matching="reference")``);
        both are exact and return identical participants.
        """
        if self.matching is not None:
            return self.matching.matches_involving(operator, event)
        return reference_matches_involving(operator, self.store, event)

    # ------------------------------------------------------------------
    # sending helpers
    # ------------------------------------------------------------------
    def send_operator(
        self,
        neighbor: str,
        operator: CorrelationOperator,
        plan: object | None = None,
    ) -> None:
        self._forwarded_subs.setdefault(
            operator.subscription_id, {}
        ).setdefault(neighbor, {})[operator.op_id] = operator
        self.network.send(
            self.node_id, neighbor, OperatorMessage(operator, plan=plan)
        )

    def knows_operator(self, op_id: str) -> bool:
        """Whether any store currently holds a record of ``op_id``."""
        return any(store.has_operator(op_id) for store in self.stores.values())

    def send_event(
        self, neighbor: str, event: SimpleEvent, streams: tuple[str, ...] = ()
    ) -> None:
        self.network.send(self.node_id, neighbor, EventMessage(event, streams))

    def was_sent(self, key: EventKey, tag: Hashable) -> bool:
        tags = self._sent.get(key)
        return tags is not None and tag in tags

    def mark_sent(self, key: EventKey, tag: Hashable) -> None:
        self._sent.setdefault(key, set()).add(tag)

    # ------------------------------------------------------------------
    # injection entry points
    # ------------------------------------------------------------------
    def attach_sensor(self, advertisement: Advertisement) -> None:
        """Algorithm 1, lines 2-7: local sensor appears, flood its DSA.

        Also the churn *re-join* path: a sensor whose advertisement was
        retracted on departure is new again, so the same flood carries
        its return through the whole network (the re-flood), lifting the
        local event fence on the way.
        """
        self.store.unfence_sensor(advertisement.sensor_id)
        lane = self.network.sketches
        if lane is not None:
            lane.unfence_sensor(self.node_id, advertisement.sensor_id)
        if not self.ads.add_local(advertisement):
            return
        for neighbor in self.neighbors:
            self.network.send(
                self.node_id, neighbor, AdvertisementMessage(advertisement)
            )

    def detach_sensor(self, sensor_id: str) -> None:
        """Churn leave: retract a locally attached sensor everywhere.

        The inverse of :meth:`attach_sensor`: the advertisement is
        removed from the local table, the sensor's stored history is
        fenced, and a retraction floods outward so every other node does
        the same (:meth:`handle_retraction`).  Unknown or already
        detached sensors are a no-op.
        """
        advertisement = self.ads.get(sensor_id)
        if advertisement is None:
            return
        self.ads.remove(sensor_id)
        self.fence_sensor_state(sensor_id)
        for neighbor in self.neighbors:
            self.network.send(
                self.node_id,
                neighbor,
                AdvertisementMessage(advertisement, retract=True),
            )

    def publish(self, event: SimpleEvent) -> None:
        """A locally attached sensor produced a reading."""
        lane = self.network.sketches
        if lane is not None:
            lane.observe_local(self.node_id, event)
        self.handle_event(event, LOCAL, ())

    def subscribe(
        self, subscription: Subscription, plan: object | None = None
    ) -> None:
        """Register a local user subscription.

        Resolves abstract subscriptions against the advertisement table
        (local knowledge only — the table was filled by flooding) and
        performs the absent-sources check of Algorithm 3, line 3.

        With a compiled ``plan`` the root operator is adopted along the
        plan's routing table (:meth:`adopt_planned`) instead of the
        approach's heuristic ``handle_operator``; local delivery and
        the absent-sources check are identical either way.
        """
        root = self.build_root_operator(subscription)
        if root is None:
            self.network.dropped_subscriptions.append(subscription.sub_id)
            return
        lane = self.network.sketches
        if lane is not None and lane.adopt(self, subscription, root):
            # Sketch-eligible in approximate mode: the lane answers it
            # from merged summaries — no operator flood, no matcher,
            # no raw event forwarding for this subscription.
            return
        self.local_subscriptions.append((subscription, root))
        # The whole root operator drives the final local check even when
        # handle_operator stores only fragments of it; retain its
        # matcher once here (released again on cancellation).
        matcher = (
            self.matching.retain(root) if self.matching is not None else None
        )
        for sensor_id in sorted(root.sensors):
            self._local_by_sensor.setdefault(sensor_id, []).append(
                (subscription, root, matcher)
            )
        self._seq_source.begin_arrival()
        if plan is not None:
            self.adopt_planned(root, LOCAL, plan)
        else:
            self.handle_operator(root, LOCAL)

    def build_root_operator(
        self, subscription: Subscription
    ) -> CorrelationOperator | None:
        """Root operator, or None when some source is absent."""
        if isinstance(subscription, IdentifiedSubscription):
            if not all(self.ads.knows(s) for s in subscription.sensor_ids):
                return None
            return root_operator(subscription, self.node_id)
        assert isinstance(subscription, AbstractSubscription)
        resolved = subscription.resolve(self.ads)
        if any(not ads for ads in resolved.values()):
            return None
        sensors = {
            attr: [ad.sensor_id for ad in ads] for attr, ads in resolved.items()
        }
        return root_operator(subscription, self.node_id, sensors)

    def adopt_planned(
        self, operator: CorrelationOperator, origin: str, plan
    ) -> None:
        """Store and forward an operator piece under a compiled plan.

        The plan-routed analogue of ``handle_operator``: the piece is
        stored uncovered in the origin store (so the shared event path
        gates on it exactly like a heuristically placed piece, and the
        covered-only cancellation repair never touches it), projected
        per the plan's routing table, and forwarded.  ``plan`` is
        opaque here — any object with ``next_hops(node_id, sensors)``
        (built by ``repro.placement``, which sits above this layer).

        Reverse-path memory is recorded via :meth:`send_operator`, so
        ``UnsubscribeMessage`` teardown retraces planned placements for
        free.
        """
        store = self.store_for(origin)
        if store.has_operator(operator.op_id):
            return
        store.add(operator, covered=False)
        self._planned_ops.add(operator.op_id)
        for neighbor, subset in plan.next_hops(self.node_id, operator.sensors):
            piece = operator.project_sensors(subset)
            if piece is not None:
                self.send_operator(neighbor, piece, plan=plan)

    # ------------------------------------------------------------------
    # query cancellation (the subscription lifecycle's retire edge)
    # ------------------------------------------------------------------
    def unsubscribe(self, sub_id: str) -> bool:
        """Cancel a *local* user subscription.

        Removes the local delivery registration (no further complex
        events reach the user, effective immediately) and starts the
        reverse-path operator removal: an :class:`UnsubscribeMessage`
        retraces every link this subscription's operators were forwarded
        over, deleting them and repairing coverage decisions so the
        remaining network state is the state of a run that never saw the
        subscription.  Returns False when the subscription is not
        locally registered (never submitted here, dropped for absent
        sources, or already cancelled).
        """
        lane = self.network.sketches
        if lane is not None and lane.forget(self.node_id, sub_id):
            return True
        removed = [
            entry for entry in self.local_subscriptions if entry[0].sub_id == sub_id
        ]
        if not removed:
            return False
        self.local_subscriptions = [
            entry for entry in self.local_subscriptions if entry[0].sub_id != sub_id
        ]
        for sensor_id in sorted({sid for _, root in removed for sid in root.sensors}):
            bucket = [
                entry
                for entry in self._local_by_sensor.get(sensor_id, ())
                if entry[0].sub_id != sub_id
            ]
            if bucket:
                self._local_by_sensor[sensor_id] = bucket
            else:
                self._local_by_sensor.pop(sensor_id, None)
        if self.matching is not None:
            for _, root in removed:
                self.matching.release(root)
        self.retire_subscription(sub_id)
        return True

    def retire_subscription(self, sub_id: str) -> None:
        """Start the network-wide teardown (protocol hook).

        The distributed approaches remove the locally stored root and
        chase the forwarded fragments; the centralized baseline unicasts
        the retirement to the centre instead.
        """
        self.handle_unsubscribe(sub_id, LOCAL)

    def handle_unsubscribe(self, sub_id: str, origin: str) -> None:
        """Reverse-path removal step at one node.

        Drops every stored operator of ``sub_id`` received from
        ``origin`` (releasing matchers), repairs the origin store's
        coverage decisions, and forwards the retirement to every
        neighbour this node sent the subscription's operators to.
        Unknown subscriptions are a no-op — the message only travels
        edges the operators actually travelled, but tolerance keeps the
        handler safe under races with churn.
        """
        store = self.stores.get(origin)
        removed = store.remove_subscription(sub_id) if store is not None else []
        for record in removed:
            self.on_operator_removed(record.operator)
        if removed:
            self.repair_coverage(store, origin)
        for neighbor in sorted(self._forwarded_subs.pop(sub_id, ())):
            self.network.send(self.node_id, neighbor, UnsubscribeMessage(sub_id))

    def repair_coverage(self, store: SubscriptionStore, origin: str) -> None:
        """Re-evaluate the store's covered operators after a removal.

        Walks the records in arrival order; a covered operator whose
        coverage no longer holds against the uncovered operators that
        arrived *before* it (exactly the candidates its original
        arrival-time check saw, minus the removed subscription) is
        restored to uncovered and forwarded as its original arrival
        would have forwarded it.  The walk is promote-only — with
        arrival-ordered candidates a removal can never make an
        uncovered operator covered — so one ordered pass converges.
        """
        for record in store.records():
            if not record.covered:
                continue
            if self.recheck_coverage(record, store):
                continue
            record.covered = False
            self._seq_source.begin_arrival(prefix=record.seq)
            self.on_operator_uncovered(record, origin, store)

    def recheck_coverage(self, record: StoredOperator, store: SubscriptionStore) -> bool:
        """Whether ``record`` is still covered (protocol hook).

        The default is the pair-wise check of the operator-placement and
        multi-join baselines; Filter-Split-Forward overrides it with the
        set-subsumption check.  Approaches that never mark operators
        covered never reach this hook.
        """
        candidates = [
            op
            for op in store.uncovered_before(record.seq)
            if op.signature == record.operator.signature
        ]
        return find_cover(record.operator, candidates) is not None

    def forward_split(self, operator: CorrelationOperator, origin: str) -> None:
        """Simple splitting: project on each neighbour's advertised data
        space and send (Algorithm 3, lines 7-9) — the canonical forward
        step shared by the simple-splitting approaches' arrival paths
        and by cancellation repair, which must forward restored
        operators exactly as their arrival would have."""
        exclude = () if origin == LOCAL else (origin,)
        for neighbor, piece in self.split_targets(operator, exclude).items():
            self.send_operator(neighbor, piece)

    def on_operator_uncovered(
        self, record: StoredOperator, origin: str, store: SubscriptionStore
    ) -> None:
        """Forward a repair-restored operator (protocol hook).

        Default: simple splitting along the reverse advertisement paths,
        exactly the uncovered branch of the simple-splitting approaches.
        """
        self.forward_split(record.operator, origin)

    def on_operator_removed(self, operator: CorrelationOperator) -> None:
        """Per-operator teardown hook (multi-join clears roles/rings)."""

    # ------------------------------------------------------------------
    # protocol hooks
    # ------------------------------------------------------------------
    def handle_advertisement(self, advertisement: Advertisement, origin: str) -> None:
        """Algorithm 1, lines 8-13: store and flood onwards.

        A re-join advertisement of a previously retracted sensor takes
        exactly this path (the retraction removed the table entry, so
        the flood does not stop early) and lifts the event fence: events
        the sensor publishes after rejoining are stored and matched
        again.
        """
        self.store.unfence_sensor(advertisement.sensor_id)
        lane = self.network.sketches
        if lane is not None:
            lane.unfence_sensor(self.node_id, advertisement.sensor_id)
        if not self.ads.add(origin, advertisement):
            return
        for neighbor in self.neighbors:
            if neighbor != origin:
                self.network.send(
                    self.node_id, neighbor, AdvertisementMessage(advertisement)
                )

    def handle_retraction(self, advertisement: Advertisement, origin: str) -> None:
        """Churn leave, remote side: forget, fence and flood onwards.

        Mirrors :meth:`handle_advertisement` for departures: the reverse
        advertisement path entry is removed (so a later re-join floods
        through again), the departed sensor's stored events are fenced
        out of matching, and the retraction continues through the tree.
        The duplicate guard is the table itself — an unknown sensor
        means the flood already passed here.
        """
        if not self.ads.remove(advertisement.sensor_id):
            return
        self.fence_sensor_state(advertisement.sensor_id)
        for neighbor in self.neighbors:
            if neighbor != origin:
                self.network.send(
                    self.node_id,
                    neighbor,
                    AdvertisementMessage(advertisement, retract=True),
                )

    def fence_sensor_state(self, sensor_id: str) -> None:
        """Drop a departed sensor's events from ``U`` and the per-event
        forwarded-to flags (the matching engine mirrors the drop through
        the store's listener protocol).  The sketch lane mirrors the
        fence too, so the next push round ages the sensor out of every
        merged digest and approximate answers never count it."""
        for key in self.store.fence_sensor(sensor_id, self.now):
            self._sent.pop(key, None)
        lane = self.network.sketches
        if lane is not None:
            lane.fence_sensor(self.node_id, sensor_id, self.now)

    # ------------------------------------------------------------------
    # soft state & crash semantics (reliability layer)
    # ------------------------------------------------------------------
    def handle_refresh_advertisement(
        self, advertisement: Advertisement, origin: str, epoch: int
    ) -> None:
        """A soft-state refresh copy of an advertisement arrived.

        Refresh floods dedupe on the per-sensor epoch clock rather than
        on the advertisement table: the table would stop the flood at
        the first node that still knows the sensor, and the whole point
        of a refresh round is to get *past* such nodes to a recovered,
        state-less broker behind them.  Each round therefore crosses
        every link once per sensor — the steady-state overhead
        ``refresh_units`` meters.
        """
        sensor_id = advertisement.sensor_id
        if self._ad_epochs.get(sensor_id, 0) >= epoch:
            return
        self._ad_epochs[sensor_id] = epoch
        self.store.unfence_sensor(sensor_id)
        self.ads.add(origin, advertisement)
        for neighbor in self.neighbors:
            if neighbor != origin:
                self.network.send(
                    self.node_id,
                    neighbor,
                    AdvertisementMessage(advertisement, refresh_epoch=epoch),
                )

    def refresh_soft_state(self, epoch: int, expiry_rounds: int) -> None:
        """One refresh round at this node (reliability layer only).

        Expires remote advertisements that missed ``expiry_rounds``
        consecutive rounds, re-floods the local ones tagged with this
        epoch, and re-offers every operator piece previously forwarded
        (receivers that still hold a piece ignore the copy; a recovered
        broker re-learns it).  This is how routing and subscription
        state heals after losses and outages.
        """
        expired = [
            sensor_id
            for origin in sorted(self.ads.origins())
            if origin != LOCAL
            for sensor_id in sorted(self.ads.from_origin(origin))
            if self._ad_epochs.get(sensor_id, 0) < epoch - expiry_rounds
        ]
        for sensor_id in expired:
            self.ads.remove(sensor_id)
            self._ad_epochs.pop(sensor_id, None)
            self.fence_sensor_state(sensor_id)
        for sensor_id, advertisement in sorted(
            self.ads.from_origin(LOCAL).items()
        ):
            self._ad_epochs[sensor_id] = epoch
            for neighbor in self.neighbors:
                self.network.send(
                    self.node_id,
                    neighbor,
                    AdvertisementMessage(advertisement, refresh_epoch=epoch),
                )
        for sub_id in sorted(self._forwarded_subs):
            per_neighbor = self._forwarded_subs[sub_id]
            for neighbor in sorted(per_neighbor):
                pieces = per_neighbor[neighbor]
                for op_id in sorted(pieces):
                    self.network.send(
                        self.node_id,
                        neighbor,
                        OperatorMessage(pieces[op_id], refresh_epoch=epoch),
                    )

    def crash(self) -> None:
        """Broker failure: all volatile state is lost.

        Advertisement table, subscription stores, event store, matcher
        state, forwarded-to flags and reverse-path memory are gone —
        exactly what a process crash loses.  Only the fact of which
        sensors are physically attached survives (the hardware is still
        wired); recovery re-advertises them through the normal re-flood
        path.
        """
        self._crashed_locals = [
            ad for _, ad in sorted(self.ads.from_origin(LOCAL).items())
        ]
        from .eventstore import EventStore  # local import avoids cycles

        self.ads = AdvertisementTable()
        self.stores = {}
        self.local_subscriptions = []
        self._local_by_sensor = {}
        self.store = EventStore(self.network.validity)
        self.matching = _make_engine(self.network.matching, self.store)
        self._columnar = (
            self.matching if isinstance(self.matching, ColumnarEngine) else None
        )
        self._sent = {}
        self._adds_since_prune = 0
        self._seq_source = SeqSource()
        self._forwarded_subs = {}
        self._ad_epochs = {}
        self.on_crash()

    def recover(self) -> None:
        """Broker recovery: re-enter through the re-flood path.

        Local sensors re-advertise exactly like a churn re-join
        (:meth:`attach_sensor`); remote advertisements and forwarded
        operators return with the neighbours' next refresh round.
        """
        for advertisement in self._crashed_locals:
            self.attach_sensor(advertisement)
        self._crashed_locals = []

    def on_crash(self) -> None:
        """Subclass hook: drop approach-specific volatile state."""

    def handle_operator(self, operator: CorrelationOperator, origin: str) -> None:
        raise NotImplementedError

    def handle_event(
        self, event: SimpleEvent, origin: str, streams: tuple[str, ...]
    ) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared event-path building blocks
    # ------------------------------------------------------------------
    def ingest(self, event: SimpleEvent) -> bool:
        """Insert into ``U``; False for duplicates/expired (drop & stop)."""
        if not self.store.add(event, self.now):
            return False
        self._adds_since_prune += 1
        if self._adds_since_prune >= _PRUNE_EVERY:
            self._adds_since_prune = 0
            for key in self.store.prune(self.now):
                self._sent.pop(key, None)
        return True

    def deliver_local_matches(self, event: SimpleEvent) -> None:
        """Final, exact matching against whole local subscriptions.

        Algorithm 5, line 14-15: for ``j == n`` the whole local
        subscriptions are checked and matching complex events delivered
        to the user.  Participants are logged for the recall metric.
        """
        columnar = self._columnar
        for subscription, root, matcher in self._local_by_sensor.get(
            event.sensor_id, ()
        ):
            if columnar is not None and matcher is not None:
                # Dict-free hot path: the flat participant list comes
                # straight from the shared memoised window lists.
                delivered = columnar.delivered_members(matcher, event)
                if delivered is None:
                    continue
            else:
                if matcher is not None:
                    participants = matcher.matches_involving(event)
                else:
                    participants = reference_matches_involving(
                        root, self.store, event
                    )
                if not participants:
                    continue
                delivered = [
                    e for events in participants.values() for e in events
                ]
            self.network.delivery.record_events(subscription.sub_id, delivered)
            self.network.delivery.record_complex(subscription.sub_id)

    def split_targets(
        self, operator: CorrelationOperator, exclude: Iterable[str] = ()
    ) -> dict[str, CorrelationOperator]:
        """Algorithm 3, lines 7-9: project the operator per neighbour.

        Partitions the operator's sensors by the reverse advertisement
        path and returns ``{neighbour: projected operator}`` — the
        deterministic split the paper uses.  Locally attached sensors
        need no forwarding and are skipped, as are excluded origins
        (normally the one the operator came from).
        """
        partition = self.ads.partition_by_origin(operator.sensors)
        partition.pop(LOCAL, None)
        for origin in exclude:
            partition.pop(origin, None)
        targets: dict[str, CorrelationOperator] = {}
        for neighbor, sensor_ids in sorted(partition.items()):
            piece = operator.project_sensors(sensor_ids)
            if piece is not None:
                targets[neighbor] = piece
        return targets

    def pubsub_forward(
        self,
        event: SimpleEvent,
        sender: str,
        include_covered: bool = False,
    ) -> None:
        """Per-neighbour publish/subscribe forwarding (Algorithm 5).

        For every neighbour ``j`` (except the sender), the event — and
        any stored events it newly correlates with — is forwarded iff it
        participates in a complex match of an operator received from
        ``j``, at most once per link.
        """
        sent = self._sent
        columnar = self._columnar
        planned = self._planned_ops
        for neighbor in self.neighbors:
            if neighbor == sender and not planned:
                continue
            store = self.stores.get(neighbor)
            if store is None:
                continue
            outgoing: dict[EventKey, SimpleEvent] = {}
            pairs = store.matched_for_sensor(event.sensor_id, include_covered)
            if neighbor == sender:
                # Only a compiled plan's fold-back return path may send
                # an event back where it came from (see _planned_ops);
                # per-link dedup still bounds it to once per link.
                pairs = (
                    (operator, matcher)
                    for operator, matcher in pairs
                    if operator.op_id in planned
                )
            if columnar is not None:
                # Lane-shared hot path: one stream of members across all
                # matching operators, identical window lists offered once.
                for member in columnar.forward_members(pairs, event):
                    tags = sent.get(member.key)
                    if tags is None or neighbor not in tags:
                        outgoing[member.key] = member
            else:
                for operator, matcher in pairs:
                    if matcher is not None:
                        participants = matcher.matches_involving(event)
                    else:
                        participants = reference_matches_involving(
                            operator, self.store, event
                        )
                    for events in participants.values():
                        for member in events:
                            # inline was_sent — this loop touches every
                            # participant of every matching operator
                            tags = sent.get(member.key)
                            if tags is None or neighbor not in tags:
                                outgoing[member.key] = member
            for key, member in sorted(outgoing.items()):
                self.mark_sent(key, neighbor)
                self.send_event(neighbor, member)

    def stream_forward(
        self,
        event: SimpleEvent,
        sender: str,
        include_covered: bool,
    ) -> None:
        """Per-subscription result-set forwarding (naive / operator
        placement).

        Every stored operator is its own result stream: an event is sent
        once per (operator stream, link), so overlapping subscriptions
        pay repeatedly — exactly the redundancy the paper attributes to
        these approaches.  With ``include_covered`` the streams of
        operators covered *at this node* are generated here from the
        covering operator's incoming stream (Section III-A: the covered
        operator "generates traffic only from the node where coverage
        was detected, to the user's node").
        """
        planned = self._planned_ops
        for neighbor in self.neighbors:
            if neighbor == sender and not planned:
                continue
            store = self.stores.get(neighbor)
            if store is None:
                continue
            outgoing: dict[EventKey, tuple[SimpleEvent, list[str]]] = {}
            pairs = store.matched_for_sensor(event.sensor_id, include_covered)
            if neighbor == sender:
                # Fold-back return path of a compiled plan: only
                # plan-adopted pieces may route an event back to its
                # sender (see _planned_ops); the per-stream sent marks
                # bound any bounce to one hop.
                pairs = (
                    (operator, matcher)
                    for operator, matcher in pairs
                    if operator.op_id in planned
                )
            for operator, matcher in pairs:
                if matcher is not None:
                    participants = matcher.matches_involving(event)
                else:
                    participants = reference_matches_involving(
                        operator, self.store, event
                    )
                if not participants:
                    continue
                tag = (operator.op_id, neighbor)
                for events in participants.values():
                    for member in events:
                        if not self.was_sent(member.key, tag):
                            self.mark_sent(member.key, tag)
                            entry = outgoing.setdefault(member.key, (member, []))
                            entry[1].append(operator.op_id)
            for key, (member, streams) in sorted(outgoing.items()):
                self.send_event(neighbor, member, tuple(sorted(streams)))
