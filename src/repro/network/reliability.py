"""Unreliable transport lane + opt-in hop-by-hop reliability.

When a :class:`~repro.network.faults.FaultPlan` is active (or a
:class:`ReliabilityConfig` is passed), :meth:`Network.send` /
:meth:`Network.unicast` delegate to one :class:`Transport` instead of
delivering inline.  The transport

* draws per-link drop/delay/jitter from a dedicated simulator stream
  (``faults:<plan.seed>``, derived via :mod:`repro.seeding` — runs stay
  PYTHONHASHSEED-independent and sharded == serial);
* discards deliveries addressed to a crashed broker at fire time;
* and, with reliability enabled, runs **acked transfers** for control
  traffic (advertisements, operators, unsubscribes): each transmission
  is acknowledged hop-by-hop; a missing ack retransmits after
  ``ack_timeout * backoff**attempt`` up to ``max_retries`` times, then
  the transfer is abandoned.  Retransmitted copies bill the meter like
  the original *plus* ``retransmission_units`` — the reliability
  overhead figure 18 plots.  Receivers deduplicate by transfer id, so
  an at-least-once wire yields at-most-once delivery and duplicate
  deliveries stay invisible to the protocol layer.  Event messages are
  never acked: recall-vs-loss is the measured trade-off.

Acks travel the reverse link under the same fault model but are *free*
(no meter charge): the paper's unit accounting counts data-plane
payloads, and an ack is a constant-size control frame.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .messages import (
    AdvertisementMessage,
    Message,
    OperatorMessage,
    UnsubscribeMessage,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .faults import FaultPlan, LinkFault
    from .network import Network

LinkPath = tuple[tuple[str, str], ...]
"""The directed links one transmission crosses, in order (one entry for
a neighbour send, the whole route for the centralized unicast)."""


def is_control(message: Message) -> bool:
    """Whether the reliability layer covers this message kind."""
    return isinstance(
        message, (AdvertisementMessage, OperatorMessage, UnsubscribeMessage)
    )


@dataclass(frozen=True, slots=True)
class ReliabilityConfig:
    """Opt-in reliability knobs for control traffic + soft state.

    ``ack_timeout``/``backoff``/``max_retries`` parameterise the
    retransmission schedule (attempt ``k`` waits
    ``ack_timeout * backoff**k``); ``backoff >= 1`` guarantees retries
    never schedule into the past.  ``refresh_interval`` is the period of
    the soft-state refresh rounds (advertisement re-floods and
    subscription re-sends) and ``expiry_rounds`` how many missed rounds
    expire a remote advertisement — the soft-state lifetime.
    """

    ack_timeout: float = 1.0
    backoff: float = 2.0
    max_retries: int = 4
    refresh_interval: float = 60.0
    expiry_rounds: int = 2

    def __post_init__(self) -> None:
        if math.isnan(self.ack_timeout) or self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if math.isnan(self.backoff) or self.backoff < 1:
            raise ValueError(
                "backoff must be >= 1 (retries must never schedule "
                "in the past)"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if math.isnan(self.refresh_interval) or self.refresh_interval <= 0:
            raise ValueError("refresh_interval must be positive")
        if self.expiry_rounds < 1:
            raise ValueError("expiry_rounds must be >= 1")

    def retry_delay(self, attempt: int) -> float:
        """Backoff before retransmission number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return self.ack_timeout * self.backoff**attempt


class _Transfer:
    """One acked control transfer (possibly multi-hop for unicast)."""

    __slots__ = (
        "tid",
        "src",
        "dst",
        "origin",
        "message",
        "links",
        "hops",
        "attempts",
        "acked",
        "timer",
    )

    def __init__(
        self,
        tid: int,
        src: str,
        dst: str,
        origin: str,
        message: Message,
        links: LinkPath,
        hops: int,
    ) -> None:
        self.tid = tid
        self.src = src
        self.dst = dst
        self.origin = origin
        self.message = message
        self.links = links
        self.hops = hops
        self.attempts = 0
        self.acked = False
        self.timer = None


class Transport:
    """The fault-and-reliability lane of one :class:`Network`.

    Built only when a truthy plan or a reliability config is present;
    without it ``Network.send`` keeps its historical inline path, byte
    for byte.
    """

    def __init__(
        self,
        network: "Network",
        plan: "FaultPlan",
        reliability: ReliabilityConfig | None,
    ) -> None:
        self.network = network
        self.plan = plan
        self.reliability = reliability
        self.rng = network.sim.rng(f"faults:{plan.seed}")
        self._overrides = plan.link_faults()
        self._default = plan.default
        self._tid = itertools.count()
        self._live: dict[int, _Transfer] = {}
        self._by_src: dict[str, set[int]] = {}
        self._delivered: set[int] = set()
        self.abandoned_transfers = 0

    # ------------------------------------------------------------------
    # fault draws
    # ------------------------------------------------------------------
    def _fault(self, link: tuple[str, str]) -> "LinkFault":
        return self._overrides.get(link, self._default)

    def _link_delay(self, fault: "LinkFault") -> float:
        delay = self.network.latency + fault.delay
        if fault.jitter:
            delay += fault.jitter * float(self.rng.random())
        return delay

    def _transit(self, links: LinkPath) -> float | None:
        """Total transit time over ``links``, or None when dropped.

        One drop draw per link; the walk stops at the first loss (no
        further draws — deterministic, since the agenda serialises every
        draw of the single stream).
        """
        total = 0.0
        for link in links:
            fault = self._fault(link)
            if fault.drop and float(self.rng.random()) < fault.drop:
                return None
            total += self._link_delay(fault)
        return total

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: Message) -> None:
        """One-hop neighbour transfer through the fault lane."""
        self._transmit(src, dst, src, message, ((src, dst),), hops=1)

    def unicast(
        self,
        src: str,
        dst: str,
        origin: str,
        message: Message,
        links: LinkPath,
    ) -> None:
        """Multi-hop transfer (centralized baseline) through the lane.

        The meter keeps the historical accounting — units x hops,
        attributed to the first link; loss and delay are drawn per hop.
        With reliability, the transfer is acked end to end and a
        retransmission re-pays the whole path.
        """
        self._transmit(src, dst, origin, message, links, hops=len(links))

    def _transmit(
        self,
        src: str,
        dst: str,
        origin: str,
        message: Message,
        links: LinkPath,
        hops: int,
    ) -> None:
        if self.reliability is not None and is_control(message):
            transfer = _Transfer(
                next(self._tid), src, dst, origin, message, links, hops
            )
            self._live[transfer.tid] = transfer
            self._by_src.setdefault(src, set()).add(transfer.tid)
            self._attempt(transfer)
            return
        meter = self.network.meter
        meter.record(links[0], message, hops=hops)
        transit = self._transit(links)
        if transit is None or dst in self.network.down:
            meter.record_drop()
            return
        self.network.sim.schedule(
            transit, lambda: self._deliver(dst, message, origin)
        )

    def _deliver(self, dst: str, message: Message, origin: str) -> None:
        if dst in self.network.down:
            self.network.meter.record_drop()
            return
        self.network.nodes[dst].receive(message, origin)

    # ------------------------------------------------------------------
    # acked transfers
    # ------------------------------------------------------------------
    def _attempt(self, transfer: _Transfer) -> None:
        retransmission = transfer.attempts > 0
        transfer.attempts += 1
        self.network.meter.record(
            transfer.links[0],
            transfer.message,
            hops=transfer.hops,
            retransmission=retransmission,
        )
        transit = self._transit(transfer.links)
        if transit is None:
            self.network.meter.record_drop()
        else:
            self.network.sim.schedule(transit, lambda: self._arrive(transfer))
        cfg = self.reliability
        assert cfg is not None
        transfer.timer = self.network.sim.schedule(
            cfg.retry_delay(transfer.attempts - 1),
            lambda: self._timeout(transfer),
        )

    def _arrive(self, transfer: _Transfer) -> None:
        if transfer.dst in self.network.down:
            # Lost at a crashed broker: no ack, so a later attempt may
            # land after recovery — control traffic heals across
            # outages bounded only by the retry budget.
            self.network.meter.record_drop()
            return
        if transfer.tid not in self._delivered:
            self._delivered.add(transfer.tid)
            self.network.nodes[transfer.dst].receive(
                transfer.message, transfer.origin
            )
        reverse: LinkPath = tuple(
            (dst, src) for src, dst in reversed(transfer.links)
        )
        transit = self._transit(reverse)
        if transit is None:
            return  # the ack was lost; the timer retransmits
        self.network.sim.schedule(transit, lambda: self._acked(transfer))

    def _acked(self, transfer: _Transfer) -> None:
        if transfer.acked or transfer.tid not in self._live:
            return
        transfer.acked = True
        if transfer.timer is not None:
            transfer.timer.cancel()
        self._finish(transfer)

    def _timeout(self, transfer: _Transfer) -> None:
        if transfer.acked or transfer.tid not in self._live:
            return
        cfg = self.reliability
        assert cfg is not None
        if transfer.attempts > cfg.max_retries:
            self.abandoned_transfers += 1
            self._finish(transfer)
            return
        self._attempt(transfer)

    def _finish(self, transfer: _Transfer) -> None:
        self._live.pop(transfer.tid, None)
        self._delivered.discard(transfer.tid)
        srcs = self._by_src.get(transfer.src)
        if srcs is not None:
            srcs.discard(transfer.tid)

    def abandon_from(self, node_id: str) -> int:
        """Drop every live transfer originated by a crashing broker.

        Its volatile send state dies with it; returns the count.
        """
        tids = sorted(self._by_src.pop(node_id, ()))
        for tid in tids:
            transfer = self._live.pop(tid, None)
            if transfer is not None and transfer.timer is not None:
                transfer.timer.cancel()
        return len(tids)
