"""Shortest-path routing over the acyclic overlay.

Only the centralized baseline needs global routes (subscribers unicast
to the central server, the server unicasts results back); the four
distributed approaches route purely on the reverse advertisement /
subscription paths.  In a tree the shortest path is the unique path, so
one BFS per destination yields exact next-hop tables.
"""

from __future__ import annotations

import networkx as nx


class RoutingTable:
    """Unique-path routing on a tree (or shortest paths on any graph)."""

    def __init__(self, graph: nx.Graph) -> None:
        self._graph = graph
        self._next_hop: dict[tuple[str, str], str] = {}
        self._distance: dict[tuple[str, str], int] = {}
        for target in graph.nodes:
            # BFS tree rooted at the target: each node's parent is its
            # next hop toward the target.
            for node, parent in nx.bfs_predecessors(graph, target):
                self._next_hop[(node, target)] = parent
        lengths = dict(nx.all_pairs_shortest_path_length(graph))
        for src, table in lengths.items():
            for dst, dist in table.items():
                self._distance[(src, dst)] = dist

    def next_hop(self, src: str, dst: str) -> str:
        """The neighbour of ``src`` on the unique path to ``dst``."""
        if src == dst:
            raise ValueError("no next hop from a node to itself")
        return self._next_hop[(src, dst)]

    def distance(self, src: str, dst: str) -> int:
        """Hop count of the shortest path."""
        return self._distance[(src, dst)]

    def path(self, src: str, dst: str) -> list[str]:
        """The full node sequence from ``src`` to ``dst`` (inclusive)."""
        hops = [src]
        here = src
        while here != dst:
            here = self.next_hop(here, dst)
            hops.append(here)
        return hops


def graph_center(graph: nx.Graph) -> str:
    """The node with minimum total distance to all others.

    The paper's centralized baseline sends everything to "the node with
    the minimum pairwise distance to all other nodes"; ties break on the
    node id so runs are deterministic.
    """
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    best: str | None = None
    best_total = None
    for node in sorted(graph.nodes):
        total = sum(lengths[node].values())
        if best_total is None or total < best_total:
            best, best_total = node, total
    assert best is not None
    return best
