"""Deployment topologies emulating the SensorScope setup (Section VI-A).

The experiments group "nodes with sensors from the same base station in
a vicinity, such that they are neighbors": each base-station *group*
contributes one sensor node per measured attribute (5 in the paper),
all attached to a relay; relays form a random tree backbone, so the
whole overlay is the acyclic graph the system model requires.  Users
(subscription entry points) sit on relay nodes.

Four named deployments mirror the paper's experiments:

=================  ======  ========  =======  ===============
experiment         nodes   sensors   groups   figures
=================  ======  ========  =======  ===============
small scale        60      50        10       4, 5
medium scale       100     50        10       6, 7 (+ centralized)
large (network)    200     50        10       8, 9
large (sources)    200     100       20       10, 11
=================  ======  ========  =======  ===============
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx
import numpy as np

from ..model.advertisements import Advertisement
from ..model.attributes import AttributeType, SENSORSCOPE_ATTRIBUTES
from ..model.locations import Location


NODE_TIERS = ("mote", "relay", "base_station", "cloud")
"""The heterogeneous architecture tiers, weakest to strongest."""


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """Per-node architecture attributes of the deployment graph.

    ``link_bandwidth`` scales the cost of moving one data unit over any
    link incident to the node (a link is priced by its *slower*
    endpoint), ``storage_capacity`` the cost of parking event residency
    on it, ``compute_rate`` the cost of running matcher work there.
    All three are relative to the default relay (1.0).  Specs feed the
    placement cost model only — the traffic meter keeps counting units,
    so assigning specs never changes a measured run.
    """

    tier: str = "relay"
    link_bandwidth: float = 1.0
    storage_capacity: float = 1.0
    compute_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.tier not in NODE_TIERS:
            raise ValueError(
                f"unknown tier {self.tier!r}; known: {NODE_TIERS}"
            )
        for name in ("link_bandwidth", "storage_capacity", "compute_rate"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


DEFAULT_NODE_SPEC = NodeSpec()
"""What every node is until a deployment assigns tiers: a plain relay.
Homogeneous deployments carry no specs at all, so existing topologies
stay byte-identical."""

MOTE_SPEC = NodeSpec("mote", link_bandwidth=0.5, storage_capacity=0.25, compute_rate=0.25)
BASE_STATION_SPEC = NodeSpec("base_station", link_bandwidth=4.0, storage_capacity=8.0, compute_rate=8.0)
CLOUD_SPEC = NodeSpec("cloud", link_bandwidth=8.0, storage_capacity=32.0, compute_rate=32.0)


@dataclass(frozen=True, slots=True)
class SensorPlacement:
    """One deployed sensor: identity, type, site and hosting node."""

    sensor_id: str
    attribute: AttributeType
    location: Location
    node_id: str
    group: int

    def advertisement(self) -> Advertisement:
        return Advertisement(self.sensor_id, self.attribute.name, self.location)


@dataclass
class Deployment:
    """An experiment topology: overlay graph + sensor placements."""

    graph: nx.Graph
    sensors: list[SensorPlacement]
    groups: dict[int, list[SensorPlacement]]
    relay_nodes: list[str]
    group_heads: dict[int, str]
    seed: int
    specs: dict[str, NodeSpec] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def sensor_nodes(self) -> dict[str, SensorPlacement]:
        return {s.node_id: s for s in self.sensors}

    @property
    def user_nodes(self) -> list[str]:
        """Nodes where user subscriptions may be injected (the relays)."""
        return list(self.relay_nodes)

    def sensors_of_group(self, group: int) -> list[SensorPlacement]:
        return list(self.groups[group])

    def sensor_by_id(self, sensor_id: str) -> SensorPlacement:
        for s in self.sensors:
            if s.sensor_id == sensor_id:
                return s
        raise KeyError(sensor_id)

    def diameter(self) -> int:
        return nx.diameter(self.graph)

    def spec_of(self, node_id: str) -> NodeSpec:
        """The node's architecture spec (default relay when unassigned)."""
        return self.specs.get(node_id, DEFAULT_NODE_SPEC)

    @property
    def is_homogeneous(self) -> bool:
        """Whether every node is (effectively) the default relay."""
        return all(spec == DEFAULT_NODE_SPEC for spec in self.specs.values())

    def validate(self) -> None:
        """Assert the structural invariants the protocols rely on."""
        if not nx.is_tree(self.graph):
            raise ValueError("the overlay must be acyclic and connected")
        hosted = [s.node_id for s in self.sensors]
        if len(set(hosted)) != len(hosted):
            raise ValueError("one sensor per sensor node")
        if set(hosted) & set(self.relay_nodes):
            raise ValueError("relay nodes must not host sensors")
        graph_nodes = set(self.graph.nodes)
        missing_hosts = sorted(set(hosted) - graph_nodes)
        if missing_hosts:
            raise ValueError(
                "sensor hosting nodes missing from the overlay graph: "
                f"{missing_hosts}"
            )
        headless = sorted(g for g in self.groups if g not in self.group_heads)
        if headless:
            raise ValueError(f"groups without a head: {headless}")
        missing_heads = sorted(
            str(h) for h in self.group_heads.values() if h not in graph_nodes
        )
        if missing_heads:
            raise ValueError(
                f"group heads missing from the overlay graph: {missing_heads}"
            )
        unknown_specs = sorted(n for n in self.specs if n not in graph_nodes)
        if unknown_specs:
            raise ValueError(
                f"specs assigned to unknown nodes: {unknown_specs}"
            )


def _attach_random_tree(
    graph: nx.Graph, nodes: Sequence[str], rng: np.random.Generator
) -> None:
    """Random recursive tree over ``nodes`` (each attaches to an earlier one)."""
    for i, node in enumerate(nodes):
        graph.add_node(node)
        if i == 0:
            continue
        parent = nodes[int(rng.integers(0, i))]
        graph.add_edge(node, parent)


def build_deployment(
    n_nodes: int,
    n_groups: int,
    attributes: Sequence[AttributeType] = SENSORSCOPE_ATTRIBUTES,
    seed: int = 0,
    area_size: float = 100.0,
    station_spread: float = 1.0,
) -> Deployment:
    """Build a grouped deployment.

    ``n_nodes`` total processing nodes; each of the ``n_groups`` base
    stations hosts ``len(attributes)`` sensor nodes (one per attribute),
    the rest are relays.  Groups are placed on a jittered grid inside an
    ``area_size``-sized square; a group's sensors sit within
    ``station_spread`` of its station, so spatial correlation distances
    (delta_l) distinguish in-group from cross-group events.
    """
    n_sensor_nodes = n_groups * len(attributes)
    n_relays = n_nodes - n_sensor_nodes
    if n_relays < max(1, n_groups):
        raise ValueError(
            f"{n_nodes} nodes cannot host {n_sensor_nodes} sensor nodes "
            f"plus at least {max(1, n_groups)} relays"
        )
    # The layout stream is keyed by the bare deployment seed since the
    # growth seed; rederiving it would change every generated overlay
    # and invalidate all pinned figures.
    rng = np.random.default_rng(seed)  # repro-lint: ignore[rng-stream] -- pre-derive_seed layout stream, pinned by figures
    graph = nx.Graph()

    relays = [f"r{i}" for i in range(n_relays)]
    _attach_random_tree(graph, relays, rng)

    # Station coordinates: jittered grid covering the area.
    side = int(np.ceil(np.sqrt(n_groups)))
    cell = area_size / side
    coords: list[Location] = []
    for g in range(n_groups):
        gx, gy = g % side, g // side
        x = (gx + 0.5) * cell + float(rng.uniform(-0.2, 0.2)) * cell
        y = (gy + 0.5) * cell + float(rng.uniform(-0.2, 0.2)) * cell
        coords.append(Location(x, y))

    # Spread the group heads over the relay backbone.
    head_ids = [int(i) for i in rng.choice(n_relays, size=n_groups, replace=False)]
    group_heads = {g: relays[h] for g, h in enumerate(head_ids)}

    sensors: list[SensorPlacement] = []
    groups: dict[int, list[SensorPlacement]] = {g: [] for g in range(n_groups)}
    for g in range(n_groups):
        head = group_heads[g]
        station = coords[g]
        # The group's sensor nodes form a chain hanging off the head —
        # "nodes with sensors from the same base station in a vicinity,
        # such that they are neighbors".  The chain makes subscription
        # splitting progressive (operators shed one slot per hop), which
        # is where the filter/split machinery earns its keep.
        previous = head
        for attribute in attributes:
            short = "".join(w[0] for w in attribute.name.split("_"))
            sensor_id = f"d{g}_{short}"
            node_id = f"s{g}_{short}"
            offset_x = float(rng.uniform(-station_spread, station_spread))
            offset_y = float(rng.uniform(-station_spread, station_spread))
            placement = SensorPlacement(
                sensor_id,
                attribute,
                Location(station.x + offset_x, station.y + offset_y),
                node_id,
                g,
            )
            sensors.append(placement)
            groups[g].append(placement)
            graph.add_node(node_id)
            graph.add_edge(node_id, previous)
            previous = node_id

    deployment = Deployment(graph, sensors, groups, relays, group_heads, seed)
    deployment.validate()
    return deployment


def small_scale(seed: int = 0) -> Deployment:
    """60 nodes, 50 sensor nodes, 10 groups (Figs 4-5)."""
    return build_deployment(60, 10, seed=seed)


def medium_scale(seed: int = 0) -> Deployment:
    """100 nodes, 50 sensor nodes, 10 groups (Figs 6-7)."""
    return build_deployment(100, 10, seed=seed)


def large_network(seed: int = 0) -> Deployment:
    """200 nodes, 50 sensor nodes, 10 groups (Figs 8-9)."""
    return build_deployment(200, 10, seed=seed)


def large_sources(seed: int = 0) -> Deployment:
    """200 nodes, 100 sensor nodes, 20 groups (Figs 10-11)."""
    return build_deployment(200, 20, seed=seed)


def tiered_specs(deployment: Deployment) -> dict[str, NodeSpec]:
    """Architecture tiers as a pure function of a built topology.

    Sensor hosts are motes, group heads base stations, the backbone
    centre (smallest-eccentricity relay, lowest node id on ties) the
    cloud uplink, every other relay a plain relay.  No randomness: the
    assignment draws nothing, so decorating a deployment with tiers
    keeps its graph, sensors and every downstream RNG stream
    byte-identical to the undecorated build.
    """
    eccentricity = nx.eccentricity(deployment.graph)
    center = min(
        (ecc, node)
        for node, ecc in eccentricity.items()
        if node in set(deployment.relay_nodes)
    )[1]
    heads = set(deployment.group_heads.values())
    specs: dict[str, NodeSpec] = {}
    for node in sorted(deployment.graph.nodes):
        if node == center:
            specs[node] = CLOUD_SPEC
        elif node in heads:
            specs[node] = BASE_STATION_SPEC
        elif node in deployment.sensor_nodes:
            specs[node] = MOTE_SPEC
        else:
            specs[node] = NodeSpec("relay")
    return specs


def tiered_small_scale(seed: int = 0) -> Deployment:
    """The small-scale deployment with heterogeneous architecture tiers.

    Same graph, sensors and seed streams as :func:`small_scale` — only
    the ``specs`` map differs, which feeds the placement cost model and
    nothing else (figs 19-20, the placement family).
    """
    deployment = small_scale(seed)
    deployment.specs.update(tiered_specs(deployment))
    deployment.validate()
    return deployment
