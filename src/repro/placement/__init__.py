"""Cost-model-driven operator placement over the architecture graph.

The placement subsystem turns operator placement from the paper's
fixed split-at-every-divergence heuristic into a compiled optimisation
decision: :func:`compile_placement` prices candidate rendezvous nodes
for each query against the deployment's per-node
:class:`~repro.network.topology.NodeSpec` tiers and the replay's
workload statistics, and emits explicit :class:`PlacementPlan` routing
tables that registration executes (``WorkloadProgram(placement=
"compiled")``).  The paper heuristic is always among the candidates,
so the compiled plan never models worse than it.

Layering: this package sits between ``workload`` and ``experiments``
(see ``analysis/layers.toml``); the network layer executes plans
opaquely via duck-typed ``next_hops`` and never imports it.
"""

from .compiler import compile_placement, compile_query, lower_plan
from .cost import PlanCost, link_cost, path_cost, price_rendezvous
from .plan import PlacementPlan, PlanHop, sensor_key
from .stats import WorkloadStats

__all__ = [
    "PlacementPlan",
    "PlanHop",
    "PlanCost",
    "WorkloadStats",
    "compile_placement",
    "compile_query",
    "lower_plan",
    "link_cost",
    "path_cost",
    "price_rendezvous",
    "sensor_key",
]
