"""The placement compiler — an optimisation pass over the program pipeline.

Slotted into ``WorkloadProgram.source() -> compile()``: compilation
prices every candidate rendezvous for each admitted query against the
deployment's architecture graph and the replay's workload statistics,
then lowers the winning candidate to an explicit routing table
(:class:`~repro.placement.plan.PlacementPlan`) that registration
executes instead of the paper's split-at-every-divergence heuristic.

Pass ordering, per query:

1. **resolve** — build the root correlation operator and map every
   sensor to its hosting node (identified subscriptions only; the
   compiler has no advertisement tables to resolve abstract ones);
2. **enumerate** — candidate rendezvous nodes are exactly the nodes of
   the union of tree paths user -> host (the query's Steiner tree; any
   node off it is dominated by its projection onto it);
3. **price** — :func:`~repro.placement.cost.price_rendezvous` for every
   candidate; the paper heuristic's natural divergence node is always
   among them, so the argmin never models worse than the paper;
4. **select** — argmin by ``(total cost, node id)``: the node-id
   tie-break keeps the choice deterministic across processes;
5. **lower** — emit the hop table: the full operator travels
   user -> rendezvous (full-correlation gate on every trunk link), and
   is fissioned per branch below the rendezvous (the paper's
   progressive split, relocated).

Determinism: costs are closed-form arithmetic over the replay
(:class:`~repro.placement.stats.WorkloadStats`), paths are unique on
the overlay tree, every iteration is sorted — no RNG stream is ever
consulted, so plans are bit-identical in every process.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, TYPE_CHECKING

import networkx as nx

from ..model.operators import CorrelationOperator, root_operator
from ..model.subscriptions import IdentifiedSubscription
from ..network.topology import Deployment
from .cost import price_rendezvous
from .plan import PlacementPlan, PlanHop, sensor_key
from .stats import WorkloadStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model.events import SimpleEvent


def _natural_rendezvous(
    user_node: str, hosts: Sequence[str], tree_path
) -> str:
    """The paper heuristic's gate: the deepest node shared by every
    user -> host path (where the first split would happen)."""
    paths = [tree_path(user_node, host) for host in hosts]
    rendezvous = user_node
    for depth in range(min(len(p) for p in paths)):
        step = {p[depth] for p in paths}
        if len(step) != 1:
            break
        rendezvous = paths[0][depth]
    return rendezvous


def lower_plan(
    operator: CorrelationOperator,
    user_node: str,
    rendezvous: str,
    host_of: Mapping[str, str],
    tree_path,
) -> tuple[PlanHop, ...]:
    """Emit the routing table for gating ``operator`` at ``rendezvous``."""
    all_key = sensor_key(operator.sensors)
    hops: list[PlanHop] = []
    trunk = tree_path(user_node, rendezvous)
    for i in range(len(trunk) - 1):
        hops.append(PlanHop(trunk[i], all_key, ((trunk[i + 1], all_key),)))
    # Below the rendezvous: fission per branch, exactly where each
    # sensor's tree path continues.
    sensors_at: dict[str, set[str]] = {}
    next_of: dict[tuple[str, str], str | None] = {}
    for sensor_id in sorted(operator.sensors):
        path = tree_path(rendezvous, host_of[sensor_id])
        for i, node in enumerate(path):
            sensors_at.setdefault(node, set()).add(sensor_id)
            next_of[(node, sensor_id)] = path[i + 1] if i + 1 < len(path) else None
    for node in sorted(sensors_at):
        piece = sensors_at[node]
        targets: dict[str, set[str]] = {}
        for sensor_id in sorted(piece):
            nxt = next_of[(node, sensor_id)]
            if nxt is not None:
                targets.setdefault(nxt, set()).add(sensor_id)
        if targets:
            hops.append(
                PlanHop(
                    node,
                    sensor_key(piece),
                    tuple(
                        (neighbor, sensor_key(targets[neighbor]))
                        for neighbor in sorted(targets)
                    ),
                )
            )
    return tuple(hops)


def compile_query(
    deployment: Deployment,
    operator: CorrelationOperator,
    user_node: str,
    host_of: Mapping[str, str],
    stats: WorkloadStats,
    tree_path,
    sub_id: str,
) -> PlacementPlan:
    """Pick and lower the cheapest rendezvous for one query."""
    hosts = sorted({host_of[s] for s in operator.sensors})
    candidates = sorted(
        {node for host in hosts for node in tree_path(user_node, host)}
    )
    costs = {
        candidate: price_rendezvous(
            deployment, operator, user_node, candidate, host_of, stats, tree_path
        ).total
        for candidate in candidates
    }
    natural = _natural_rendezvous(user_node, hosts, tree_path)
    best = min(candidates, key=lambda r: (costs[r], r))
    return PlacementPlan(
        sub_id=sub_id,
        user_node=user_node,
        rendezvous=best,
        hops=lower_plan(operator, user_node, best, host_of, tree_path),
        cost=costs[best],
        paper_cost=costs[natural],
    )


def compile_placement(
    deployment: Deployment,
    admissions: Iterable,
    events: Iterable["SimpleEvent"],
) -> dict[str, PlacementPlan]:
    """Plans for every admission of a compiled program.

    ``admissions`` are duck-typed ``(sub_id, node_id, subscription)``
    records (:class:`repro.workload.program.Admission`).  Queries whose
    sensors are absent from the deployment get no plan — registration
    drops them exactly as the unplanned path would.
    """
    stats = WorkloadStats(events)
    host_of = {s.sensor_id: s.node_id for s in deployment.sensors}
    graph = deployment.graph
    path_cache: dict[tuple[str, str], list[str]] = {}

    def tree_path(a: str, b: str) -> list[str]:
        cached = path_cache.get((a, b))
        if cached is None:
            # Unique on a tree, so "shortest" is just "the" path.
            cached = nx.shortest_path(graph, a, b)
            path_cache[(a, b)] = cached
        return cached

    plans: dict[str, PlacementPlan] = {}
    for admission in admissions:
        subscription = admission.subscription
        if not isinstance(subscription, IdentifiedSubscription):
            raise ValueError(
                "compiled placement requires identified subscriptions; "
                f"{admission.sub_id!r} is abstract (the compiler has no "
                "advertisement tables to resolve it against)"
            )
        if not all(s in host_of for s in subscription.sensor_ids):
            continue
        operator = root_operator(subscription, admission.node_id)
        plans[admission.sub_id] = compile_query(
            deployment,
            operator,
            admission.node_id,
            host_of,
            stats,
            tree_path,
            sub_id=subscription.sub_id,
        )
    return plans
