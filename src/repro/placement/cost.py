"""The placement cost model — pricing one candidate rendezvous.

For a query at user node ``u`` with root operator ``O`` and candidate
rendezvous ``r``, the model prices the steady-state flow the plan
induces on the overlay tree::

    transfer(r) = sum_s  rate_s * pass_s * C(path(host_s, r))     (gated streams in)
                +  match_rate * |slots| * C(path(r, u))           (full matches out)
    storage(r)  = sum_s  rate_s * pass_s / storage_capacity(r)    (window residency)
    compute(r)  = sum_s  rate_s * pass_s * |slots| / compute_rate(r)
    registration(r) = sum over plan edges of  link_cost(edge)     (operator units)

where ``C(path)`` sums per-link costs, a link being priced by its
slower endpoint (``1 / min(link_bandwidth)``), ``rate_s``/``pass_s``
come from :class:`~repro.placement.stats.WorkloadStats` (exact replay
arithmetic), and ``match_rate`` is the bottleneck estimator
``min over slots of the slot's gated rate`` — a full match needs every
slot filled, so the rarest slot bounds the result stream.

Everything is closed-form float arithmetic over deterministic inputs:
no RNG, no ``derive_seed``, no iteration-order dependence (sensors and
paths are walked sorted).  Pricing the same candidate twice — in any
process — yields bit-identical costs, which is what makes the
compiler's argmin reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model.operators import CorrelationOperator
    from ..network.topology import Deployment
    from .stats import WorkloadStats


def link_cost(deployment: "Deployment", a: str, b: str) -> float:
    """Units-per-bandwidth price of one link: the slower endpoint pays."""
    return 1.0 / min(
        deployment.spec_of(a).link_bandwidth,
        deployment.spec_of(b).link_bandwidth,
    )


def path_cost(deployment: "Deployment", path: Sequence[str]) -> float:
    """Summed link costs along a node path (0.0 for a trivial path)."""
    return sum(
        link_cost(deployment, path[i], path[i + 1])
        for i in range(len(path) - 1)
    )


@dataclass(frozen=True, slots=True)
class PlanCost:
    """The priced components of one candidate placement."""

    transfer: float
    storage: float
    compute: float
    registration: float

    @property
    def total(self) -> float:
        return self.transfer + self.storage + self.compute + self.registration


def price_rendezvous(
    deployment: "Deployment",
    operator: "CorrelationOperator",
    user_node: str,
    rendezvous: str,
    host_of: Mapping[str, str],
    stats: "WorkloadStats",
    tree_path,
) -> PlanCost:
    """Price gating the full correlation of ``operator`` at ``rendezvous``.

    ``tree_path(a, b)`` returns the unique overlay tree path as a node
    list; ``host_of`` maps sensor ids to their hosting nodes.
    """
    spec = deployment.spec_of(rendezvous)
    n_slots = len(operator.slots)
    transfer_in = 0.0
    total_gated = 0.0
    slot_rates = []
    for slot in operator.slots:
        slot_gated = 0.0
        for sensor_id in sorted(slot.sensors):
            gated = stats.gated_rate(sensor_id, slot.interval)
            slot_gated += gated
            total_gated += gated
            transfer_in += gated * path_cost(
                deployment, tree_path(host_of[sensor_id], rendezvous)
            )
        slot_rates.append(slot_gated)
    match_rate = min(slot_rates) if slot_rates else 0.0
    transfer_out = (
        match_rate * n_slots * path_cost(deployment, tree_path(rendezvous, user_node))
    )
    edges: set[tuple[str, str]] = set()
    for path in [tree_path(user_node, rendezvous)] + [
        tree_path(rendezvous, host_of[s]) for s in sorted(operator.sensors)
    ]:
        for i in range(len(path) - 1):
            edges.add(tuple(sorted((path[i], path[i + 1]))))
    registration = sum(link_cost(deployment, a, b) for a, b in sorted(edges))
    return PlanCost(
        transfer=transfer_in + transfer_out,
        storage=total_gated / spec.storage_capacity,
        compute=total_gated * n_slots / spec.compute_rate,
        registration=registration,
    )
