"""Explicit operator placement plans.

A :class:`PlacementPlan` is the compiled routing program for one
query's correlation operator: which operator piece (identified by its
sensor set) each node stores, and where it forwards which sub-piece
next.  The network layer executes plans opaquely — a node asks
``plan.next_hops(node_id, sensors)`` and projects its operator
accordingly — so plans stay duck-typed below the placement layer,
exactly like churn schedules (``transitions()``) stay duck-typed in
``Network.schedule_churn``.

The plan encodes the *rendezvous* structure the compiler chose: the
full operator travels from the user's node to the rendezvous (events
crossing those links are gated by the full correlation), and is split
into per-branch sub-pieces from the rendezvous toward the sensor hosts
(the paper's progressive split below it).  The paper's heuristic is the
degenerate plan whose rendezvous is the natural divergence node.
"""

from __future__ import annotations

from dataclasses import dataclass, field


SensorKey = tuple[str, ...]
"""A piece identity: the sorted tuple of its sensor ids."""


def sensor_key(sensors) -> SensorKey:
    """Canonical piece key for any iterable of sensor ids."""
    return tuple(sorted(sensors))


@dataclass(frozen=True, slots=True)
class PlanHop:
    """One routing-table row: the piece at ``node_id`` identified by
    ``sensors`` forwards each ``(neighbor, sub-piece sensors)`` next."""

    node_id: str
    sensors: SensorKey
    next: tuple[tuple[str, SensorKey], ...]

    def __post_init__(self) -> None:
        routed = [s for _, subset in self.next for s in subset]
        if len(routed) != len(set(routed)):
            raise ValueError(
                f"plan hop at {self.node_id!r} routes a sensor twice"
            )
        if not set(routed) <= set(self.sensors):
            raise ValueError(
                f"plan hop at {self.node_id!r} routes sensors outside its piece"
            )


@dataclass(frozen=True)
class PlacementPlan:
    """One query's compiled operator placement.

    ``hops`` is the complete routing table; ``rendezvous`` the node the
    compiler gates the full correlation at; ``cost`` the modelled cost
    of this plan and ``paper_cost`` the modelled cost of the paper
    heuristic's natural split on the same query (``cost <= paper_cost``
    by construction — the heuristic is always a candidate).
    """

    sub_id: str
    user_node: str
    rendezvous: str
    hops: tuple[PlanHop, ...]
    cost: float
    paper_cost: float
    _table: dict = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        table: dict[tuple[str, SensorKey], tuple[tuple[str, frozenset[str]], ...]] = {}
        for hop in self.hops:
            key = (hop.node_id, hop.sensors)
            if key in table:
                raise ValueError(
                    f"duplicate plan hop for piece {hop.sensors} at "
                    f"{hop.node_id!r}"
                )
            table[key] = tuple(
                (neighbor, frozenset(subset)) for neighbor, subset in hop.next
            )
        object.__setattr__(self, "_table", table)

    def __hash__(self) -> int:
        return hash((self.sub_id, self.user_node, self.rendezvous, self.hops))

    def next_hops(
        self, node_id: str, sensors: frozenset[str]
    ) -> tuple[tuple[str, frozenset[str]], ...]:
        """Where the piece covering ``sensors`` goes from ``node_id``.

        Returns ``(neighbor, sub-piece sensor set)`` pairs; an empty
        tuple means the piece terminates here (a leaf host).  This is
        the whole interface the network layer uses.
        """
        return self._table.get((node_id, sensor_key(sensors)), ())

    def __getstate__(self):
        return {
            "sub_id": self.sub_id,
            "user_node": self.user_node,
            "rendezvous": self.rendezvous,
            "hops": self.hops,
            "cost": self.cost,
            "paper_cost": self.paper_cost,
        }

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        self.__post_init__()
