"""Deterministic workload statistics for the placement cost model.

Everything the cost model knows about the workload comes from here:
per-sensor event counts and per-(sensor, interval) pass fractions,
computed from the program's already-materialised replay.  The numbers
are exact arithmetic over the event tuple — no sampling, no RNG, no
``derive_seed`` — so compiling the same program twice (in any process,
under any ``PYTHONHASHSEED``) prices every candidate identically.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model.events import SimpleEvent
    from ..model.intervals import Interval


class WorkloadStats:
    """Per-sensor event rates and selectivities of one replay."""

    __slots__ = ("_values", "total_events")

    def __init__(self, events: Iterable["SimpleEvent"]) -> None:
        values: dict[str, list[float]] = {}
        total = 0
        for event in events:
            values.setdefault(event.sensor_id, []).append(event.value)
            total += 1
        for series in values.values():
            series.sort()
        self._values = values
        self.total_events = total

    def rate(self, sensor_id: str) -> float:
        """Events the sensor publishes over the replay (count; the span
        is shared by every candidate, so counts compare like rates)."""
        return float(len(self._values.get(sensor_id, ())))

    def pass_fraction(self, sensor_id: str, interval: "Interval") -> float:
        """Fraction of the sensor's readings inside the closed interval."""
        series = self._values.get(sensor_id)
        if not series:
            return 0.0
        lo = bisect_left(series, interval.lo)
        hi = bisect_right(series, interval.hi)
        return (hi - lo) / len(series)

    def gated_rate(self, sensor_id: str, interval: "Interval") -> float:
        """Readings that survive the sensor's own filter (rate x pass)."""
        return self.rate(sensor_id) * self.pass_fraction(sensor_id, interval)
