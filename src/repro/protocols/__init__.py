"""Approach descriptors and the Table II registry.

The registry imports the concrete approach modules, which in turn
import :mod:`repro.protocols.base`; to keep that import graph acyclic
the registry symbols are loaded lazily on first attribute access.
"""

from .base import Approach, NodeFactory

_REGISTRY_EXPORTS = (
    "TABLE_II_COLUMNS",
    "all_approaches",
    "distributed_approaches",
    "render_table_ii",
    "table_ii",
)

__all__ = ["Approach", "NodeFactory", *_REGISTRY_EXPORTS]


def __getattr__(name: str):
    if name in _REGISTRY_EXPORTS:
        from . import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
