"""Approach descriptors — the five evaluated systems as pluggable units.

Table II of the paper summarises each approach by three design axes:
subscription filtering, subscription splitting and event propagation.
An :class:`Approach` carries those labels (the registry renders Table II
from them) together with the node factory the experiment runner uses to
populate a network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..network.network import Network
    from ..network.node import Node

NodeFactory = Callable[[str, "Network"], "Node"]


@dataclass(frozen=True)
class Approach:
    """One evaluated system: metadata + node factory.

    ``config`` declares the configuration the node factory closed over
    (FSF's probabilistic-filter knobs), so consumers that must rebuild
    the approach in another process — the sharded experiment runner —
    can re-resolve it from the registry without losing the settings.
    """

    key: str
    name: str
    subscription_filtering: str
    subscription_splitting: str
    event_propagation: str
    make_node: NodeFactory
    floods_advertisements: bool = True
    deterministic_recall: bool = True
    supports_planned_placement: bool = True
    supports_sketches: bool = True
    config: object = None

    def populate(self, network: "Network") -> "Network":
        """Instantiate this approach's node on every graph vertex."""
        network.populate(self.make_node)
        return network

    def table_row(self) -> tuple[str, str, str, str]:
        """The approach's Table II row."""
        return (
            self.name,
            self.subscription_filtering,
            self.subscription_splitting,
            self.event_propagation,
        )
