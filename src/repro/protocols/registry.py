"""Registry of the five evaluated approaches + Table II rendering."""

from __future__ import annotations

from typing import Mapping

from ..baselines.centralized import centralized_approach
from ..baselines.multijoin import multijoin_approach
from ..baselines.naive import naive_approach
from ..baselines.operator_placement import operator_placement_approach
from ..core.filter_split_forward import FSFConfig, filter_split_forward_approach
from .base import Approach

TABLE_II_COLUMNS = (
    "Approach",
    "Subscription Filtering",
    "Subscription Splitting",
    "Event propagation",
)


def all_approaches(
    fsf_config: FSFConfig | None = None,
) -> Mapping[str, Approach]:
    """The five systems, keyed as the experiment harness refers to them."""
    approaches = [
        centralized_approach(),
        naive_approach(),
        operator_placement_approach(),
        multijoin_approach(),
        filter_split_forward_approach(fsf_config),
    ]
    return {a.key: a for a in approaches}


def distributed_approaches(
    fsf_config: FSFConfig | None = None,
) -> Mapping[str, Approach]:
    """The four distributed systems (Figs 4-5 and 8-11 omit centralized)."""
    return {
        key: approach
        for key, approach in all_approaches(fsf_config).items()
        if key != "centralized"
    }


def table_ii(fsf_config: FSFConfig | None = None) -> list[tuple[str, str, str, str]]:
    """Table II of the paper, generated from the approach metadata."""
    return [a.table_row() for a in all_approaches(fsf_config).values()]


def render_table_ii() -> str:
    """Human-readable Table II (what the bench harness prints)."""
    rows = [TABLE_II_COLUMNS, *table_ii()]
    widths = [max(len(row[c]) for row in rows) for c in range(len(rows[0]))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
