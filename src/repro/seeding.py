"""PYTHONHASHSEED-independent seed derivation.

Every random stream in the reproduction must be a pure function of the
*declared* seeds (deployment seed, config seed, stream name) — never of
interpreter state.  Python's builtin ``hash`` of strings and of tuples
containing strings is randomized per process via ``PYTHONHASHSEED``, so
deriving RNG keys from it silently produces *different workloads in
different processes*: exactly the failure mode that breaks a sharded
experiment runner, where worker processes must synthesize the same
events the parent computed ground truth for.

:func:`derive_seed` is the one sanctioned derivation: a keyed-by-content
blake2b digest of the stringified parts.  ``Simulator.rng`` and
``build_replay`` both route through it; new seeded components should
too.
"""

from __future__ import annotations

import hashlib

_SEED_SPACE = 2**63
"""``numpy.random.default_rng`` accepts any non-negative int; 63 bits
keeps the key inside one machine word."""


def derive_seed(*parts: object) -> int:
    """A stable 63-bit RNG seed from the stringified ``parts``.

    Deterministic across processes, platforms and ``PYTHONHASHSEED``
    values (unlike builtin ``hash``).  Parts are joined with ``:`` —
    ``derive_seed(7, "x")`` hashes ``b"7:x"`` — so the derivation is
    also stable across sessions and easily reproduced by hand.
    """
    text = ":".join(str(part) for part in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % _SEED_SPACE
