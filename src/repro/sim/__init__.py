"""Deterministic discrete-event simulation kernel (substrate).

Stands in for the paper's Xen-cluster deployment: node logic is the
same message-driven code, executed under virtual time with seeded
randomness instead of on 30-VMs-per-quadcore hardware.
"""

from .core import AgendaBudgetExceeded, Handle, SimulationError, Simulator

__all__ = ["AgendaBudgetExceeded", "Handle", "SimulationError", "Simulator"]
