"""A small deterministic discrete-event simulation kernel.

The paper evaluated a Java implementation on a Xen cluster; its metrics
are message counts, so a discrete-event simulation of the same
message-driven node logic reproduces them exactly while staying
deterministic and seedable (see DESIGN.md, substitution table).

The kernel is deliberately minimal and dependency-free:

* a binary-heap agenda of ``(time, priority, seq, action)`` entries —
  ``seq`` gives FIFO order among simultaneous events, so runs are fully
  reproducible;
* callback scheduling (:meth:`Simulator.schedule` / :meth:`Simulator.at`)
  for the network substrate;
* generator *processes* (:meth:`Simulator.process`) that ``yield`` delays
  — the SimPy idiom — used by sensor replay loops;
* named, seeded random streams so independent model components draw from
  independent generators.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Generator, Iterable, Optional

import numpy as np

from ..seeding import derive_seed

Action = Callable[[], None]
ProcessGenerator = Generator[float, None, None]


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (e.g. scheduling in the past)."""


class AgendaBudgetExceeded(SimulationError):
    """:meth:`Simulator.run` exhausted its ``max_events`` budget.

    Distinguishable from plain misuse so callers holding diagnostic
    context (the network's livelock report) can catch precisely this
    case; existing handlers catching :class:`SimulationError` keep
    working.
    """


@dataclass(order=True)
class _Entry:
    time: float
    priority: int
    seq: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Handle:
    """Cancellation handle returned by the scheduling calls."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the action from running (no-op if already run)."""
        self._entry.cancelled = True

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled


class Simulator:
    """Event loop with virtual time.

    ``Simulator(seed=...)`` fixes every random stream derived via
    :meth:`rng`; two simulators with equal seeds and equal scheduling
    sequences produce identical runs.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._agenda: list[_Entry] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._seed = seed
        self._rngs: dict[str, np.random.Generator] = {}
        self.processed_events = 0

    # ------------------------------------------------------------------
    # time & randomness
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def running(self) -> bool:
        """Whether the event loop is currently executing an action.

        True inside any scheduled callback (a delivery notification, a
        timeline entry, a process step) — the state in which a nested
        :meth:`run` would raise.  Facade layers use it to turn the
        opaque re-entrancy error into actionable guidance.
        """
        return self._running

    def rng(self, stream: str) -> np.random.Generator:
        """A named random stream, derived deterministically from the seed.

        Distinct names give independent generators; repeated calls with
        the same name return the same generator instance.  The stream
        key is derived with the *stable* hash of :mod:`repro.seeding`:
        Python's builtin ``hash`` of a str-containing tuple varies with
        ``PYTHONHASHSEED``, which silently broke the "deterministic,
        seedable" contract across processes.
        """
        if stream not in self._rngs:
            root = self._seed if self._seed is not None else 0
            self._rngs[stream] = np.random.default_rng(
                derive_seed(root, stream)
            )
        return self._rngs[stream]

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, action: Action, priority: int = 0) -> Handle:
        """Run ``action`` at absolute virtual ``time``."""
        if math.isnan(time):
            raise SimulationError("cannot schedule at time NaN")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:g}; now is {self._now:g}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = _Entry(time, priority, seq, action)
        heapq.heappush(self._agenda, entry)
        return Handle(entry)

    @property
    def sequence(self) -> int:
        """The next FIFO sequence number ``at`` will assign.

        Monotone, bumped by *every* scheduling call — an unchanged value
        between two instants proves no agenda entry was created in
        between.  The network's delivery batching keys on this: a batch
        of sends may share one agenda entry only while nothing else has
        been scheduled, which guarantees no other action can sort
        between the batched deliveries.
        """
        return self._seq

    def schedule(self, delay: float, action: Action, priority: int = 0) -> Handle:
        """Run ``action`` after ``delay`` units of virtual time."""
        if math.isnan(delay):
            raise SimulationError("delay is NaN")
        if delay < 0:
            raise SimulationError(f"negative delay {delay:g}")
        return self.at(self._now + delay, action, priority)

    def schedule_timeline(
        self,
        entries: Iterable[tuple[float, Action]],
        priority: int = 0,
    ) -> list[Handle]:
        """Bulk-schedule ``(absolute time, action)`` pairs.

        The injection API for pre-materialised timelines — the
        experiment runner feeds it the replayed publications and the
        churn schedule's join/leave transitions.  ``priority`` orders
        simultaneous entries against other agenda activity (lifecycle
        transitions run at priority 1, after same-instant publications).
        """
        return [self.at(time, action, priority) for time, action in entries]

    def process(self, generator: ProcessGenerator) -> None:
        """Drive a generator process: each ``yield d`` sleeps ``d`` units.

        The process ends when the generator returns.  Exceptions inside
        the generator propagate out of :meth:`run` — silent failures
        would corrupt experiments.
        """

        def step() -> None:
            try:
                delay = next(generator)
            except StopIteration:
                return
            if delay < 0:
                raise SimulationError("process yielded a negative delay")
            self.schedule(delay, step)

        # First step runs at the current time, after already-queued
        # simultaneous events (FIFO order from the sequence counter).
        self.schedule(0.0, step)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute the agenda; returns the final virtual time.

        ``until`` stops the clock at an absolute time (inclusive of the
        events scheduled exactly there); ``max_events`` guards against
        runaways in tests.

        Virtual time is monotone: ``until`` in the past (or NaN) is a
        programming error and raises instead of silently not running —
        the silent no-op hid reversed-clock bugs in replay harnesses.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        if until is not None:
            if math.isnan(until):
                raise SimulationError("run(until=NaN)")
            if until < self._now:
                raise SimulationError(
                    f"cannot run until {until:g}; now is {self._now:g} "
                    "(virtual time is monotone)"
                )
        self._running = True
        try:
            count = 0
            while self._agenda:
                entry = self._agenda[0]
                if until is not None and entry.time > until:
                    break
                heapq.heappop(self._agenda)
                if entry.cancelled:
                    continue
                self._now = entry.time
                entry.action()
                self.processed_events += 1
                count += 1
                if max_events is not None and count >= max_events:
                    raise AgendaBudgetExceeded(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one pending event; False when agenda is empty."""
        while self._agenda:
            entry = heapq.heappop(self._agenda)
            if entry.cancelled:
                continue
            self._now = entry.time
            entry.action()
            self.processed_events += 1
            return True
        return False

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) entries still queued."""
        return sum(1 for e in self._agenda if not e.cancelled)

    def agenda_summary(self, n: int = 5) -> list[tuple[str, int]]:
        """The ``n`` hottest pending action kinds, by callable name.

        Diagnostic input for livelock reports: when a budget run aborts,
        the distribution of what is still queued (retransmit timers,
        refresh floods, delivery lambdas) names the feedback loop.
        """
        kinds: Counter[str] = Counter()
        for entry in self._agenda:
            if entry.cancelled:
                continue
            action = entry.action
            label = getattr(action, "__qualname__", None) or type(action).__name__
            kinds[label] += 1
        return kinds.most_common(n)

    def drain(self, actions: Iterable[Action]) -> None:
        """Schedule several immediate actions and run them to quiescence."""
        for action in actions:
            self.schedule(0.0, action)
        self.run()
