"""Approximate answer lane: broker-resident mergeable summaries.

The exact pipeline ships raw events toward subscribers; at scale the
traffic bill is the product.  This subsystem gives the brokers a
cheaper, bounded-error alternative for *sketch-eligible* subscriptions
(single-slot range filters over advertised sensors): each broker folds
the readings of its locally attached sensors into a mergeable summary,
summaries combine losslessly along arbitrary tree paths, and the
subscription's home node answers range-count queries from the merged
summary with a deterministic error certificate instead of receiving
raw events.

Two summary families, both frozen, picklable and mergeable:

* :class:`QDigest` — the q-digest quantile summary of Shrivastava et
  al., *Medians and Beyond* (PAPERS.md): a dyadic tree over a
  quantized value domain with compression parameter ``k`` and the
  deterministic rank-error bound ``eps = log2(sigma) / k``;
* :class:`MultiResolution` — a coarse multiresolution cube estimator
  in the style of Meliou et al.: a fixed stack of dyadic histograms
  whose size never depends on the stream length.

:class:`SketchLane` is the broker-side state machine the network layer
drives behind ``Network(answer_mode="approximate")``; the default
``"exact"`` mode constructs nothing (the null-fence pattern) and is
machine-checked bit-identical to the historical pipeline.
"""

from .lane import ApproxAnswer, SketchConfig, SketchLane
from .messages import SketchPushMessage, SketchSubscribeMessage
from .multires import MultiResolution
from .qdigest import QDigest

__all__ = [
    "ApproxAnswer",
    "MultiResolution",
    "QDigest",
    "SketchConfig",
    "SketchLane",
    "SketchPushMessage",
    "SketchSubscribeMessage",
]
