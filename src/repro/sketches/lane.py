"""Broker-side state machine of the approximate answer lane.

One :class:`SketchLane` instance serves a whole
``Network(answer_mode="approximate")`` run; per-broker state is keyed
by node id and the network layer drives it through a handful of hooks
(observe on publish, adopt on subscribe, fence/unfence on churn,
dispatch for the two lane messages, ``begin_round`` from the scheduled
push rounds).

Lifecycle of one sketch-eligible subscription (single-slot range
filter over advertised sensors whose attribute has a configured
domain):

1. **Adopt.**  The home node resolves the root operator as usual; when
   it is eligible the lane takes it instead of the exact pipeline — no
   operator flood, no raw event forwarding, no local matcher.  Subs
   with the same ``(home, attribute, sensor set)`` share one *group*.
2. **Tree.**  A new group floods a ``SketchSubscribeMessage`` toward
   its sensors along the reverse advertisement paths (the same
   deterministic split operator registration uses); every broker on
   the way records its upstream neighbour and its expected children —
   a static push tree rooted at the home node.
3. **Summaries.**  Each broker folds readings of its locally attached
   sensors into per-sensor summaries as they are published, mirroring
   the event store's churn fence: a retracted sensor's summary is
   dropped and stragglers stamped at or before the fence are refused
   until the sensor re-advertises, so answers never count retired
   sensors.
4. **Push rounds.**  At each scheduled round, leaves push their merged
   local summaries upstream; an interior broker merges its own
   contribution with all children's round-``r`` pushes (arrival order
   never matters — merge is associative/commutative) and pushes the
   result up.  Summaries are cumulative, so each round *replaces* the
   home node's previous answer state.
5. **Answer.**  The home node answers each member subscription's range
   from the group's latest merged summary with a certified
   ``[lower, upper]`` bracket (:class:`ApproxAnswer`).

The lane refuses nothing at runtime because the network constructor
already rejected the incompatible features (faults, reliability,
compiled placement): pushes assume lossless in-order delivery, which
is exactly what the plain transport provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..model.advertisements import AdvertisementTable
from ..model.attributes import SENSORSCOPE_ATTRIBUTES
from ..model.events import SimpleEvent
from ..model.intervals import Interval
from .messages import SketchPushMessage, SketchSubscribeMessage
from .multires import MultiResolution
from .qdigest import QDigest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..model.operators import CorrelationOperator
    from ..model.subscriptions import Subscription
    from ..network.node import Node

LOCAL = AdvertisementTable.LOCAL

Summary = QDigest | MultiResolution


def _default_domains() -> tuple[tuple[str, float, float], ...]:
    return tuple(
        (a.name, a.domain.lo, a.domain.hi) for a in SENSORSCOPE_ATTRIBUTES
    )


@dataclass(frozen=True, slots=True)
class SketchConfig:
    """Tuning knobs of the approximate lane (frozen, hashable).

    ``k``/``levels`` parameterise the q-digest (``eps = levels / k``);
    ``push_interval`` is the period of the scheduled push rounds on the
    simulation clock; ``buckets_per_unit`` sizes push messages — one
    event-sized data unit carries that many ``(level, index, count)``
    buckets (a bucket packs into a few bytes against an event record's
    id + value + timestamp); ``estimator`` selects the summary family;
    ``domains`` lists ``(attribute, lo, hi)`` quantization domains
    (``None`` = the five SensorScope attributes) — subscriptions on
    attributes without a domain are simply not eligible and keep the
    exact pipeline.
    """

    k: int = 64
    levels: int = 10
    push_interval: float = 80.0
    buckets_per_unit: int = 4
    estimator: str = "qdigest"
    resolutions: tuple[int, ...] = (3, 5, 7)
    domains: tuple[tuple[str, float, float], ...] | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.push_interval <= 0:
            raise ValueError(
                f"push_interval must be positive, got {self.push_interval!r}"
            )
        if self.buckets_per_unit < 1:
            raise ValueError(
                f"buckets_per_unit must be >= 1, got {self.buckets_per_unit}"
            )
        if self.estimator not in ("qdigest", "multires"):
            raise ValueError(
                f"estimator must be 'qdigest' or 'multires', "
                f"got {self.estimator!r}"
            )

    def domain_map(self) -> dict[str, tuple[float, float]]:
        domains = (
            self.domains if self.domains is not None else _default_domains()
        )
        return {name: (lo, hi) for name, lo, hi in domains}

    def empty_summary(self, attribute: str, lo: float, hi: float) -> Summary:
        if self.estimator == "multires":
            return MultiResolution(self.resolutions, lo, hi)
        return QDigest(self.k, self.levels, lo, hi)


@dataclass(frozen=True, slots=True)
class ApproxAnswer:
    """One subscription's certified range answer from a merged summary."""

    sub_id: str
    group_id: str
    attribute: str
    sensors: frozenset[str]
    interval: Interval
    summary: Summary
    round_no: int
    lower: int
    upper: int
    estimate: int

    @property
    def n(self) -> int:
        """Stream length the summary covers."""
        return self.summary.n

    @property
    def error_bound(self) -> int:
        """The summary's deterministic absolute error certificate."""
        return self.summary.error_bound

    @property
    def eps(self) -> float | None:
        """A-priori rank-error factor (q-digest only)."""
        return self.summary.eps if isinstance(self.summary, QDigest) else None


@dataclass(slots=True)
class _Group:
    """One push tree's per-broker view."""

    attribute: str
    sensors: frozenset[str]
    home: str
    upstream: str | None
    children: tuple[str, ...]
    local_sensors: frozenset[str]


@dataclass(slots=True)
class _Hosted:
    """Per-(broker, sensor) summary with a small fold-in buffer."""

    summary: Summary
    pending: list[float] = field(default_factory=list)

    def folded(self) -> Summary:
        if self.pending:
            self.summary = self.summary.extended(self.pending).compressed()
            self.pending.clear()
        return self.summary


_FOLD_EVERY = 32


class SketchLane:
    """All broker-resident sketch state of one approximate-mode run."""

    def __init__(self, config: SketchConfig) -> None:
        self.config = config
        self._domains = config.domain_map()
        # Every dict below is keyed by node id first; iteration is
        # always over sorted keys so runs are seed-deterministic.
        self._hosted: dict[str, dict[str, _Hosted]] = {}
        self._fences: dict[str, dict[str, float]] = {}
        self._groups: dict[str, dict[str, _Group]] = {}
        self._subs: dict[str, dict[str, tuple[str, Interval]]] = {}
        self._answers: dict[str, dict[str, tuple[int, Summary]]] = {}
        self._inbox: dict[tuple[str, str, int], dict[str, Summary]] = {}

    # ------------------------------------------------------------------
    # eligibility & registration (home node)
    # ------------------------------------------------------------------
    def eligible(self, root: "CorrelationOperator") -> bool:
        """Single-slot range operators over a configured attribute."""
        if not root.is_simple:
            return False
        return root.slots[0].attribute in self._domains

    def adopt(
        self,
        node: "Node",
        subscription: "Subscription",
        root: "CorrelationOperator",
    ) -> bool:
        """Take an eligible subscription into the lane; False otherwise.

        Returning True means the exact pipeline must not register the
        subscription at all — no operator flood and no raw event
        forwarding happen for it; pushes and the merged summary answer
        it instead.
        """
        if not self.eligible(root):
            return False
        slot = root.slots[0]
        sensors = slot.sensors
        group_id = (
            f"{node.node_id}|{slot.attribute}|{','.join(sorted(sensors))}"
        )
        self._subs.setdefault(node.node_id, {})[subscription.sub_id] = (
            group_id,
            slot.interval,
        )
        groups = self._groups.setdefault(node.node_id, {})
        if group_id not in groups:
            groups[group_id] = self._register_group(
                node, group_id, slot.attribute, sensors, home=node.node_id,
                upstream=None,
            )
        return True

    def forget(self, node_id: str, sub_id: str) -> bool:
        """Drop a cancelled subscription's answer registration.

        The push tree stays up (soft state shared with sibling
        subscriptions; an empty group simply answers nobody) — sketch
        teardown traffic is a non-goal of this lane.
        """
        subs = self._subs.get(node_id)
        if subs is None or sub_id not in subs:
            return False
        del subs[sub_id]
        return True

    def _register_group(
        self,
        node: "Node",
        group_id: str,
        attribute: str,
        sensors: frozenset[str],
        home: str,
        upstream: str | None,
    ) -> _Group:
        """Record this broker's view of a group and flood it onward."""
        partition = node.ads.partition_by_origin(sensors)
        local = frozenset(partition.pop(LOCAL, ()))
        children = tuple(sorted(partition))
        group = _Group(
            attribute=attribute,
            sensors=sensors,
            home=home,
            upstream=upstream,
            children=children,
            local_sensors=local,
        )
        for neighbor in children:
            node.network.send(
                node.node_id,
                neighbor,
                SketchSubscribeMessage(
                    group_id=group_id,
                    attribute=attribute,
                    sensors=frozenset(partition[neighbor]),
                    home=home,
                ),
            )
        return group

    # ------------------------------------------------------------------
    # message handlers (driven by Node.receive)
    # ------------------------------------------------------------------
    def handle_subscribe(
        self, node: "Node", message: SketchSubscribeMessage, origin: str
    ) -> None:
        groups = self._groups.setdefault(node.node_id, {})
        if message.group_id in groups:
            return  # duplicate copy; the reverse-path split is a tree
        groups[message.group_id] = self._register_group(
            node,
            message.group_id,
            message.attribute,
            message.sensors,
            home=message.home,
            upstream=origin,
        )

    def handle_push(
        self, node: "Node", message: SketchPushMessage, origin: str
    ) -> None:
        group = self._groups[node.node_id][message.group_id]
        key = (node.node_id, message.group_id, message.round_no)
        box = self._inbox.setdefault(key, {})
        box[origin] = message.summary
        if all(child in box for child in group.children):
            del self._inbox[key]
            merged = self._local_summary(node.node_id, group)
            for child in group.children:
                merged = merged.merged(box[child])
            self._emit(node, message.group_id, group, message.round_no, merged)

    # ------------------------------------------------------------------
    # push rounds
    # ------------------------------------------------------------------
    def begin_round(self, node: "Node", round_no: int) -> None:
        """Round tick at one broker: leaves (and childless homes) emit.

        Interior brokers need no tick — they react to their children's
        pushes, which this same round triggers below them.
        """
        for group_id in sorted(self._groups.get(node.node_id, ())):
            group = self._groups[node.node_id][group_id]
            if group.children:
                continue
            self._emit(
                node,
                group_id,
                group,
                round_no,
                self._local_summary(node.node_id, group),
            )

    def _emit(
        self,
        node: "Node",
        group_id: str,
        group: _Group,
        round_no: int,
        merged: Summary,
    ) -> None:
        merged = merged.compressed()
        if group.upstream is None:
            self._answers.setdefault(node.node_id, {})[group_id] = (
                round_no,
                merged,
            )
            return
        units = max(
            1, -(-merged.size // self.config.buckets_per_unit)
        )
        node.network.send(
            node.node_id,
            group.upstream,
            SketchPushMessage(
                group_id=group_id,
                round_no=round_no,
                summary=merged,
                units=units,
            ),
        )

    def _local_summary(self, node_id: str, group: _Group) -> Summary:
        lo, hi = self._domains[group.attribute]
        merged = self.config.empty_summary(group.attribute, lo, hi)
        hosted = self._hosted.get(node_id, {})
        for sensor_id in sorted(group.local_sensors):
            acc = hosted.get(sensor_id)
            if acc is not None:
                merged = merged.merged(acc.folded())
        return merged

    # ------------------------------------------------------------------
    # summary maintenance (publish path + churn fences)
    # ------------------------------------------------------------------
    def observe_local(self, node_id: str, event: SimpleEvent) -> None:
        """Fold a locally published reading into its sensor's summary."""
        domain = self._domains.get(event.attribute)
        if domain is None:
            return
        fence = self._fences.get(node_id, {}).get(event.sensor_id)
        if fence is not None and event.timestamp <= fence:
            return  # pre-departure straggler of a retracted sensor
        hosted = self._hosted.setdefault(node_id, {})
        acc = hosted.get(event.sensor_id)
        if acc is None:
            lo, hi = domain
            acc = hosted[event.sensor_id] = _Hosted(
                self.config.empty_summary(event.attribute, lo, hi)
            )
        acc.pending.append(event.value)
        if len(acc.pending) >= _FOLD_EVERY:
            acc.folded()

    def fence_sensor(self, node_id: str, sensor_id: str, now: float) -> None:
        """Churn leave: drop the sensor's summary, refuse stragglers.

        Mirrors ``EventStore.fence_sensor`` exactly: the fence rises
        monotonically and stays until the sensor re-advertises, so a
        slower path cannot re-introduce pre-departure history and
        answers never count a retired sensor.
        """
        fences = self._fences.setdefault(node_id, {})
        fences[sensor_id] = max(now, fences.get(sensor_id, float("-inf")))
        self._hosted.get(node_id, {}).pop(sensor_id, None)

    def unfence_sensor(self, node_id: str, sensor_id: str) -> None:
        """Churn re-join: the sensor's summary restarts from empty."""
        self._fences.get(node_id, {}).pop(sensor_id, None)

    # ------------------------------------------------------------------
    # answers
    # ------------------------------------------------------------------
    def query_answers(self) -> Mapping[str, ApproxAnswer]:
        """Every answered lane subscription's certified range answer.

        Subscriptions whose group has not completed a push round yet
        are absent (there is nothing to answer from).
        """
        out: dict[str, ApproxAnswer] = {}
        for node_id in sorted(self._subs):
            answers = self._answers.get(node_id, {})
            groups = self._groups.get(node_id, {})
            for sub_id in sorted(self._subs[node_id]):
                group_id, interval = self._subs[node_id][sub_id]
                answer = answers.get(group_id)
                if answer is None:
                    continue
                round_no, summary = answer
                group = groups[group_id]
                lower, upper = summary.range_count_bounds(
                    interval.lo, interval.hi
                )
                out[sub_id] = ApproxAnswer(
                    sub_id=sub_id,
                    group_id=group_id,
                    attribute=group.attribute,
                    sensors=group.sensors,
                    interval=interval,
                    summary=summary,
                    round_no=round_no,
                    lower=lower,
                    upper=upper,
                    estimate=lower + (upper - lower) // 2,
                )
        return out

    def answer_for(self, sub_id: str) -> ApproxAnswer | None:
        """One subscription's current answer (None before any round)."""
        return self.query_answers().get(sub_id)
