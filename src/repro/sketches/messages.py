"""Wire messages of the sketch lane.

Defined here (below the network layer) so :class:`SketchLane` can
construct them; the network layer imports them into its ``Message``
union and its traffic meter.  Both expose the same three unit
properties every message carries — the meter additionally tracks their
sum as the ``sketch_units`` subset so the figures can split the lane's
bill out of the shared channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from .multires import MultiResolution
    from .qdigest import QDigest


@dataclass(frozen=True, slots=True)
class SketchSubscribeMessage:
    """Establishes one hop of a sketch group's push tree.

    Flooded from a subscription's home node toward the group's sensors
    along the reverse advertisement paths (the same deterministic split
    operator registration uses); each receiving broker records the
    sender as its upstream for the group and forwards per-origin
    pieces onward.  Costs one subscription unit per link, like any
    other registration message.
    """

    group_id: str
    attribute: str
    sensors: frozenset[str]
    home: str

    @property
    def subscription_units(self) -> int:
        return 1

    @property
    def event_units(self) -> int:
        return 0

    @property
    def advertisement_units(self) -> int:
        return 0

    @property
    def sketch_units(self) -> int:
        return 1


@dataclass(frozen=True, slots=True)
class SketchPushMessage:
    """One round's merged summary travelling one hop up a push tree.

    ``units`` is the data-unit cost the sender computed from the
    summary's bucket count (``SketchConfig.buckets_per_unit`` buckets
    fit the payload of one event-sized data unit); it bills the event
    channel — pushes replace raw event forwarding, so they must pay on
    the same meter the figures compare.
    """

    group_id: str
    round_no: int
    summary: "QDigest | MultiResolution"
    units: int

    @property
    def subscription_units(self) -> int:
        return 0

    @property
    def event_units(self) -> int:
        return self.units

    @property
    def advertisement_units(self) -> int:
        return 0

    @property
    def sketch_units(self) -> int:
        return self.units
