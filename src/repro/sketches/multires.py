"""Coarse multiresolution count estimator (Meliou et al. style).

A fixed stack of dyadic histograms over the value domain — one grid
per configured resolution level, ``2**r`` cells each.  Unlike the
q-digest, the size is a constant of the configuration (never of the
stream length), which makes it the cheap companion estimator for wide
scans: a range query reads the coarsest grids for the bulk of its span
and only the finest grid near the boundaries.

Same algebra contract as :class:`~repro.sketches.qdigest.QDigest`:
frozen, picklable, comparable by value, and mergeable by exact integer
vector addition (associative and commutative).  The error contract is
*unquantized*: for a closed query ``[vlo, vhi]``, values in finest-grid
cells strictly between the two boundary cells are certainly inside the
range (floor-quantization is monotone), the two boundary cells are the
only uncertainty — so ``lower <= true <= upper`` holds against the raw
count with no grid-alignment caveat, at the price of a data-dependent
(not a-priori) certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

_MAX_RESOLUTION = 20


@dataclass(frozen=True, slots=True)
class MultiResolution:
    """Dyadic histogram stack over ``[lo, hi]`` at fixed resolutions."""

    resolutions: tuple[int, ...]
    lo: float
    hi: float
    n: int = 0
    grids: tuple[tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        if not self.resolutions:
            raise ValueError("at least one resolution level is required")
        if list(self.resolutions) != sorted(set(self.resolutions)):
            raise ValueError(
                f"resolutions must be strictly increasing, "
                f"got {self.resolutions!r}"
            )
        if not 1 <= self.resolutions[-1] <= _MAX_RESOLUTION:
            raise ValueError(
                f"resolutions must lie in [1, {_MAX_RESOLUTION}], "
                f"got {self.resolutions!r}"
            )
        if not self.hi > self.lo:
            raise ValueError(f"domain [{self.lo!r}, {self.hi!r}] is empty")
        if not self.grids:
            object.__setattr__(
                self,
                "grids",
                tuple((0,) * (1 << r) for r in self.resolutions),
            )
        for r, grid in zip(self.resolutions, self.grids):
            if len(grid) != 1 << r:
                raise ValueError(
                    f"grid for resolution {r} has {len(grid)} cells, "
                    f"expected {1 << r}"
                )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total stored counters — a constant of the configuration."""
        return sum(len(grid) for grid in self.grids)

    @property
    def finest(self) -> int:
        return self.resolutions[-1]

    quantized = False
    """Bounds hold against the raw (unquantized) range count."""

    def cell(self, value: float, resolution: int | None = None) -> int:
        """The cell holding ``value`` at ``resolution`` (default finest)."""
        r = self.finest if resolution is None else resolution
        cells = 1 << r
        c = int((value - self.lo) * cells / (self.hi - self.lo))
        if c < 0:
            return 0
        if c >= cells:
            return cells - 1
        return c

    # ------------------------------------------------------------------
    def extended(self, values: Iterable[float]) -> "MultiResolution":
        """This estimator plus ``values`` counted at every resolution."""
        grids = [list(grid) for grid in self.grids]
        added = 0
        for value in values:
            for i, r in enumerate(self.resolutions):
                grids[i][self.cell(value, r)] += 1
            added += 1
        if not added:
            return self
        return replace(
            self,
            n=self.n + added,
            grids=tuple(tuple(grid) for grid in grids),
        )

    def merged(self, other: "MultiResolution") -> "MultiResolution":
        """Exact elementwise sum — associative and commutative."""
        if (self.resolutions, self.lo, self.hi) != (
            other.resolutions,
            other.lo,
            other.hi,
        ):
            raise ValueError(
                "cannot merge estimators with different grids: "
                f"{(self.resolutions, self.lo, self.hi)} vs "
                f"{(other.resolutions, other.lo, other.hi)}"
            )
        return replace(
            self,
            n=self.n + other.n,
            grids=tuple(
                tuple(a + b for a, b in zip(mine, theirs))
                for mine, theirs in zip(self.grids, other.grids)
            ),
        )

    def compressed(self) -> "MultiResolution":
        """No-op: the stack is already a fixed-size summary."""
        return self

    # ------------------------------------------------------------------
    def range_count_bounds(self, vlo: float, vhi: float) -> tuple[int, int]:
        """``(lower, upper)`` bracket of the raw count in ``[vlo, vhi]``.

        Finest-grid cells strictly between the boundary cells are
        certain (floor quantization is monotone, so their values lie
        strictly between ``vlo`` and ``vhi``); the boundary cells are
        the uncertainty.
        """
        if vhi < vlo:
            return 0, 0
        grid = self.grids[-1]
        c_lo = self.cell(vlo)
        c_hi = self.cell(vhi)
        uncertain = grid[c_lo]
        if c_hi != c_lo:
            uncertain += grid[c_hi]
        certain = sum(grid[c_lo + 1 : c_hi])
        return certain, certain + uncertain

    def estimate_range(self, vlo: float, vhi: float) -> int:
        lower, upper = self.range_count_bounds(vlo, vhi)
        return lower + (upper - lower) // 2

    @property
    def error_bound(self) -> int:
        """Worst-case half-width: the two heaviest finest cells."""
        heaviest = sorted(self.grids[-1])[-2:]
        return sum(heaviest) - sum(heaviest) // 2
