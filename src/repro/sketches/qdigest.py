"""The q-digest quantile summary (Shrivastava et al., *Medians and Beyond*).

A digest summarises a multiset of real values from a fixed closed
domain ``[lo, hi]``.  The domain is quantized into ``sigma = 2**levels``
equal *cells*; the digest is a sparse set of counted nodes of the
dyadic tree over those cells, kept canonical as a sorted tuple of
``(level, index, count)`` buckets (level ``levels`` = leaves, level 0 =
the root spanning the whole domain).

The structure is *functional*: :meth:`extended`, :meth:`merged` and
:meth:`compressed` return new digests, so instances are frozen,
hashable, picklable and order-independent to compare — exactly what the
network layer needs to ship them inside frozen messages and what the
property suite needs to state merge associativity/commutativity as
plain equality.

Error contract (the deterministic q-digest guarantee, stated over the
quantized domain): range-count queries are answered over the
cell-aligned range ``[cell(vlo), cell(vhi)]``.  Buckets entirely inside
the range count for certain; buckets straddling a range boundary are
uncertain.  Straddling buckets are necessarily internal nodes, every
internal node's count is at most ``n // k`` (the compression
invariant, preserved by all three operations), and at most two
straddle per level — so the half-width of ``[lower, upper]`` is at
most ``levels * (n // k) <= eps * n`` with ``eps = levels / k =
log2(sigma) / k``, and the true quantized count always lies inside the
bracket.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

Bucket = tuple[int, int, int]
"""One counted dyadic node: ``(level, index, count)``."""

_MAX_LEVELS = 30


@dataclass(frozen=True, slots=True)
class QDigest:
    """A q-digest over ``sigma = 2**levels`` cells of ``[lo, hi]``.

    ``k`` is the compression parameter: larger ``k`` keeps more
    buckets and tightens the rank-error bound ``eps = levels / k``.
    """

    k: int
    levels: int
    lo: float
    hi: float
    n: int = 0
    buckets: tuple[Bucket, ...] = ()

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not 1 <= self.levels <= _MAX_LEVELS:
            raise ValueError(
                f"levels must be in [1, {_MAX_LEVELS}], got {self.levels}"
            )
        if not self.hi > self.lo:
            raise ValueError(f"domain [{self.lo!r}, {self.hi!r}] is empty")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def sigma(self) -> int:
        """Number of leaf cells of the quantization grid."""
        return 1 << self.levels

    @property
    def eps(self) -> float:
        """The a-priori rank-error bound factor ``log2(sigma) / k``."""
        return self.levels / self.k

    @property
    def error_bound(self) -> int:
        """Deterministic absolute error certificate for any range count.

        ``levels * (n // k)`` — the exact integer form of ``eps * n``
        the compression invariant supports; never exceeded by
        :meth:`estimate_range` against the quantized truth.
        """
        return self.levels * (self.n // self.k)

    @property
    def size(self) -> int:
        """Number of stored buckets (what a push message pays for)."""
        return len(self.buckets)

    quantized = True
    """Answers are over cell-aligned ranges (see module docstring)."""

    # ------------------------------------------------------------------
    # quantization grid
    # ------------------------------------------------------------------
    def cell(self, value: float) -> int:
        """The leaf cell holding ``value`` (out-of-domain values clamp)."""
        span = self.hi - self.lo
        c = int((value - self.lo) * self.sigma / span)
        if c < 0:
            return 0
        if c >= self.sigma:
            return self.sigma - 1
        return c

    def query_cells(self, vlo: float, vhi: float) -> tuple[int, int]:
        """The cell-aligned range a ``[vlo, vhi]`` query is answered over."""
        return self.cell(vlo), self.cell(vhi)

    def _span(self, level: int, index: int) -> tuple[int, int]:
        width = 1 << (self.levels - level)
        start = index * width
        return start, start + width - 1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(
        cls, values: Iterable[float], k: int, levels: int, lo: float, hi: float
    ) -> "QDigest":
        return cls(k, levels, lo, hi).extended(values).compressed()

    def extended(self, values: Iterable[float]) -> "QDigest":
        """This digest plus ``values`` counted at their leaf cells."""
        counts = {(level, idx): c for level, idx, c in self.buckets}
        added = 0
        for value in values:
            key = (self.levels, self.cell(value))
            counts[key] = counts.get(key, 0) + 1
            added += 1
        if not added:
            return self
        return replace(self, n=self.n + added, buckets=_canonical(counts))

    def merged(self, other: "QDigest") -> "QDigest":
        """Lossless merge: bucket-wise count sum.

        Exactly associative and commutative (it is integer vector
        addition on the dyadic tree), so summaries may combine along
        arbitrary tree paths in arbitrary order.  Both operands must
        share the grid and compression parameter.
        """
        if (self.k, self.levels, self.lo, self.hi) != (
            other.k,
            other.levels,
            other.lo,
            other.hi,
        ):
            raise ValueError(
                "cannot merge digests with different grids: "
                f"{(self.k, self.levels, self.lo, self.hi)} vs "
                f"{(other.k, other.levels, other.lo, other.hi)}"
            )
        counts = {(level, idx): c for level, idx, c in self.buckets}
        for level, idx, c in other.buckets:
            key = (level, idx)
            counts[key] = counts.get(key, 0) + c
        return replace(self, n=self.n + other.n, buckets=_canonical(counts))

    def compressed(self) -> "QDigest":
        """One bottom-up compression pass; idempotent.

        Sibling pairs whose counts plus their parent's sum to at most
        ``n // k`` fold into the parent, so the digest size stays
        ``O(k * levels)`` while every internal node's count stays at
        most ``n // k`` — the invariant the error bound rests on.
        """
        threshold = self.n // self.k
        if threshold == 0 or not self.buckets:
            return self
        counts = {(level, idx): c for level, idx, c in self.buckets}
        for level in range(self.levels, 0, -1):
            parents = sorted(
                {idx >> 1 for lvl, idx in counts if lvl == level}
            )
            for parent in parents:
                left = counts.get((level, 2 * parent), 0)
                right = counts.get((level, 2 * parent + 1), 0)
                if left == 0 and right == 0:
                    continue
                above = counts.get((level - 1, parent), 0)
                if left + right + above <= threshold:
                    counts.pop((level, 2 * parent), None)
                    counts.pop((level, 2 * parent + 1), None)
                    counts[(level - 1, parent)] = left + right + above
        return replace(self, buckets=_canonical(counts))

    # ------------------------------------------------------------------
    # answering
    # ------------------------------------------------------------------
    def range_count_bounds(self, vlo: float, vhi: float) -> tuple[int, int]:
        """``(lower, upper)`` bracket of the quantized range count.

        The true number of summarised values whose cell lies in
        ``[cell(vlo), cell(vhi)]`` is always inside the bracket, and
        ``upper - lower <= 2 * error_bound``.
        """
        if vhi < vlo:
            return 0, 0
        c_lo, c_hi = self.query_cells(vlo, vhi)
        certain = 0
        uncertain = 0
        for level, idx, count in self.buckets:
            start, end = self._span(level, idx)
            if start >= c_lo and end <= c_hi:
                certain += count
            elif end < c_lo or start > c_hi:
                continue
            else:
                uncertain += count
        return certain, certain + uncertain

    def estimate_range(self, vlo: float, vhi: float) -> int:
        """Midpoint estimate; off by at most :attr:`error_bound`."""
        lower, upper = self.range_count_bounds(vlo, vhi)
        return lower + (upper - lower) // 2

    def rank_bounds(self, value: float) -> tuple[int, int]:
        """Bracket of the rank of ``value`` (count of cells <= its cell)."""
        return self.range_count_bounds(self.lo, value)

    def check_invariant(self) -> None:
        """Assert the structural invariants (property-suite helper)."""
        total = 0
        cap = self.n // self.k
        seen = set()
        for level, idx, count in self.buckets:
            assert 0 <= level <= self.levels, (level, self.levels)
            assert 0 <= idx < (1 << level), (level, idx)
            assert count > 0, (level, idx, count)
            assert (level, idx) not in seen
            seen.add((level, idx))
            if level < self.levels:
                assert count <= cap, (
                    f"internal bucket {(level, idx)} holds {count} "
                    f"> n//k = {cap}"
                )
            total += count
        assert total == self.n, (total, self.n)
        assert self.buckets == tuple(sorted(self.buckets))


def _canonical(counts: dict[tuple[int, int], int]) -> tuple[Bucket, ...]:
    return tuple(
        (level, idx, c)
        for (level, idx), c in sorted(counts.items())
        if c > 0
    )


def merge_all(digests: Sequence[QDigest]) -> QDigest:
    """Fold a non-empty sequence of digests into one (then compress)."""
    if not digests:
        raise ValueError("merge_all needs at least one digest")
    out = digests[0]
    for d in digests[1:]:
        out = out.merged(d)
    return out.compressed()
