"""Subscription subsumption: pair-wise, exact and probabilistic set
filtering (Sections III and V-B)."""

from .exact import Box, ExactCoverTooLarge, boxes_cover, uncovered_probe
from .pairwise import find_cover, is_pairwise_covered, reduce_pairwise
from .setfilter import (
    ProbabilisticSetFilter,
    SetFilterDecision,
    required_samples,
)

__all__ = [
    "Box",
    "ExactCoverTooLarge",
    "ProbabilisticSetFilter",
    "SetFilterDecision",
    "boxes_cover",
    "find_cover",
    "is_pairwise_covered",
    "reduce_pairwise",
    "required_samples",
    "uncovered_probe",
]
