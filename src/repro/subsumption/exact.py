"""Exact set-subsumption decision for boxes (ground truth).

Set subsumption — is a new subscription's box contained in the *union*
of stored boxes — is co-NP complete in general [21]; for axis-aligned
closed boxes an exact decision is still exponential in the dimension but
perfectly feasible at test scale.  This module provides that decision
via coordinate compression, and is used to

* validate the probabilistic set filter (its "not covered" answers must
  always agree, its "covered" answers must agree up to the configured
  error), and
* compute ground-truth subsumption in unit tests and ablations.

The decision procedure: collect the endpoint coordinates of all boxes in
each dimension, restrict to the target box, and probe every grid point
built from endpoints and midpoints of consecutive endpoints.  Because
the union of closed boxes is closed, the uncovered region (if any) is
relatively open inside the target and therefore contains one of these
probe points, so the test is exact — see ``tests/test_subsumption_exact.py``
for the adversarial cases.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..model.intervals import Interval

Box = tuple[Interval, ...]


class ExactCoverTooLarge(RuntimeError):
    """The probe grid exceeded the configured budget."""


def _probe_coordinates(target: Interval, boxes: Sequence[Box], dim: int) -> list[float]:
    """Probe coordinates of one dimension: endpoints and midpoints."""
    coords = {target.lo, target.hi}
    for box in boxes:
        iv = box[dim]
        for value in (iv.lo, iv.hi):
            if target.contains(value):
                coords.add(value)
    ordered = sorted(coords)
    probes = list(ordered)
    for a, b in zip(ordered, ordered[1:]):
        probes.append((a + b) / 2.0)
    return sorted(probes)


def _point_in_box(point: Sequence[float], box: Box) -> bool:
    return all(iv.contains(x) for iv, x in zip(box, point))


def boxes_cover(
    target: Box,
    cover: Sequence[Box],
    max_probes: int = 2_000_000,
) -> bool:
    """Exact test: is ``target`` contained in the union of ``cover``?

    All boxes must share the dimension of ``target``.  Empty targets are
    trivially covered; boxes with an empty side contribute nothing.
    Raises :class:`ExactCoverTooLarge` when the probe grid would exceed
    ``max_probes`` points (keep the dimension/box count small — this is
    a validation tool, not the production filter).
    """
    if any(iv.is_empty for iv in target):
        return True
    live = [
        box
        for box in cover
        if len(box) == len(target)
        and not any(iv.is_empty for iv in box)
        and all(a.overlaps(b) for a, b in zip(box, target))
    ]
    for box in live:
        if all(b.contains_interval(t) for b, t in zip(box, target)):
            return True
    if not live:
        return False

    grids = [_probe_coordinates(target[d], live, d) for d in range(len(target))]
    total = 1
    for grid in grids:
        total *= len(grid)
        if total > max_probes:
            raise ExactCoverTooLarge(
                f"probe grid of {total}+ points exceeds budget {max_probes}"
            )
    for point in itertools.product(*grids):
        if not any(_point_in_box(point, box) for box in live):
            return False
    return True


def uncovered_probe(
    target: Box,
    cover: Sequence[Box],
    max_probes: int = 2_000_000,
) -> tuple[float, ...] | None:
    """A witness point of ``target`` outside the union, if one exists.

    Same grid as :func:`boxes_cover`; used by tests to exhibit the gap
    behind a false-positive subsumption decision.
    """
    if any(iv.is_empty for iv in target):
        return None
    live = [
        box
        for box in cover
        if len(box) == len(target) and not any(iv.is_empty for iv in box)
    ]
    grids = [_probe_coordinates(target[d], live, d) for d in range(len(target))]
    total = 1
    for grid in grids:
        total *= len(grid)
        if total > max_probes:
            raise ExactCoverTooLarge(
                f"probe grid of {total}+ points exceeds budget {max_probes}"
            )
    for point in itertools.product(*grids):
        if not any(_point_in_box(point, box) for box in live):
            return point
    return None
