"""Pair-wise covering detection.

The operator-placement and multi-join baselines (Sections III-A/B)
filter subscriptions by *pair-wise* coverage: a new operator is redundant
iff one single stored operator covers it entirely.  This is the
"well established publish/subscribe technique that achieves pairwise
subscription reduction" the paper builds on, and the reference point the
set filter improves upon (Figs 4, 6, 8, 10).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..model.operators import CorrelationOperator


def find_cover(
    operator: CorrelationOperator,
    candidates: Iterable[CorrelationOperator],
) -> CorrelationOperator | None:
    """First stored operator that single-handedly covers ``operator``.

    Candidates are scanned in iteration order (the arrival order the
    paper uses — earlier subscriptions are not retroactively filtered).
    """
    for candidate in candidates:
        if candidate.covers(operator):
            return candidate
    return None


def is_pairwise_covered(
    operator: CorrelationOperator,
    candidates: Iterable[CorrelationOperator],
) -> bool:
    """Whether any single candidate covers ``operator``."""
    return find_cover(operator, candidates) is not None


def reduce_pairwise(
    operators: Sequence[CorrelationOperator],
) -> list[CorrelationOperator]:
    """Arrival-order pair-wise reduction of a whole batch.

    Keeps an operator iff no *earlier kept* operator covers it —
    mirroring the online behaviour of the baselines, where traffic
    already spent on earlier subscriptions is not reclaimed.
    """
    kept: list[CorrelationOperator] = []
    for operator in operators:
        if find_cover(operator, kept) is None:
            kept.append(operator)
    return kept
