"""Probabilistic set-subsumption filtering — the FSF filter phase.

Reproduces the role of the probabilistic subsumption checker of Ouksel,
Jurca, Podnar & Aberer (Middleware 2006) [15] cited in Section V-B: an
algorithm that "guarantees detection of set subsumption with a
configurable probability of error", whose false-positive decisions are
the source of the (small) recall loss measured in Fig. 12.

Implementation: Monte-Carlo point sampling.  To decide whether a new
subscription box ``s`` is covered by the union of stored boxes, draw
``n`` points uniformly from ``s`` and test membership in the union.

* Any point that falls outside the union proves *not covered* —
  "not covered" answers are always correct (no false negatives at the
  filter level).
* If all ``n`` points are covered, answer *covered*.  When the union in
  truth misses a gap of at least a fraction ``theta`` of ``s``'s volume,
  the probability of this wrong answer is ``(1 - theta)^n``; choosing
  ``n = ceil(ln(eps) / ln(1 - theta))`` bounds it by the configured
  error probability ``eps``.

As in [15], the *actual* error observed is far below the bound (gaps
are usually much larger than ``theta``, or hit quickly), and shrinks as
subscription sets grow — the recall experiment reproduces this.

Deterministic shortcuts make the common cases exact and fast: a single
covering box proves coverage; an uncovered corner of ``s`` proves
non-coverage.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..model.intervals import Interval

Box = tuple[Interval, ...]


def required_samples(error_probability: float, gap_fraction: float) -> int:
    """Samples needed so that P(miss a gap of ``gap_fraction``) <= eps."""
    if not 0 < error_probability < 1:
        raise ValueError("error_probability must be in (0, 1)")
    if not 0 < gap_fraction < 1:
        raise ValueError("gap_fraction must be in (0, 1)")
    return max(1, math.ceil(math.log(error_probability) / math.log(1.0 - gap_fraction)))


@dataclass(frozen=True, slots=True)
class SetFilterDecision:
    """Outcome of one subsumption check, with its evidence."""

    covered: bool
    certain: bool
    samples_used: int
    witness: tuple[float, ...] | None = None


class ProbabilisticSetFilter:
    """The configurable-error set-subsumption checker.

    Parameters
    ----------
    error_probability:
        Upper bound ``eps`` on the probability of declaring "covered"
        when an uncovered gap of relative volume >= ``gap_fraction``
        exists.  The paper's recall/traffic trade-off knob
        (Section VI-F): smaller values cost more samples and recover
        recall.
    gap_fraction:
        Relative gap volume ``theta`` the guarantee is stated against.
    rng:
        Optional NumPy generator for reproducible sampling.
    """

    def __init__(
        self,
        error_probability: float = 0.05,
        gap_fraction: float = 0.10,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.error_probability = error_probability
        self.gap_fraction = gap_fraction
        self.samples = required_samples(error_probability, gap_fraction)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.checks = 0
        self.sampled_points = 0

    # ------------------------------------------------------------------
    def decide(self, target: Box, cover: Sequence[Box]) -> SetFilterDecision:
        """Full decision with evidence; see :meth:`is_subsumed`."""
        self.checks += 1
        live = [
            box
            for box in cover
            if len(box) == len(target)
            and not any(iv.is_empty for iv in box)
            and all(a.overlaps(b) for a, b in zip(box, target))
        ]
        # Deterministic fast paths -------------------------------------
        for box in live:
            if all(b.contains_interval(t) for b, t in zip(box, target)):
                return SetFilterDecision(True, True, 0)
        if not live:
            corner = tuple(iv.lo for iv in target)
            return SetFilterDecision(False, True, 0, witness=corner)
        witness = self._uncovered_corner(target, live)
        if witness is not None:
            return SetFilterDecision(False, True, 0, witness=witness)
        # Monte-Carlo phase --------------------------------------------
        dims = len(target)
        lows = np.array([iv.lo for iv in target])
        spans = np.array([iv.length for iv in target])
        u = self._rng.random((self.samples, dims))
        points = lows + u * spans
        self.sampled_points += self.samples
        for row in points:
            if not self._point_covered(row, live):
                return SetFilterDecision(False, True, self.samples, tuple(row))
        return SetFilterDecision(True, False, self.samples)

    def is_subsumed(self, target: Box, cover: Sequence[Box]) -> bool:
        """Whether ``target`` is (probably) inside the union of ``cover``.

        One-sided error: ``False`` answers are always correct; ``True``
        answers are wrong with probability <= ``error_probability`` for
        gaps of relative volume >= ``gap_fraction``.
        """
        return self.decide(target, cover).covered

    # ------------------------------------------------------------------
    def decide_product(
        self,
        target: Box,
        covers_per_dim: Sequence[Sequence[Interval]],
    ) -> SetFilterDecision:
        """Subsumption against a *product of unions* (the FSF criterion).

        The Filter-Split-Forward filter asks, per stream slot, whether
        the new operator's range is covered by the union of the ranges
        already requested on that stream (Section V-B's treatment of
        each sensor — or each attribute plus the location — as one
        attribute of the set-subsumption problem).  The covered region
        is then a product of 1-D unions; a point of the target box is
        covered iff every coordinate falls into some stored interval of
        its dimension.

        The same one-sided Monte-Carlo guarantee applies: "not covered"
        answers are certain, "covered" answers err with probability at
        most ``error_probability`` for gaps of relative volume
        ``gap_fraction``.
        """
        self.checks += 1
        if len(covers_per_dim) != len(target):
            raise ValueError("one candidate list per target dimension required")
        live: list[list[Interval]] = []
        for dim, (iv, candidates) in enumerate(zip(target, covers_per_dim)):
            relevant = [c for c in candidates if not c.is_empty and c.overlaps(iv)]
            if not relevant:
                corner = tuple(t.lo for t in target)
                return SetFilterDecision(False, True, 0, witness=corner)
            live.append(relevant)
        # Deterministic per-dimension shortcut: one stored interval
        # containing the whole target range on every dimension.
        if all(
            any(c.contains_interval(iv) for c in cands)
            for iv, cands in zip(target, live)
        ):
            return SetFilterDecision(True, True, 0)
        # Deterministic corner witnesses (ends of each range).
        for dim, (iv, cands) in enumerate(zip(target, live)):
            for endpoint in (iv.lo, iv.hi):
                if not any(c.contains(endpoint) for c in cands):
                    witness = tuple(
                        endpoint if d == dim else target[d].lo
                        for d in range(len(target))
                    )
                    return SetFilterDecision(False, True, 0, witness=witness)
        # Monte-Carlo phase: independent per-dimension membership.
        dims = len(target)
        lows = np.array([iv.lo for iv in target])
        spans = np.array([iv.length for iv in target])
        u = self._rng.random((self.samples, dims))
        points = lows + u * spans
        self.sampled_points += self.samples
        for row in points:
            for x, cands in zip(row, live):
                if not any(c.lo <= x <= c.hi for c in cands):
                    return SetFilterDecision(False, True, self.samples, tuple(row))
        return SetFilterDecision(True, False, self.samples)

    def is_product_subsumed(
        self,
        target: Box,
        covers_per_dim: Sequence[Sequence[Interval]],
    ) -> bool:
        """Boolean form of :meth:`decide_product`."""
        return self.decide_product(target, covers_per_dim).covered

    # ------------------------------------------------------------------
    @staticmethod
    def _point_covered(point: np.ndarray, boxes: Sequence[Box]) -> bool:
        for box in boxes:
            for iv, x in zip(box, point):
                if not (iv.lo <= x <= iv.hi):
                    break
            else:
                return True
        return False

    @staticmethod
    def _uncovered_corner(
        target: Box, boxes: Sequence[Box]
    ) -> tuple[float, ...] | None:
        """Check the 2^d corners of the target — cheap exact witnesses.

        Corners catch the frequent case of a union that clips an edge of
        the new subscription; dimension is small (<= 5 attributes in the
        experiments) so this stays cheap.
        """
        if len(target) > 10:  # 1024 corners max; beyond that skip
            return None
        for corner in itertools.product(*((iv.lo, iv.hi) for iv in target)):
            covered = False
            for box in boxes:
                if all(iv.contains(x) for iv, x in zip(box, corner)):
                    covered = True
                    break
            if not covered:
                return corner
        return None
