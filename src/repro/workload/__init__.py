"""Workload substrate: synthetic SensorScope replay + subscriptions."""

from .scenarios import (
    ALL_SCENARIOS,
    LARGE_NETWORK,
    LARGE_SOURCES,
    MEDIUM,
    SCALE_ENV_VAR,
    SCALE_PRESETS,
    SMALL,
    Scenario,
    default_scale,
    parse_scale,
)
from .sensorscope import Replay, ReplayConfig, build_replay
from .streams import (
    STREAM_PROFILES,
    StreamProfile,
    profile_for,
    station_offset,
    synthesize_stream,
)
from .subscriptions import (
    PlacedSubscription,
    SubscriptionWorkloadConfig,
    generate_subscriptions,
    prefix,
)

__all__ = [
    "ALL_SCENARIOS",
    "LARGE_NETWORK",
    "LARGE_SOURCES",
    "MEDIUM",
    "PlacedSubscription",
    "Replay",
    "ReplayConfig",
    "SCALE_ENV_VAR",
    "SCALE_PRESETS",
    "SMALL",
    "STREAM_PROFILES",
    "Scenario",
    "StreamProfile",
    "SubscriptionWorkloadConfig",
    "build_replay",
    "default_scale",
    "generate_subscriptions",
    "parse_scale",
    "prefix",
    "profile_for",
    "station_offset",
    "synthesize_stream",
]
