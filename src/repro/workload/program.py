"""Workload programs — one declarative experiment timeline.

The experiment layer historically drove three siloed timeline sources:
event replay (:class:`ReplayConfig` / :class:`DynamicReplayConfig`),
sensor churn (:class:`ChurnConfig`), and a fixed subscription prefix
registered at t=0 and never retired.  A :class:`WorkloadProgram`
composes all three **plus a query lifecycle** — Poisson admissions with
exponential-or-fixed holds and retirement
(:class:`QueryLifecycleConfig`, in the style of Mitici et al.'s query
assignment workloads) — into one declarative, picklable value that
compiles against a deployment and executes through the
:class:`repro.api.Session` facade.

The pipeline is three-staged so the sharded runner can memoise the
expensive middle::

    WorkloadProgram ── source(deployment) ──► ProgramSource
        (declarative, picklable)    (replay + workload + lifecycle draws)
                │                               │
                └──── compile(deployment, source) ──► CompiledProgram
                                                (admissions + events +
                                                 churn + oracle fences)
                                  │
                execute_program(compiled, approach) ──► ProgramExecution
                                  (a Session driven end to end)

Everything random routes through :func:`repro.seeding.derive_seed`, so
a program compiles bit-identically in any process under any
``PYTHONHASHSEED`` — the property the sharded experiment runner (and
future cross-machine sharding: programs are self-contained by
construction) depends on.

Clock convention: **program time 0 is the replay start**.  Compilation
shifts everything by ``replay_start`` (the fixed virtual instant the
experiment runner has always used), so admissions, retirements, churn
transitions and publications share one simulation clock and the
oracle's per-query ``[submit, cancel]`` fences line up with the
network's lifecycle edges exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..model.events import SimpleEvent
from ..model.subscriptions import Subscription
from ..network.faults import FaultPlan
from ..network.reliability import ReliabilityConfig
from ..network.topology import Deployment
from ..seeding import derive_seed
from ..sketches import SketchConfig
from .sensorscope import (
    ChurnConfig,
    ChurnSchedule,
    DynamicReplay,
    DynamicReplayConfig,
    Replay,
    ReplayConfig,
    build_dynamic_replay,
    build_replay,
)
from .subscriptions import (
    PlacedSubscription,
    SubscriptionWorkloadConfig,
    generate_subscriptions,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.handle import QueryHandle
    from ..api.query import Query
    from ..api.session import Session
    from ..metrics.oracle import SubscriptionTruth
    from ..network.links import TrafficSnapshot
    from ..protocols.base import Approach

REPLAY_START = 10_000.0
"""Virtual time at which event replay begins — far beyond any
subscription-phase activity, so the replayed timestamps (and therefore
the oracle's ground truth) are identical for every approach.  Program
time 0 maps here."""


# ---------------------------------------------------------------------------
# the query lifecycle: Poisson admit, exponential-or-fixed hold, retire
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class QueryLifecycleConfig:
    """An ongoing query-assignment workload over the replay span.

    Users keep arriving while sensors stream: admissions form a Poisson
    process of rate ``admit_rate`` (queries per unit of virtual time)
    inside the fraction-trimmed window ``[start_fraction, end_fraction]``
    of the replay span, and each admitted query is retired after a hold
    drawn exponentially with mean ``hold`` (``hold_distribution =
    "exponential"``) or after exactly ``hold`` (``"fixed"``);
    ``hold=None`` admits without ever retiring.  All draws are seeded
    via :func:`repro.seeding.derive_seed`, so the schedule is identical
    in every process.
    """

    admit_rate: float = 0.05
    hold: float | None = 120.0
    hold_distribution: str = "exponential"
    start_fraction: float = 0.1
    end_fraction: float = 0.85
    max_admissions: int = 500
    seed: int = 23

    def __post_init__(self) -> None:
        if self.admit_rate <= 0:
            raise ValueError("admit_rate must be positive")
        if self.hold is not None and self.hold <= 0:
            raise ValueError("hold must be positive (or None: never retire)")
        if self.hold_distribution not in ("exponential", "fixed"):
            raise ValueError(
                "hold_distribution must be 'exponential' or 'fixed', "
                f"got {self.hold_distribution!r}"
            )
        if not 0 <= self.start_fraction < self.end_fraction <= 1:
            raise ValueError("need 0 <= start_fraction < end_fraction <= 1")
        if self.max_admissions < 0:
            raise ValueError("max_admissions must be non-negative")


@dataclass(frozen=True, slots=True)
class LifecycleEdge:
    """One drawn admit/retire pair on the program clock (0 = replay
    start); ``retire=None`` means the query stays until the end."""

    admit: float
    retire: float | None


def build_lifecycle_edges(
    deployment_seed: int, span: float, config: QueryLifecycleConfig
) -> tuple[LifecycleEdge, ...]:
    """The deterministic admit/retire schedule over a replay of ``span``.

    A single seeded stream draws inter-admission gaps and holds
    alternately, so the schedule is a pure function of
    ``(deployment_seed, config)`` — independent of process, platform
    and ``PYTHONHASHSEED``.
    """
    if span <= 0:
        raise ValueError("span must be positive")
    rng = np.random.default_rng(
        derive_seed(deployment_seed, config.seed, "admit-clock")
    )
    lo = config.start_fraction * span
    hi = config.end_fraction * span
    edges: list[LifecycleEdge] = []
    t = lo
    while len(edges) < config.max_admissions:
        t += float(rng.exponential(1.0 / config.admit_rate))
        if t >= hi:
            break
        if config.hold is None:
            retire = None
        elif config.hold_distribution == "fixed":
            retire = t + config.hold
        else:
            retire = t + float(rng.exponential(config.hold))
        edges.append(LifecycleEdge(t, retire))
    return tuple(edges)


# ---------------------------------------------------------------------------
# the program: replay + churn + lifecycle + explicit queries, declaratively
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ProgramQuery:
    """One explicitly authored admission (a fluent :class:`repro.api.Query`
    builder or a pre-built model subscription).

    ``admit``/``retire`` are program-clock instants; ``admit <= 0``
    means the query is registered in the settled setup phase before the
    replay (the paper's sequential protocol).  ``at`` names the user's
    node (default: the deployment's first user node).
    """

    query: "Query | Subscription"
    admit: float = 0.0
    retire: float | None = None
    at: str | None = None

    def __post_init__(self) -> None:
        if self.retire is not None and self.retire <= max(self.admit, 0.0):
            raise ValueError(
                f"retire at {self.retire:g} must come after admit at "
                f"{self.admit:g} (and after the replay starts)"
            )


@dataclass(frozen=True)
class WorkloadProgram:
    """One declarative experiment: who publishes, who churns, who asks.

    * ``subscriptions`` drives the generated query pool (the existing
      subscription generator); the first ``static_prefix`` of them
      (default: all) are admitted settled at t=0 and never retired —
      exactly the historical fixed-prefix protocol;
    * ``replay``/``dynamic`` select the measurement campaign (static
      one-day vs multi-day drifting/bursty), ``churn`` the sensor
      leave/rejoin schedule (requires ``dynamic``);
    * ``lifecycle`` appends the Poisson admit/retire workload, drawing
      its queries from the generated pool *after* the static prefix;
    * ``queries`` appends explicitly authored admissions (fluent
      :class:`repro.api.Query` builders or model subscriptions);
    * ``faults`` runs the whole program over an unreliable transport
      (:class:`~repro.network.faults.FaultPlan`: link loss/delay plus
      correlated broker outages, compiled into scheduled crash/recover
      edges); ``reliability`` opts the brokers into the ack/retransmit
      and soft-state-refresh layer;
    * ``placement`` selects operator placement: ``"paper"`` (the
      heuristic, the default — compiled programs carry no plans and are
      bit-identical to pre-placement programs) or ``"compiled"`` (the
      ``repro.placement`` compiler prices candidate rendezvous nodes
      against the architecture graph and the replay statistics, and
      registration executes the resulting
      :class:`~repro.placement.plan.PlacementPlan` routing tables).

    Programs are frozen, hashable and picklable — a program plus a
    deployment seed *is* the experiment, which is what makes points
    shardable across processes (and, later, machines).
    """

    subscriptions: SubscriptionWorkloadConfig
    replay: ReplayConfig = field(default_factory=ReplayConfig)
    dynamic: DynamicReplayConfig | None = None
    churn: ChurnConfig | None = None
    lifecycle: QueryLifecycleConfig | None = None
    static_prefix: int | None = None
    queries: tuple[ProgramQuery, ...] = ()
    faults: FaultPlan | None = None
    reliability: ReliabilityConfig | None = None
    replay_start: float = REPLAY_START
    placement: str = "paper"
    answer_mode: str = "exact"
    sketch: SketchConfig | None = None

    def __post_init__(self) -> None:
        if self.placement not in ("paper", "compiled"):
            raise ValueError(
                f"placement must be 'paper' or 'compiled', got {self.placement!r}"
            )
        if self.answer_mode not in ("exact", "approximate"):
            raise ValueError(
                f"answer_mode must be 'exact' or 'approximate', "
                f"got {self.answer_mode!r}"
            )
        if self.sketch is not None and self.answer_mode != "approximate":
            raise ValueError(
                "a sketch config requires answer_mode='approximate'"
            )
        if self.answer_mode == "approximate":
            if self.faults is not None or self.reliability is not None:
                raise ValueError(
                    "the approximate lane assumes lossless in-order "
                    "delivery; it cannot ride the unreliable transport"
                )
            if self.placement == "compiled":
                raise ValueError(
                    "compiled placement routes exact operator trees; "
                    "it cannot be combined with answer_mode='approximate'"
                )
        if self.placement == "compiled":
            if self.churn is not None:
                raise ValueError(
                    "compiled placement prices a static architecture graph; "
                    "it cannot be combined with sensor churn"
                )
            if self.faults is not None or self.reliability is not None:
                raise ValueError(
                    "compiled placement cannot ride the unreliable transport: "
                    "soft-state refresh re-offers operator pieces without "
                    "their plan, which would misroute them"
                )
        if self.churn is not None and self.dynamic is None:
            raise ValueError("churn requires a dynamic replay")
        if (
            self.churn is not None
            and self.faults is not None
            and self.faults.outages
        ):
            raise ValueError(
                "sensor churn and broker outages cannot be combined yet: "
                "their oracle fences over the same sensors would overlap"
            )
        if self.static_prefix is not None and not (
            0 <= self.static_prefix <= self.subscriptions.n_subscriptions
        ):
            raise ValueError(
                f"static_prefix {self.static_prefix} outside "
                f"[0, {self.subscriptions.n_subscriptions}]"
            )
        if self.replay_start <= 0:
            raise ValueError("replay_start must be positive")

    @property
    def prefix(self) -> int:
        """The resolved static prefix (admit-at-0, never retired)."""
        if self.static_prefix is None:
            return self.subscriptions.n_subscriptions
        return self.static_prefix

    def with_prefix(self, n: int) -> "WorkloadProgram":
        """The same program measured at static prefix ``n`` — the
        per-point view ``run_series`` walks (generation is
        prefix-stable, so smaller prefixes reuse one source)."""
        return replace(self, static_prefix=n)

    # ------------------------------------------------------------------
    def source(self, deployment: Deployment) -> "ProgramSource":
        """Materialise the expensive, prefix-independent middle stage.

        Synthesises the replay, draws the lifecycle schedule over its
        span, and generates a subscription pool long enough for the
        largest prefix plus every lifecycle admission.  One source
        serves every ``with_prefix`` view of the same program — the
        sharded runner memoises it per (scenario, scale) exactly like
        it memoises churn state.
        """
        if self.dynamic is not None:
            replay: Replay = build_dynamic_replay(
                deployment, self.dynamic, self.churn
            )
            span = replay.span  # type: ignore[attr-defined]
        else:
            replay = build_replay(deployment, self.replay)
            cfg = self.replay
            span = cfg.rounds * cfg.round_period + cfg.jitter
        edges = (
            build_lifecycle_edges(deployment.seed, span, self.lifecycle)
            if self.lifecycle is not None
            else ()
        )
        pool_cfg = replace(
            self.subscriptions,
            n_subscriptions=self.subscriptions.n_subscriptions + len(edges),
        )
        workload = tuple(
            generate_subscriptions(
                deployment, replay.medians, pool_cfg, spreads=replay.spreads
            )
        )
        schedule = getattr(replay, "churn", None)
        shifted_churn = (
            schedule.shifted(self.replay_start)
            if schedule is not None and schedule
            else None
        )
        return ProgramSource(
            program=self,
            deployment_fingerprint=deployment_fingerprint(deployment),
            replay=replay,
            events=tuple(replay.shifted(self.replay_start)),
            churn=shifted_churn,
            workload=workload,
            edges=edges,
            span=span,
        )

    def compile(
        self, deployment: Deployment, source: "ProgramSource | None" = None
    ) -> "CompiledProgram":
        """Resolve the program against ``deployment`` into one timeline.

        ``source`` may be a pre-built :meth:`source` of the *same*
        program (``static_prefix`` aside); passing a foreign source is
        rejected rather than silently compiling the wrong workload.
        """
        if self.faults is not None:
            self.faults.validate_against(deployment)
        if source is None:
            source = self.source(deployment)
        elif not source.compatible_with(self, deployment):
            raise ValueError(
                "source was built for a different program or deployment; "
                "rebuild it with program.source(deployment)"
            )
        prefix = self.prefix
        admissions: list[Admission] = [
            Admission(
                sub_id=item.subscription.sub_id,
                node_id=item.node_id,
                subscription=item.subscription,
                admit=None,
                retire=None,
            )
            for item in source.workload[:prefix]
        ]
        for i, edge in enumerate(source.edges):
            item = source.workload[prefix + i]
            admissions.append(
                Admission(
                    sub_id=item.subscription.sub_id,
                    node_id=item.node_id,
                    subscription=item.subscription,
                    admit=self.replay_start + edge.admit,
                    retire=(
                        self.replay_start + edge.retire
                        if edge.retire is not None
                        else None
                    ),
                )
            )
        admissions.extend(self._explicit_admissions(deployment))
        seen: set[str] = set()
        for admission in admissions:
            if admission.sub_id in seen:
                raise ValueError(
                    f"duplicate query id {admission.sub_id!r} in program"
                )
            seen.add(admission.sub_id)
        plans: Mapping[str, object] | None = None
        if self.placement == "compiled":
            # Function-local upward import — the sanctioned lazy idiom
            # (placement sits above workload in the layer contract).
            from ..placement import compile_placement

            plans = compile_placement(deployment, admissions, source.events)
        return CompiledProgram(
            deployment=deployment,
            events=source.events,
            churn=source.churn,
            admissions=tuple(admissions),
            replay_start=self.replay_start,
            span=source.span,
            faults=self.faults,
            reliability=self.reliability,
            plans=plans,
            answer_mode=self.answer_mode,
            sketch=self.sketch,
        )

    def _explicit_admissions(self, deployment: Deployment) -> list["Admission"]:
        from ..api.query import Query  # local: workload stays api-optional

        out: list[Admission] = []
        for i, pq in enumerate(self.queries):
            if isinstance(pq.query, Query):
                sub_id = pq.query.name or f"pq{i:04d}"
                subscription = pq.query.build(deployment, sub_id=sub_id)
            else:
                subscription = pq.query
            node_id = pq.at
            if node_id is None:
                users = deployment.user_nodes
                if not users:
                    raise ValueError("deployment has no user nodes")
                node_id = users[0]
            out.append(
                Admission(
                    sub_id=subscription.sub_id,
                    node_id=node_id,
                    subscription=subscription,
                    admit=(
                        None
                        if pq.admit <= 0
                        else self.replay_start + pq.admit
                    ),
                    retire=(
                        self.replay_start + pq.retire
                        if pq.retire is not None
                        else None
                    ),
                )
            )
        return out


def deployment_fingerprint(deployment: Deployment) -> tuple:
    """What identifies a deployment for source-reuse purposes: the seed
    alone is not enough (every topology factory accepts the same seed
    space), so the node set and the sensor placements go in too."""
    return (
        deployment.seed,
        tuple(sorted(deployment.graph.nodes)),
        tuple(sorted(s.sensor_id for s in deployment.sensors)),
    )


@dataclass(frozen=True)
class ProgramSource:
    """The expensive, prefix-independent middle stage of compilation:
    synthesized replay (events already on the simulation clock), churn
    schedule, subscription pool and lifecycle draws."""

    program: WorkloadProgram
    deployment_fingerprint: tuple
    replay: Replay
    events: tuple[SimpleEvent, ...]
    churn: ChurnSchedule | None
    workload: tuple[PlacedSubscription, ...]
    edges: tuple[LifecycleEdge, ...]
    span: float

    def compatible_with(
        self, program: WorkloadProgram, deployment: Deployment
    ) -> bool:
        """Whether this source can compile ``program`` (prefix aside).

        The fault plan and reliability config are neutralised too: they
        shape execution, never the generated replay/pool/edges, so one
        source serves a whole loss sweep.
        """
        neutral = dict(
            static_prefix=None,
            faults=None,
            reliability=None,
            placement="paper",
            answer_mode="exact",
            sketch=None,
        )
        return (
            replace(self.program, **neutral) == replace(program, **neutral)
            and self.deployment_fingerprint == deployment_fingerprint(deployment)
        )


# ---------------------------------------------------------------------------
# the compiled timeline
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Admission:
    """One resolved query admission on the simulation clock.

    ``admit=None`` marks a settled *setup* registration (submitted
    sequentially before the replay, the paper's protocol); a float is
    a scheduled mid-replay admission.  ``retire`` is the scheduled
    cancellation instant, if any.
    """

    sub_id: str
    node_id: str
    subscription: Subscription
    admit: float | None
    retire: float | None


@dataclass(frozen=True)
class CompiledProgram:
    """A program resolved against one deployment: every timeline merged.

    The compiled form is what one experiment point runs and what the
    oracle fences from — the admissions' scheduled times *are* the
    activation/cancellation fences, identical for every approach (the
    same role the fixed ``replay_start`` plays for event timestamps).
    """

    deployment: Deployment
    events: tuple[SimpleEvent, ...]
    churn: ChurnSchedule | None
    admissions: tuple[Admission, ...]
    replay_start: float
    span: float
    faults: FaultPlan | None = None
    reliability: ReliabilityConfig | None = None
    plans: Mapping[str, object] | None = None
    answer_mode: str = "exact"
    sketch: SketchConfig | None = None

    def plan_for(self, sub_id: str) -> object | None:
        """The compiled :class:`~repro.placement.plan.PlacementPlan` for
        a query, or ``None`` (paper placement / no plan computed) — the
        null plan registers exactly as every program always has."""
        if self.plans is None:
            return None
        return self.plans.get(sub_id)

    @property
    def setup(self) -> tuple[Admission, ...]:
        """Settled pre-replay registrations, in registration order."""
        return tuple(a for a in self.admissions if a.admit is None)

    @property
    def scheduled(self) -> tuple[Admission, ...]:
        """Mid-replay admissions, in (admit, sub_id) order."""
        return tuple(
            sorted(
                (a for a in self.admissions if a.admit is not None),
                key=lambda a: (a.admit, a.sub_id),
            )
        )

    @property
    def activations(self) -> dict[str, float]:
        """Oracle activation fences (scheduled admissions only: setup
        registrations predate every replayed event, so their fence is
        vacuous and deliberately omitted — bit-identity with the
        historical fixed-prefix truth)."""
        return {
            a.sub_id: a.admit for a in self.admissions if a.admit is not None
        }

    @property
    def cancellations(self) -> dict[str, float]:
        """Oracle cancellation fences — the scheduled retire instants."""
        return {
            a.sub_id: a.retire for a in self.admissions if a.retire is not None
        }

    @property
    def outage_fences(self) -> tuple[tuple[str, float, float], ...]:
        """Oracle outage fences on the simulation clock.

        ``(sensor_id, down_from, down_until)`` for every sensor hosted
        on a broker inside an outage domain: its publications inside the
        half-open window ``(down_from, down_until]`` die at the crashed
        host, so the oracle excludes them — the exact analogue of churn
        fences, from the *scheduled* windows, identical per approach.
        """
        if self.faults is None or not self.faults.outages:
            return ()
        return tuple(
            (sensor_id, self.replay_start + start, self.replay_start + end)
            for sensor_id, start, end in self.faults.sensor_down_windows(
                self.deployment
            )
        )

    def truth(
        self,
        collect_participants: bool = True,
        method: str | None = None,
    ) -> dict[str, "SubscriptionTruth"]:
        """Ground truth for every admission, fenced to its lifetime.

        Shared by all approaches of one point: the fences come from the
        *program's scheduled* times, never from any one session's
        observed clock (which differs per approach during registration).
        """
        from ..metrics.oracle import compute_truth  # local: avoid cycle

        return compute_truth(
            [a.subscription for a in self.admissions],
            self.deployment,
            self.events,
            collect_participants=collect_participants,
            method=method,
            churn=self.churn,
            cancellations=self.cancellations or None,
            activations=self.activations or None,
            outages=self.outage_fences or None,
        )


# ---------------------------------------------------------------------------
# execution through the Session facade
# ---------------------------------------------------------------------------
@dataclass
class ProgramExecution:
    """One program driven end to end through a :class:`Session`.

    The three snapshots bracket the historical measurement phases
    (advertisements / settled setup registrations / replay+lifecycle),
    so the runner's traffic attribution is a pure function of them.
    """

    session: "Session"
    after_advertisements: "TrafficSnapshot"
    after_setup: "TrafficSnapshot"
    final: "TrafficSnapshot"
    handles: dict[str, "QueryHandle"]
    admitted: int
    retired: int


def execute_program(
    compiled: CompiledProgram,
    approach: "Approach | str",
    matching: str = "incremental",
    latency: float = 0.05,
    delta_t: float = 5.0,
) -> ProgramExecution:
    """Run one compiled program on one approach, via the Session facade.

    Phases (identical to the historical runner, now facade-shaped):

    1. ``Session.create`` populates the approach's nodes, attaches every
       sensor and floods advertisements to quiescence;
    2. setup admissions register sequentially, settled after each — the
       paper's deterministic registration order;
    3. the replay is ingested, churn transitions and lifecycle edges are
       scheduled (both at agenda priority 1: a reading stamped at the
       exact transition instant is published first, the tie-break the
       oracle fences assume), and the session drains to quiescence.

    Mid-replay admissions and retirements run unsettled (``settle=False``
    — they fire inside the event loop), so their traffic is accounted on
    the shared meter (`teardown_units` splits the unsubscribe channel
    out), not per handle.
    """
    from ..api.session import Session  # local: workload stays api-optional

    session = Session.create(
        approach=approach,
        deployment=compiled.deployment,
        matching=matching,
        latency=latency,
        delta_t=delta_t,
        faults=compiled.faults,
        reliability=compiled.reliability,
        answer_mode=compiled.answer_mode,
        sketch=compiled.sketch,
    )
    after_ads = session.traffic.snapshot()

    handles: dict[str, "QueryHandle"] = {}
    for admission in compiled.setup:
        handles[admission.sub_id] = session.submit(
            admission.subscription,
            at=admission.node_id,
            plan=compiled.plan_for(admission.sub_id),
        )
    after_setup = session.traffic.snapshot()
    if session.now >= compiled.replay_start:
        raise RuntimeError(
            f"setup phase ran past t={compiled.replay_start:g}; "
            "raise the program's replay_start"
        )

    session.ingest_events(compiled.events)
    if compiled.churn is not None:
        session.network.schedule_churn(compiled.churn)
    if compiled.faults is not None and compiled.faults.outages:
        session.network.schedule_outages(
            compiled.faults.outages, offset=compiled.replay_start
        )
    if compiled.reliability is not None:
        # Soft-state refresh rounds across the replay span: a finite
        # timeline (never self-rescheduling), so quiescence survives.
        interval = compiled.reliability.refresh_interval
        rounds = []
        epoch = 1
        while epoch * interval <= compiled.span:
            rounds.append((compiled.replay_start + epoch * interval, epoch))
            epoch += 1
        if rounds:
            session.network.schedule_refresh(rounds)
    if session.network.sketches is not None:
        # Push rounds across the replay span, plus one closing round
        # after it: the final answers postdate every event and every
        # churn transition, so cumulative summaries reflect the full
        # (fenced) stream.
        interval = session.network.sketches.config.push_interval
        sketch_rounds = []
        round_no = 1
        while round_no * interval <= compiled.span:
            sketch_rounds.append(
                (compiled.replay_start + round_no * interval, round_no)
            )
            round_no += 1
        sketch_rounds.append(
            (compiled.replay_start + compiled.span + interval, round_no)
        )
        session.network.schedule_sketch_rounds(sketch_rounds)

    counters = {"admitted": 0, "retired": 0}

    def _admit(admission: Admission) -> None:
        handles[admission.sub_id] = session.submit(
            admission.subscription,
            at=admission.node_id,
            settle=False,
            plan=compiled.plan_for(admission.sub_id),
        )
        counters["admitted"] += 1

    def _retire(admission: Admission) -> None:
        handle = handles.get(admission.sub_id)
        if handle is not None and handle.cancel(settle=False):
            counters["retired"] += 1

    edges: list[tuple[float, int, Admission]] = [
        (a.admit, 0, a) for a in compiled.scheduled
    ]
    edges.extend(
        (a.retire, 1, a) for a in compiled.admissions if a.retire is not None
    )
    edges.sort(key=lambda e: (e[0], e[1], e[2].sub_id))
    session.network.sim.schedule_timeline(
        (
            (time, (lambda a=adm: _admit(a)) if kind == 0 else (lambda a=adm: _retire(a)))
            for time, kind, adm in edges
        ),
        priority=1,
    )

    session.drain()
    return ProgramExecution(
        session=session,
        after_advertisements=after_ads,
        after_setup=after_setup,
        final=session.traffic.snapshot(),
        handles=handles,
        admitted=counters["admitted"],
        retired=counters["retired"],
    )
