"""The four experiment scenarios of Section VI, scale-aware.

Node counts always match the paper; subscription counts and replay
length scale with ``REPRO_SCALE`` (default 0.1) so the full figure
suite runs in minutes on a laptop.  ``scale=1.0`` reproduces the
paper's subscription axis (100..1000).  Shapes — orderings, margins,
crossovers — are stable across scales; EXPERIMENTS.md records the scale
every published number was measured at.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from ..core.filter_split_forward import FSFConfig
from ..network.faults import FaultPlan, LinkFault
from ..network.reliability import ReliabilityConfig
from ..network.topology import (
    Deployment,
    large_network,
    large_sources,
    medium_scale,
    small_scale,
    tiered_small_scale,
)
from ..sketches import SketchConfig
from .program import QueryLifecycleConfig, WorkloadProgram
from .sensorscope import (
    ChurnConfig,
    DynamicReplayConfig,
    Replay,
    ReplayConfig,
    build_dynamic_replay,
    build_replay,
)
from .subscriptions import SubscriptionWorkloadConfig

SCALE_ENV_VAR = "REPRO_SCALE"

SCALE_PRESETS: dict[str, float] = {
    "smoke": 0.05,  # fastest signal: 2-3 points per scenario
    "ci": 0.1,  # the default — full suite in minutes on one core
    "nightly": 0.4,  # the nightly sharded run (REPRO_WORKERS > 1)
    "full": 1.0,  # the paper's 100..1000 subscription axis
}
"""Named workload scales; ``REPRO_SCALE`` and the CLI's ``--scale``
accept either a preset name or a float in (0, 1]."""


def parse_scale(raw: str) -> float:
    """A preset name or float literal → validated scale factor."""
    if raw in SCALE_PRESETS:
        return SCALE_PRESETS[raw]
    scale = float(raw)
    if not 0 < scale <= 1:
        raise ValueError(
            f"scale must be a preset {sorted(SCALE_PRESETS)} or in (0, 1], "
            f"got {raw}"
        )
    return scale


def default_scale() -> float:
    """Workload scale factor, overridable via the environment."""
    raw = os.environ.get(SCALE_ENV_VAR)  # repro-lint: ignore[env-read] -- documented REPRO_SCALE knob, read once at experiment entry
    if raw is None:
        return SCALE_PRESETS["ci"]
    try:
        return parse_scale(raw)
    except ValueError as exc:
        raise ValueError(f"{SCALE_ENV_VAR}: {exc}") from None


@dataclass(frozen=True)
class Scenario:
    """One experiment setting: deployment + workload axes.

    ``dynamic`` switches the scenario to the multi-day drifting replay;
    ``churn`` (requires ``dynamic``) adds the leave/rejoin schedule the
    network layer turns into retraction floods and re-floods;
    ``lifecycle`` adds the Poisson query admit/retire workload on top
    of the measured static prefix; ``faults``/``reliability`` run the
    whole scenario over the seeded unreliable transport with the
    ack/refresh layer optionally enabled.  ``placement`` selects the
    operator-placement mode (``"paper"`` heuristic vs the
    ``repro.placement`` compiler); ``span_groups`` /
    ``group_width_scale`` are the generator knobs that give the
    compiler routing freedom (cross-group queries, skewed
    selectivities); ``fsf_config`` pins the FSF approach configuration
    the scenario is measured with (``None`` = registry default) and
    ``approach_keys`` restricts the measured approaches (``None`` = the
    usual registry set).  All are frozen config dataclasses, so
    scenarios stay hashable and picklable for the sharded runner's
    memo keys.
    """

    key: str
    title: str
    deployment_factory: Callable[[int], Deployment]
    paper_subscription_counts: tuple[int, ...]
    attrs_min: int = 5
    attrs_max: int = 5
    include_centralized: bool = False
    replay: ReplayConfig = field(default_factory=ReplayConfig)
    dynamic: DynamicReplayConfig | None = None
    churn: ChurnConfig | None = None
    lifecycle: QueryLifecycleConfig | None = None
    faults: FaultPlan | None = None
    reliability: ReliabilityConfig | None = None
    delta_t: float = 5.0
    seed: int = 0
    placement: str = "paper"
    span_groups: int = 1
    group_width_scale: tuple[float, ...] = ()
    fsf_config: FSFConfig | None = None
    approach_keys: tuple[str, ...] | None = None
    answer_mode: str = "exact"
    sketch: SketchConfig | None = None

    def deployment(self) -> Deployment:
        return self.deployment_factory(self.seed)

    def make_replay(self, deployment: Deployment) -> Replay:
        """The scenario's measurement campaign (static or dynamic)."""
        if self.dynamic is not None:
            return build_dynamic_replay(deployment, self.dynamic, self.churn)
        return build_replay(deployment, self.replay)

    def subscription_counts(self, scale: float | None = None) -> list[int]:
        """The measurement axis, scaled (at least 2 points, >= 5 subs)."""
        s = default_scale() if scale is None else scale
        counts = sorted({max(5, round(c * s)) for c in self.paper_subscription_counts})
        return counts

    def workload_config(self, n: int) -> SubscriptionWorkloadConfig:
        return SubscriptionWorkloadConfig(
            n_subscriptions=n,
            attrs_min=self.attrs_min,
            attrs_max=self.attrs_max,
            delta_t=self.delta_t,
            seed=self.seed + 17,
            span_groups=self.span_groups,
            group_width_scale=self.group_width_scale,
        )

    def program(self, max_subscriptions: int) -> WorkloadProgram:
        """The scenario as a :class:`WorkloadProgram` whose generated
        pool covers a static prefix of ``max_subscriptions`` — the
        runner measures prefixes of it via ``with_prefix``."""
        return WorkloadProgram(
            subscriptions=self.workload_config(max_subscriptions),
            replay=self.replay,
            dynamic=self.dynamic,
            churn=self.churn,
            lifecycle=self.lifecycle,
            faults=self.faults,
            reliability=self.reliability,
            placement=self.placement,
            answer_mode=self.answer_mode,
            sketch=self.sketch,
        )

    def with_seed(self, seed: int) -> "Scenario":
        return replace(self, seed=seed)


_PAPER_AXIS_1000 = tuple(range(100, 1001, 100))
_PAPER_AXIS_900 = tuple(range(100, 901, 100))


SMALL = Scenario(
    key="small",
    title="Small scale (60 nodes, 50 sensors, 10 groups)",
    deployment_factory=small_scale,
    paper_subscription_counts=_PAPER_AXIS_1000,
    attrs_min=3,
    attrs_max=5,
)

MEDIUM = Scenario(
    key="medium",
    title="Medium scale (100 nodes, 50 sensors, 10 groups)",
    deployment_factory=medium_scale,
    paper_subscription_counts=_PAPER_AXIS_900,
    include_centralized=True,
)

LARGE_NETWORK = Scenario(
    key="large_network",
    title="Large scale #1 - network (200 nodes, 50 sensors, 10 groups)",
    deployment_factory=large_network,
    paper_subscription_counts=_PAPER_AXIS_900,
)

LARGE_SOURCES = Scenario(
    key="large_sources",
    title="Large scale #2 - sources (200 nodes, 100 sensors, 20 groups)",
    deployment_factory=large_sources,
    paper_subscription_counts=_PAPER_AXIS_900,
)

CHURN = Scenario(
    key="churn",
    title="Churn & burst (60 nodes, 2 drifting days, 25% of sensors cycling)",
    deployment_factory=small_scale,
    paper_subscription_counts=(100, 300, 500),
    attrs_min=3,
    attrs_max=5,
    dynamic=DynamicReplayConfig(days=2, rounds_per_day=18, day_seconds=240.0),
    churn=ChurnConfig(cycle_fraction=0.25),
)
"""The dynamic-workload family: the small-scale deployment under a
two-day drifting, Pareto-bursty replay where a quarter of the sensors
leaves and rejoins mid-campaign — the first scenario to exercise the
advertisement retraction/re-flood path and the churn-aware oracle."""

ADMIT_RETIRE = Scenario(
    key="admit_retire",
    title="Admit/retire (60 nodes, Poisson query lifecycle over a "
    "2-day replay, all five approaches)",
    deployment_factory=small_scale,
    paper_subscription_counts=(200,),
    attrs_min=3,
    attrs_max=5,
    include_centralized=True,
    dynamic=DynamicReplayConfig(days=2, rounds_per_day=18, day_seconds=240.0),
    lifecycle=QueryLifecycleConfig(admit_rate=0.05, hold=120.0),
)
"""The query-assignment family: a standing subscription prefix plus a
Poisson stream of admissions, each retired after an exponential hold —
the first scenario where the cancellation machinery (reverse-path
removal, ``UnsubscribeMessage`` teardown traffic, per-lifetime oracle
fences) is visible at figure scale.  Figures 15-16 sweep the admit
rate over this scenario."""

FAULTS = Scenario(
    key="faults",
    title="Unreliable transport (60 nodes, 10% link loss, ack/retransmit "
    "+ soft-state refresh, all five approaches)",
    deployment_factory=small_scale,
    paper_subscription_counts=(100,),
    attrs_min=3,
    attrs_max=5,
    include_centralized=True,
    faults=FaultPlan(default=LinkFault(drop=0.1), seed=97),
    reliability=ReliabilityConfig(),
)
"""The robustness family: the small-scale deployment where every
directed link drops 10% of transmissions.  The reliability layer acks
and retransmits control traffic and refreshes soft state periodically;
event traffic rides the lossy links unprotected, so recall measures
what the loss actually costs each approach.  Figures 17-18 sweep the
loss rate (reliability on/off) over this scenario."""

PLACEMENT = Scenario(
    key="placement",
    title="Placement (60 tiered nodes, cross-group queries, "
    "alternating wide/narrow groups, compiled vs paper placement)",
    deployment_factory=tiered_small_scale,
    paper_subscription_counts=(100, 300),
    attrs_min=3,
    attrs_max=5,
    span_groups=2,
    group_width_scale=(4.0, 0.02),
    fsf_config=FSFConfig(exact_filtering=True),
    approach_keys=("fsf", "operator_placement", "naive"),
)
"""The heterogeneous-architecture family: the small-scale deployment
with tiered node specs (motes at the edge, base-station group heads, a
cloud node at the backbone centre) and a skewed cross-group workload —
every query correlates two neighbouring groups, one with very wide
filters (a partial-match flood) and one with very narrow ones.  The
paper heuristic splits operators at the natural divergence node and
drowns in the wide group's partials; the cost-model compiler delays the
split toward the wide group's head, gating the flood at the edge.
Figures 19-20 measure both placements on this scenario.  FSF runs with
exact filtering so both lanes hold recall at 100% and the traffic axis
is the only thing that moves."""

SKETCHES = Scenario(
    key="sketches",
    title="Sketches (60 nodes, single-slot range queries over a long "
    "replay, exact frontier vs the approximate answer lane)",
    deployment_factory=small_scale,
    paper_subscription_counts=(100, 300),
    attrs_min=1,
    attrs_max=1,
    include_centralized=True,
    replay=ReplayConfig(rounds=96),
)
"""The accuracy-vs-traffic family: the small-scale deployment under a
single-attribute workload, so every query is a single-slot range filter
— exactly the sketch-eligible class — over a 96-round replay (the
regime where a bounded-size digest beats shipping every reading).  The
five exact approaches form the traffic frontier; figure 21's
approximate lanes re-run the same scenario with
``answer_mode="approximate"`` at several q-digest resolutions
(``sketches_variant``), trading bounded rank error for push-round
traffic strictly below that frontier.  Figure 22 reports the accuracy
side of the same trade."""

ALL_SCENARIOS: dict[str, Scenario] = {
    s.key: s
    for s in (
        SMALL,
        MEDIUM,
        LARGE_NETWORK,
        LARGE_SOURCES,
        CHURN,
        ADMIT_RETIRE,
        FAULTS,
        PLACEMENT,
        SKETCHES,
    )
}
