"""Event replay: turning synthetic streams into timestamped publications.

Sensors publish in rounds (one reading per sensor per round) with a
per-sensor, per-round jitter smaller than the temporal correlation
distance — readings of one round correlate, consecutive rounds do not
bleed into each other, mirroring the fixed sampling intervals of the
SensorScope stations.

Two replay families live here:

* the **static** replay (:class:`ReplayConfig` / :func:`build_replay`)
  — one smooth day at a fixed round period, the seed workload every
  figure of the paper runs on;
* the **dynamic** replay (:class:`DynamicReplayConfig` /
  :func:`build_dynamic_replay`) — multiple compressed days with
  per-day value drift, diurnal rate modulation and Pareto-bursty round
  pacing, plus an optional **churn schedule**
  (:class:`ChurnConfig` / :class:`ChurnSchedule`): a subset of sensors
  leaves and rejoins at scheduled times, publishing nothing while away.
  The network layer turns those transitions into advertisement
  retraction floods and re-floods; the oracle fences departed sensors'
  history at each departure.

Everything is seeded through :func:`repro.seeding.derive_seed`, so both
families are bit-identical across processes and ``PYTHONHASHSEED``
values — the sharded experiment runner depends on it.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from ..model.events import SimpleEvent
from ..network.topology import Deployment
from ..seeding import derive_seed
from .streams import (
    bursty_round_times,
    station_offset,
    synthesize_stream,
    synthesize_stream_at,
)


@dataclass(frozen=True, slots=True)
class ReplayConfig:
    """Shape of the replayed measurement campaign."""

    rounds: int = 24
    round_period: float = 10.0
    jitter: float = 2.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if not 0 <= self.jitter < self.round_period / 2:
            raise ValueError("jitter must be in [0, round_period/2)")


@dataclass
class Replay:
    """A fully materialised replay: events plus per-sensor statistics."""

    events: list[SimpleEvent]
    medians: dict[str, float]
    spreads: dict[str, float]
    config: ReplayConfig

    @property
    def n_events(self) -> int:
        return len(self.events)

    @property
    def sensor_ids(self) -> list[str]:
        """Sensors that actually contributed events, sorted.

        Under churn this can be a strict subset of the deployment's
        sensors (a sensor that departs early and never rejoins may
        publish nothing at all).
        """
        return sorted({e.sensor_id for e in self.events})

    def events_of_sensor(self, sensor_id: str) -> list[SimpleEvent]:
        """Events of ``sensor_id``, in replay order.

        Returns an empty list for a sensor absent from the replay —
        churn makes absence a normal outcome, not an error, so callers
        never have to special-case departed sensors.
        """
        return [e for e in self.events if e.sensor_id == sensor_id]

    def shifted(self, offset: float) -> list[SimpleEvent]:
        """The same events with timestamps moved by ``offset``.

        The experiment runner shifts every replay by the *fixed*
        ``repro.experiments.runner.REPLAY_START`` — deliberately not by
        the instant the subscription phase finished, which differs per
        approach: a fixed virtual start time keeps the replayed
        timestamps (and therefore the oracle's ground truth) identical
        for every approach, as the paper's protocol requires.
        """
        return [
            SimpleEvent(
                e.sensor_id,
                e.attribute,
                e.location,
                e.value,
                e.timestamp + offset,
                e.seq,
            )
            for e in self.events
        ]


def build_replay(deployment: Deployment, config: ReplayConfig | None = None) -> Replay:
    """Synthesise the measurement campaign for a deployment.

    Deterministic in ``(deployment.seed, config.seed)`` — across
    *processes* too: per-sensor streams are keyed via
    :func:`repro.seeding.derive_seed`, never builtin ``hash`` (which
    varies with ``PYTHONHASHSEED`` and would make sharded workers
    synthesize different events than the parent computed ground truth
    for).  Every sensor contributes exactly ``config.rounds`` readings.
    The returned medians feed the subscription generator ("ranges ...
    centered around the median values in the corresponding stream").
    """
    cfg = config or ReplayConfig()
    events: list[SimpleEvent] = []
    medians: dict[str, float] = {}
    spreads: dict[str, float] = {}
    for placement in deployment.sensors:
        rng = np.random.default_rng(
            derive_seed(deployment.seed, cfg.seed, placement.sensor_id)
        )
        offset = station_offset(placement.attribute, placement.group, rng)
        values = synthesize_stream(
            placement.attribute, cfg.rounds, cfg.round_period, rng, offset
        )
        medians[placement.sensor_id] = float(np.median(values))
        # Robust spread estimate (half the central 68% range); the
        # subscription generator expresses filter widths in these units
        # so selectivity is comparable across attributes.
        lo, hi = np.percentile(values, [16.0, 84.0])
        spreads[placement.sensor_id] = max(float(hi - lo) / 2.0, 1e-6)
        jitters = rng.uniform(-cfg.jitter, cfg.jitter, size=cfg.rounds)
        for r in range(cfg.rounds):
            timestamp = (r + 1) * cfg.round_period + float(jitters[r])
            events.append(
                SimpleEvent(
                    placement.sensor_id,
                    placement.attribute.name,
                    placement.location,
                    float(values[r]),
                    timestamp,
                    seq=r,
                )
            )
    events.sort(key=lambda e: (e.timestamp, e.sensor_id))
    return Replay(events, medians, spreads, cfg)


# ---------------------------------------------------------------------------
# dynamic replay: multi-day drift, bursty pacing, sensor churn
# ---------------------------------------------------------------------------
_INF = float("inf")


@dataclass(frozen=True, slots=True)
class DynamicReplayConfig:
    """Shape of a multi-day drifting, bursty measurement campaign.

    ``day_seconds`` compresses a simulated day into affordable virtual
    time; the diurnal structure (value sinusoid and rate modulation)
    runs on this period.  ``drift_per_day`` shifts every stream's mean
    by that many noise-sigmas per day, so day two genuinely differs
    from day one.  Round pacing is shared by all sensors (readings of
    one round still correlate within the jitter), but gaps between
    rounds are diurnally modulated and Pareto-bursty — see
    :func:`repro.workload.streams.bursty_round_times`.
    """

    days: int = 2
    rounds_per_day: int = 24
    day_seconds: float = 240.0
    drift_per_day: float = 1.5
    rate_amplitude: float = 0.5
    burst_shape: float = 2.5
    jitter: float = 2.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("days must be positive")
        if self.rounds_per_day <= 0:
            raise ValueError("rounds_per_day must be positive")
        if self.day_seconds <= 0:
            raise ValueError("day_seconds must be positive")
        if not 0 <= self.rate_amplitude < 1:
            raise ValueError("rate_amplitude must be in [0, 1)")
        if self.burst_shape <= 1:
            raise ValueError("burst_shape must exceed 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    @property
    def rounds(self) -> int:
        return self.days * self.rounds_per_day

    @property
    def base_gap(self) -> float:
        return self.day_seconds / self.rounds_per_day


@dataclass(frozen=True, slots=True)
class ChurnConfig:
    """Which fraction of the deployment cycles, and how.

    Off-durations and margins are expressed as fractions of the replay
    span so one configuration scales with any campaign length.  The
    start margin keeps every sensor present while subscriptions
    register (the runner injects them before the replay); the end
    margin guarantees rejoined sensors publish again, so the
    advertisement re-flood path is always followed by live traffic.
    """

    cycle_fraction: float = 0.25
    cycles: int = 1
    min_off_fraction: float = 0.10
    max_off_fraction: float = 0.20
    start_margin: float = 0.15
    end_margin: float = 0.15
    seed: int = 11

    def __post_init__(self) -> None:
        if not 0 <= self.cycle_fraction <= 1:
            raise ValueError("cycle_fraction must be in [0, 1]")
        if self.cycles < 1:
            raise ValueError("cycles must be >= 1")
        if not 0 < self.min_off_fraction <= self.max_off_fraction:
            raise ValueError("need 0 < min_off_fraction <= max_off_fraction")
        if not 0 <= self.start_margin < 1 or not 0 <= self.end_margin < 1:
            raise ValueError("margins must be in [0, 1)")
        if self.start_margin + self.end_margin >= 0.9:
            raise ValueError("margins leave no room for churn")


@dataclass(frozen=True)
class ChurnSchedule:
    """Per-sensor alive intervals; sensors not listed are always alive.

    ``intervals[sensor_id]`` is a sorted tuple of half-open alive
    intervals ``[start, end)``; the first starts at ``-inf`` (every
    sensor is present when the network is set up) and the last ends at
    ``+inf`` when the sensor's final rejoin sticks.  A sensor publishes
    only while alive, and a **departure** (a finite interval end) fences
    the sensor's history: events from before the departure cannot take
    part in matches triggered at or after it.
    """

    intervals: Mapping[str, tuple[tuple[float, float], ...]]

    @property
    def cycling_sensors(self) -> list[str]:
        return sorted(self.intervals)

    def __bool__(self) -> bool:
        return bool(self.intervals)

    def alive_at(self, sensor_id: str, t: float) -> bool:
        spans = self.intervals.get(sensor_id)
        if spans is None:
            return True
        return self.interval_index(sensor_id, t) is not None

    def interval_index(self, sensor_id: str, t: float) -> int | None:
        """Index of the alive interval containing ``t`` (None if away)."""
        spans = self.intervals.get(sensor_id)
        if spans is None:
            return 0
        i = bisect.bisect_right([s[0] for s in spans], t) - 1
        if i >= 0 and spans[i][0] <= t < spans[i][1]:
            return i
        return None

    def same_interval(self, sensor_id: str, t_a: float, t_b: float) -> bool:
        """Whether ``t_a`` and ``t_b`` fall in one alive interval —
        the oracle's churn rule: an event may participate in a match
        only when its sensor stayed alive through the trigger time."""
        a = self.interval_index(sensor_id, t_a)
        return a is not None and a == self.interval_index(sensor_id, t_b)

    def transitions(self) -> list[tuple[float, str, str]]:
        """Every finite lifecycle edge as ``(time, sensor_id, kind)``,
        time-ordered; ``kind`` is ``"leave"`` or ``"join"``."""
        out: list[tuple[float, str, str]] = []
        for sensor_id, spans in self.intervals.items():
            for start, end in spans:
                if not math.isinf(start):
                    out.append((start, sensor_id, "join"))
                if not math.isinf(end):
                    out.append((end, sensor_id, "leave"))
        out.sort()
        return out

    def departures(self) -> list[tuple[float, str]]:
        """Finite interval ends, time-ordered — the oracle's fence list."""
        return [
            (t, sensor_id)
            for t, sensor_id, kind in self.transitions()
            if kind == "leave"
        ]

    def shifted(self, offset: float) -> "ChurnSchedule":
        """The same schedule moved by ``offset`` (infinite bounds stay)."""

        def move(x: float) -> float:
            return x if math.isinf(x) else x + offset

        return ChurnSchedule(
            {
                sensor_id: tuple((move(s), move(e)) for s, e in spans)
                for sensor_id, spans in self.intervals.items()
            }
        )


def build_churn_schedule(
    deployment: Deployment, span: float, config: ChurnConfig | None = None
) -> ChurnSchedule:
    """Deterministic leave/rejoin schedule over a replay of ``span``.

    Seeded per sensor via :func:`repro.seeding.derive_seed`, so the
    schedule of one sensor never depends on how many others cycle (and
    never on ``PYTHONHASHSEED``).  Each cycling sensor gets
    ``config.cycles`` leave/rejoin pairs inside the margin-trimmed
    window, each cycle confined to its own equal slice of the window so
    cycles never overlap.
    """
    cfg = config or ChurnConfig()
    if span <= 0:
        raise ValueError("span must be positive")
    sensor_ids = sorted(s.sensor_id for s in deployment.sensors)
    k = round(cfg.cycle_fraction * len(sensor_ids))
    if k == 0:
        return ChurnSchedule({})
    picker = np.random.default_rng(
        derive_seed(deployment.seed, cfg.seed, "churn-members")
    )
    chosen = sorted(
        sensor_ids[i]
        for i in picker.choice(len(sensor_ids), size=k, replace=False)
    )
    window_lo = cfg.start_margin * span
    window_hi = (1.0 - cfg.end_margin) * span
    slice_len = (window_hi - window_lo) / cfg.cycles
    intervals: dict[str, tuple[tuple[float, float], ...]] = {}
    for sensor_id in chosen:
        rng = np.random.default_rng(
            derive_seed(deployment.seed, cfg.seed, "churn", sensor_id)
        )
        spans: list[tuple[float, float]] = []
        previous_start = -_INF
        for c in range(cfg.cycles):
            lo = window_lo + c * slice_len
            off = span * float(
                rng.uniform(cfg.min_off_fraction, cfg.max_off_fraction)
            )
            off = min(off, 0.8 * slice_len)  # the cycle must fit its slice
            leave = lo + float(rng.uniform(0.0, slice_len - off))
            spans.append((previous_start, leave))
            previous_start = leave + off
        spans.append((previous_start, _INF))
        intervals[sensor_id] = tuple(spans)
    return ChurnSchedule(intervals)


@dataclass
class DynamicReplay(Replay):
    """A dynamic campaign: events + the churn schedule that shaped them."""

    round_times: tuple[float, ...] = ()
    churn: ChurnSchedule = field(default_factory=lambda: ChurnSchedule({}))

    @property
    def span(self) -> float:
        """Length of the campaign (last round time + jitter headroom)."""
        cfg = self.config
        jitter = cfg.jitter if isinstance(cfg, DynamicReplayConfig) else 0.0
        return (self.round_times[-1] + jitter) if self.round_times else 0.0


def build_dynamic_replay(
    deployment: Deployment,
    config: DynamicReplayConfig | None = None,
    churn: ChurnConfig | None = None,
) -> DynamicReplay:
    """Synthesise a multi-day drifting campaign with optional churn.

    Deterministic in ``(deployment.seed, config.seed, churn.seed)``
    across processes (all randomness routes through
    :func:`repro.seeding.derive_seed`).  Medians and spreads are
    computed over each sensor's *full* synthesized series — churn
    removes publications, not statistics — so subscription generation
    is identical with and without a churn schedule, and a sensor that
    departs early still has a well-defined median for subscriptions to
    centre on.
    """
    cfg = config or DynamicReplayConfig()
    clock_rng = np.random.default_rng(
        derive_seed(deployment.seed, cfg.seed, "round-clock")
    )
    round_times = bursty_round_times(
        cfg.rounds,
        cfg.base_gap,
        clock_rng,
        day_seconds=cfg.day_seconds,
        rate_amplitude=cfg.rate_amplitude,
        burst_shape=cfg.burst_shape,
    )
    span = float(round_times[-1]) + cfg.jitter
    schedule = (
        build_churn_schedule(deployment, span, churn)
        if churn is not None
        else ChurnSchedule({})
    )
    events: list[SimpleEvent] = []
    medians: dict[str, float] = {}
    spreads: dict[str, float] = {}
    for placement in deployment.sensors:
        rng = np.random.default_rng(
            derive_seed(deployment.seed, cfg.seed, placement.sensor_id)
        )
        offset = station_offset(placement.attribute, placement.group, rng)
        values = synthesize_stream_at(
            placement.attribute,
            round_times,
            rng,
            offset,
            day_seconds=cfg.day_seconds,
            drift_per_day=cfg.drift_per_day,
        )
        medians[placement.sensor_id] = float(np.median(values))
        lo, hi = np.percentile(values, [16.0, 84.0])
        spreads[placement.sensor_id] = max(float(hi - lo) / 2.0, 1e-6)
        jitters = rng.uniform(-cfg.jitter, cfg.jitter, size=cfg.rounds)
        for r in range(cfg.rounds):
            timestamp = max(float(round_times[r]) + float(jitters[r]), 1e-9)
            if not schedule.alive_at(placement.sensor_id, timestamp):
                continue  # away sensors publish nothing
            events.append(
                SimpleEvent(
                    placement.sensor_id,
                    placement.attribute.name,
                    placement.location,
                    float(values[r]),
                    timestamp,
                    seq=r,
                )
            )
    events.sort(key=lambda e: (e.timestamp, e.sensor_id))
    return DynamicReplay(
        events,
        medians,
        spreads,
        cfg,
        round_times=tuple(float(t) for t in round_times),
        churn=schedule,
    )
