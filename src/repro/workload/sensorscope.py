"""Event replay: turning synthetic streams into timestamped publications.

Sensors publish in rounds (one reading per sensor per round) with a
per-sensor, per-round jitter smaller than the temporal correlation
distance — readings of one round correlate, consecutive rounds do not
bleed into each other, mirroring the fixed sampling intervals of the
SensorScope stations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..model.events import SimpleEvent
from ..network.topology import Deployment
from ..seeding import derive_seed
from .streams import station_offset, synthesize_stream


@dataclass(frozen=True, slots=True)
class ReplayConfig:
    """Shape of the replayed measurement campaign."""

    rounds: int = 24
    round_period: float = 10.0
    jitter: float = 2.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if not 0 <= self.jitter < self.round_period / 2:
            raise ValueError("jitter must be in [0, round_period/2)")


@dataclass
class Replay:
    """A fully materialised replay: events plus per-sensor statistics."""

    events: list[SimpleEvent]
    medians: dict[str, float]
    spreads: dict[str, float]
    config: ReplayConfig

    @property
    def n_events(self) -> int:
        return len(self.events)

    def events_of_sensor(self, sensor_id: str) -> list[SimpleEvent]:
        return [e for e in self.events if e.sensor_id == sensor_id]

    def shifted(self, offset: float) -> list[SimpleEvent]:
        """The same events with timestamps moved by ``offset``.

        The experiment runner shifts every replay by the *fixed*
        ``repro.experiments.runner.REPLAY_START`` — deliberately not by
        the instant the subscription phase finished, which differs per
        approach: a fixed virtual start time keeps the replayed
        timestamps (and therefore the oracle's ground truth) identical
        for every approach, as the paper's protocol requires.
        """
        return [
            SimpleEvent(
                e.sensor_id,
                e.attribute,
                e.location,
                e.value,
                e.timestamp + offset,
                e.seq,
            )
            for e in self.events
        ]


def build_replay(deployment: Deployment, config: ReplayConfig | None = None) -> Replay:
    """Synthesise the measurement campaign for a deployment.

    Deterministic in ``(deployment.seed, config.seed)`` — across
    *processes* too: per-sensor streams are keyed via
    :func:`repro.seeding.derive_seed`, never builtin ``hash`` (which
    varies with ``PYTHONHASHSEED`` and would make sharded workers
    synthesize different events than the parent computed ground truth
    for).  Every sensor contributes exactly ``config.rounds`` readings.
    The returned medians feed the subscription generator ("ranges ...
    centered around the median values in the corresponding stream").
    """
    cfg = config or ReplayConfig()
    events: list[SimpleEvent] = []
    medians: dict[str, float] = {}
    spreads: dict[str, float] = {}
    for placement in deployment.sensors:
        rng = np.random.default_rng(
            derive_seed(deployment.seed, cfg.seed, placement.sensor_id)
        )
        offset = station_offset(placement.attribute, placement.group, rng)
        values = synthesize_stream(
            placement.attribute, cfg.rounds, cfg.round_period, rng, offset
        )
        medians[placement.sensor_id] = float(np.median(values))
        # Robust spread estimate (half the central 68% range); the
        # subscription generator expresses filter widths in these units
        # so selectivity is comparable across attributes.
        lo, hi = np.percentile(values, [16.0, 84.0])
        spreads[placement.sensor_id] = max(float(hi - lo) / 2.0, 1e-6)
        jitters = rng.uniform(-cfg.jitter, cfg.jitter, size=cfg.rounds)
        for r in range(cfg.rounds):
            timestamp = (r + 1) * cfg.round_period + float(jitters[r])
            events.append(
                SimpleEvent(
                    placement.sensor_id,
                    placement.attribute.name,
                    placement.location,
                    float(values[r]),
                    timestamp,
                    seq=r,
                )
            )
    events.sort(key=lambda e: (e.timestamp, e.sensor_id))
    return Replay(events, medians, spreads, cfg)
