"""Synthetic sensor streams standing in for the SensorScope dataset.

The paper replays measurements collected on the Grand St. Bernard pass
(September-October 2007) [6]: ambient temperature, surface temperature,
relative humidity, wind speed and wind direction.  The dataset itself is
not redistributable, so we synthesise per-sensor series with the three
properties the evaluation actually depends on (see DESIGN.md):

* plausible per-attribute value distributions with a well-defined
  median for subscriptions to centre on;
* diurnal structure plus autocorrelated noise, so values drift through
  subscription ranges and matches cluster in time (as real weather
  does) instead of being i.i.d.;
* per-station offsets, so sensors of the same attribute at different
  stations have different medians (subscriptions targeting different
  groups differ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..model.attributes import AttributeType


@dataclass(frozen=True, slots=True)
class StreamProfile:
    """Shape parameters of one attribute's synthetic signal."""

    mean: float
    diurnal_amplitude: float
    noise_sigma: float
    station_sigma: float
    ar_coefficient: float = 0.8


# High-alpine autumn profiles for the five SensorScope attributes.
STREAM_PROFILES: Mapping[str, StreamProfile] = {
    "ambient_temperature": StreamProfile(1.5, 5.0, 1.2, 2.0),
    "surface_temperature": StreamProfile(3.0, 8.0, 1.8, 2.5),
    "relative_humidity": StreamProfile(72.0, 14.0, 5.0, 6.0),
    "wind_speed": StreamProfile(5.5, 2.5, 1.8, 1.5),
    "wind_direction": StreamProfile(225.0, 40.0, 20.0, 30.0),
}

DEFAULT_PROFILE = StreamProfile(50.0, 10.0, 4.0, 5.0)

SECONDS_PER_DAY = 86_400.0


def profile_for(attribute: AttributeType) -> StreamProfile:
    return STREAM_PROFILES.get(attribute.name, DEFAULT_PROFILE)


def synthesize_stream(
    attribute: AttributeType,
    rounds: int,
    round_period: float,
    rng: np.random.Generator,
    station_offset: float = 0.0,
) -> np.ndarray:
    """One sensor's value series over ``rounds`` sampling rounds.

    Diurnal sinusoid + AR(1) noise around a station-shifted mean,
    clipped to the attribute's physical domain.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    profile = profile_for(attribute)
    t = np.arange(rounds) * round_period
    diurnal = profile.diurnal_amplitude * np.sin(2 * np.pi * t / SECONDS_PER_DAY)
    noise = np.empty(rounds)
    noise[0] = rng.normal(0.0, profile.noise_sigma)
    innovations = rng.normal(
        0.0,
        profile.noise_sigma * np.sqrt(1 - profile.ar_coefficient**2),
        size=rounds,
    )
    for i in range(1, rounds):
        noise[i] = profile.ar_coefficient * noise[i - 1] + innovations[i]
    values = profile.mean + station_offset + diurnal + noise
    return np.clip(values, attribute.domain.lo, attribute.domain.hi)


def station_offset(
    attribute: AttributeType, group: int, rng: np.random.Generator
) -> float:
    """Per-station shift of the attribute's mean (deterministic per rng)."""
    return float(rng.normal(0.0, profile_for(attribute).station_sigma))


def synthesize_stream_at(
    attribute: AttributeType,
    times: np.ndarray,
    rng: np.random.Generator,
    station_offset: float = 0.0,
    day_seconds: float = SECONDS_PER_DAY,
    drift_per_day: float = 0.0,
) -> np.ndarray:
    """One sensor's values at arbitrary (sorted) ``times``.

    The multi-day variant of :func:`synthesize_stream`, used by the
    dynamic replay: the diurnal sinusoid runs on a configurable
    ``day_seconds`` period (virtual days are compressed so multi-day
    campaigns stay affordable), and a linear per-day drift of
    ``drift_per_day`` noise-sigmas shifts the mean — over several days
    values wander through subscription ranges the way a weather front
    moves a whole station, which is what makes long replays more than a
    repeated day one.  AR(1) noise is stepped once per sample regardless
    of the (bursty, uneven) spacing — a deliberate simplification: the
    matcher only cares that consecutive readings correlate, not about
    the exact decorrelation time.
    """
    times = np.asarray(times, dtype=float)
    if times.size == 0:
        return times.copy()
    if day_seconds <= 0:
        raise ValueError("day_seconds must be positive")
    profile = profile_for(attribute)
    diurnal = profile.diurnal_amplitude * np.sin(2 * np.pi * times / day_seconds)
    drift = drift_per_day * profile.noise_sigma * (times / day_seconds)
    n = times.size
    noise = np.empty(n)
    noise[0] = rng.normal(0.0, profile.noise_sigma)
    innovations = rng.normal(
        0.0,
        profile.noise_sigma * np.sqrt(1 - profile.ar_coefficient**2),
        size=n,
    )
    for i in range(1, n):
        noise[i] = profile.ar_coefficient * noise[i - 1] + innovations[i]
    values = profile.mean + station_offset + diurnal + drift + noise
    return np.clip(values, attribute.domain.lo, attribute.domain.hi)


def bursty_round_times(
    rounds: int,
    base_gap: float,
    rng: np.random.Generator,
    day_seconds: float = SECONDS_PER_DAY,
    rate_amplitude: float = 0.0,
    burst_shape: float = 2.5,
) -> np.ndarray:
    """Timestamps of ``rounds`` sampling rounds with realistic pacing.

    Two departures from the fixed round period of the static replay:

    * **diurnal rate modulation** — the instantaneous publication rate is
      ``1 + rate_amplitude * sin(2*pi*t/day)``, so rounds bunch up during
      the "active" half of each day and thin out at night;
    * **Pareto burstiness** — each gap is multiplied by a unit-mean
      heavy-tailed factor ``(1 + Pareto(shape)) * (shape-1)/shape``:
      most gaps shrink slightly, a heavy tail of long lulls separates
      bursts (the classic shape of real sensor uplinks).

    Gaps are never allowed below 5% of ``base_gap``, so successive
    rounds stay distinguishable and per-round jitter cannot reorder
    them into a different round.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    if not 0 <= rate_amplitude < 1:
        raise ValueError("rate_amplitude must be in [0, 1)")
    if burst_shape <= 1:
        raise ValueError("burst_shape must exceed 1 (finite mean)")
    times = np.empty(rounds)
    t = 0.0
    norm = (burst_shape - 1.0) / burst_shape  # unit-mean burst factor
    floor = 0.05 * base_gap
    for r in range(rounds):
        rate = 1.0 + rate_amplitude * np.sin(2 * np.pi * t / day_seconds)
        burst = (1.0 + float(rng.pareto(burst_shape))) * norm
        t += max(base_gap * burst / rate, floor)
        times[r] = t
    return times
