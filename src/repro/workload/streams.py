"""Synthetic sensor streams standing in for the SensorScope dataset.

The paper replays measurements collected on the Grand St. Bernard pass
(September-October 2007) [6]: ambient temperature, surface temperature,
relative humidity, wind speed and wind direction.  The dataset itself is
not redistributable, so we synthesise per-sensor series with the three
properties the evaluation actually depends on (see DESIGN.md):

* plausible per-attribute value distributions with a well-defined
  median for subscriptions to centre on;
* diurnal structure plus autocorrelated noise, so values drift through
  subscription ranges and matches cluster in time (as real weather
  does) instead of being i.i.d.;
* per-station offsets, so sensors of the same attribute at different
  stations have different medians (subscriptions targeting different
  groups differ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..model.attributes import AttributeType


@dataclass(frozen=True, slots=True)
class StreamProfile:
    """Shape parameters of one attribute's synthetic signal."""

    mean: float
    diurnal_amplitude: float
    noise_sigma: float
    station_sigma: float
    ar_coefficient: float = 0.8


# High-alpine autumn profiles for the five SensorScope attributes.
STREAM_PROFILES: Mapping[str, StreamProfile] = {
    "ambient_temperature": StreamProfile(1.5, 5.0, 1.2, 2.0),
    "surface_temperature": StreamProfile(3.0, 8.0, 1.8, 2.5),
    "relative_humidity": StreamProfile(72.0, 14.0, 5.0, 6.0),
    "wind_speed": StreamProfile(5.5, 2.5, 1.8, 1.5),
    "wind_direction": StreamProfile(225.0, 40.0, 20.0, 30.0),
}

DEFAULT_PROFILE = StreamProfile(50.0, 10.0, 4.0, 5.0)

SECONDS_PER_DAY = 86_400.0


def profile_for(attribute: AttributeType) -> StreamProfile:
    return STREAM_PROFILES.get(attribute.name, DEFAULT_PROFILE)


def synthesize_stream(
    attribute: AttributeType,
    rounds: int,
    round_period: float,
    rng: np.random.Generator,
    station_offset: float = 0.0,
) -> np.ndarray:
    """One sensor's value series over ``rounds`` sampling rounds.

    Diurnal sinusoid + AR(1) noise around a station-shifted mean,
    clipped to the attribute's physical domain.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    profile = profile_for(attribute)
    t = np.arange(rounds) * round_period
    diurnal = profile.diurnal_amplitude * np.sin(2 * np.pi * t / SECONDS_PER_DAY)
    noise = np.empty(rounds)
    noise[0] = rng.normal(0.0, profile.noise_sigma)
    innovations = rng.normal(
        0.0,
        profile.noise_sigma * np.sqrt(1 - profile.ar_coefficient**2),
        size=rounds,
    )
    for i in range(1, rounds):
        noise[i] = profile.ar_coefficient * noise[i - 1] + innovations[i]
    values = profile.mean + station_offset + diurnal + noise
    return np.clip(values, attribute.domain.lo, attribute.domain.hi)


def station_offset(
    attribute: AttributeType, group: int, rng: np.random.Generator
) -> float:
    """Per-station shift of the attribute's mean (deterministic per rng)."""
    return float(rng.normal(0.0, profile_for(attribute).station_sigma))
