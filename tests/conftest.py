"""Fixture wiring for the test suite; helpers live in ``deployments``.

Shared deployment builders are deliberately kept in the importable
:mod:`deployments` module (see its docstring) — this file only exposes
them as fixtures.
"""

from __future__ import annotations

import pytest

from deployments import fork_deployment, line_deployment


@pytest.fixture
def line():
    return line_deployment()


@pytest.fixture
def fork():
    return fork_deployment()
