"""Fixture wiring for the test suite; helpers live in ``deployments``.

Shared deployment builders are deliberately kept in the importable
:mod:`deployments` module (see its docstring) — this file only exposes
them as fixtures.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import forbid_nondeterminism

from deployments import fork_deployment, line_deployment

#: Suites whose whole point is bit-identical replay: they run inside the
#: runtime sanitizer, so any wall-clock or ambient-entropy call on their
#: code path raises DeterminismViolation instead of passing by luck.
SANITIZED_MODULES = frozenset({
    "test_churn_equivalence",
    "test_oracle_engine",
    "test_program_bit_identity",
    "test_cancellation",
    "test_parallel_runner",
    "test_determinism_order",
})


@pytest.fixture(autouse=True)
def sanitize_determinism(request):
    if request.module.__name__ in SANITIZED_MODULES:
        with forbid_nondeterminism():
            yield
    else:
        yield


@pytest.fixture
def line():
    return line_deployment()


@pytest.fixture
def fork():
    return fork_deployment()
