"""Shared test deployments and helpers, importable by name.

Historically these lived in ``tests/conftest.py`` and test modules did
``from conftest import ...`` — which breaks as soon as pytest collects
``benchmarks/`` too, because both directories own a module literally
named ``conftest`` and whichever is imported first wins in
``sys.modules``.  Keeping the helpers in a uniquely named module makes
the imports unambiguous regardless of what else is collected.
"""

from __future__ import annotations

import networkx as nx

from repro.model import Location, SimpleEvent
from repro.model.attributes import AttributeType
from repro.model.intervals import Interval
from repro.network.network import Network
from repro.network.topology import Deployment, SensorPlacement
from repro.sim import Simulator

# ---------------------------------------------------------------------------
# A hand-built line deployment:
#
#   u2 -- u1 -- hub -- s_a -- s_b -- s_c
#
# Three sensors (a, b, c — one generic attribute 't') on a chain, two
# relay/user nodes.  Small enough to reason about exact traffic counts.
# ---------------------------------------------------------------------------
ATTR = AttributeType("t", Interval(-1000.0, 1000.0))


def line_deployment() -> Deployment:
    graph = nx.Graph()
    graph.add_edges_from(
        [("u2", "u1"), ("u1", "hub"), ("hub", "s_a"), ("s_a", "s_b"), ("s_b", "s_c")]
    )
    sensors = [
        SensorPlacement("a", ATTR, Location(0.0, 0.0), "s_a", 0),
        SensorPlacement("b", ATTR, Location(1.0, 0.0), "s_b", 0),
        SensorPlacement("c", ATTR, Location(2.0, 0.0), "s_c", 0),
    ]
    return Deployment(
        graph,
        sensors,
        {0: sensors},
        ["u2", "u1", "hub"],
        {0: "hub"},
        seed=0,
    )


# A fork deployment: sensors behind different branches, so splitting and
# divergence genuinely occur.
#
#        u1
#        |
#       mid
#      /    \
#    s_a    s_b
#            |
#           s_c
def fork_deployment() -> Deployment:
    graph = nx.Graph()
    graph.add_edges_from(
        [("u1", "mid"), ("mid", "s_a"), ("mid", "s_b"), ("s_b", "s_c")]
    )
    sensors = [
        SensorPlacement("a", ATTR, Location(0.0, 0.0), "s_a", 0),
        SensorPlacement("b", ATTR, Location(1.0, 0.0), "s_b", 0),
        SensorPlacement("c", ATTR, Location(2.0, 0.0), "s_c", 0),
    ]
    return Deployment(
        graph, sensors, {0: sensors}, ["u1", "mid"], {0: "mid"}, seed=0
    )


def make_network(deployment: Deployment, approach, delta_t: float = 5.0) -> Network:
    network = Network(deployment, Simulator(seed=0), delta_t=delta_t)
    approach.populate(network)
    # Sensors are always attached; approaches that do not flood
    # advertisements (centralized) just record them locally.
    network.attach_all_sensors()
    network.run_to_quiescence()
    return network


def publish(network: Network, sensor_id: str, value: float, ts: float, seq: int = 0):
    """Publish a reading on the node hosting ``sensor_id`` at sim-time ts."""
    placement = network.deployment.sensor_by_id(sensor_id)
    event = SimpleEvent(
        sensor_id, placement.attribute.name, placement.location, value, ts, seq
    )
    network.sim.at(ts, lambda: network.publish(placement.node_id, event))
    return event
