# lint-fixture: expect=agenda-access


def backlog(sim) -> int:
    return len(sim._agenda)
