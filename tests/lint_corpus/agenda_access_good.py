# lint-fixture: expect=clean


def backlog(sim) -> int:
    sim.agenda_summary()
    return sim.pending
