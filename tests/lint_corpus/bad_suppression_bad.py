# lint-fixture: expect=bad-suppression,wall-clock
import time


def stamp() -> float:
    return time.time()  # repro-lint: ignore[wall-clock]
