# lint-fixture: expect=entropy
import random
import uuid


def pick(xs):
    tag = uuid.uuid4()
    return tag, random.choice(xs)
