# lint-fixture: expect=clean
import random

import numpy as np
from repro.seeding import derive_seed


def pick(xs, seed: int):
    rng = np.random.default_rng(derive_seed(seed, "pick"))
    local = random.Random(seed)
    return xs[int(rng.integers(len(xs)))], local.choice(xs)
