# lint-fixture: expect=env-read
import os


def scale() -> str:
    return os.environ.get("REPRO_SCALE", "ci")


def workers() -> str:
    return os.environ["REPRO_WORKERS"]
