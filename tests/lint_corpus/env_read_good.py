# lint-fixture: expect=clean


def scale(preset: str) -> str:
    return preset
