# lint-fixture: expect=frozen-mutation


def poke(plan, seed: int):
    object.__setattr__(plan, "seed", seed)
