# lint-fixture: expect=clean
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Plan:
    seed: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "seed", int(self.seed))


def reseed(plan: Plan, seed: int) -> Plan:
    return replace(plan, seed=seed)
