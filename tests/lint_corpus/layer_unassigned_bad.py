# lint-fixture: expect=layer-unassigned module=repro.newpkg.thing
from repro.model.events import SimpleEvent


def wrap(event: SimpleEvent):
    return event
