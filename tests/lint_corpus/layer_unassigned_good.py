# lint-fixture: expect=clean module=repro.metrics.wellknown
"""Good twin of layer_unassigned_bad: the module's dotted name resolves
to a contract layer (``repro.metrics`` -> metrics), so importing within
its allowance raises nothing."""

from repro.model.events import SimpleEvent


def describe(event: SimpleEvent) -> str:
    return event.sensor_id
