# lint-fixture: expect=layer-violation module=repro.model.badimport
from repro.network.messages import EventMessage


def wrap(message: EventMessage):
    return message
