# lint-fixture: expect=clean module=repro.network.goodimport
from typing import TYPE_CHECKING

from repro.model.events import SimpleEvent

if TYPE_CHECKING:
    from repro.experiments.runner import RunResult  # upward but typing-only


def lazy(event: SimpleEvent):
    from repro.experiments.runner import run_point  # lazy upward: sanctioned

    return run_point, event
