# lint-fixture: expect=literal-delay


def go(sim):
    sim.schedule(-1.0, lambda: None)
    sim.at(float("nan"), lambda: None)
