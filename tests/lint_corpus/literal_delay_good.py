# lint-fixture: expect=clean


def go(sim, delay: float):
    sim.schedule(0.0, lambda: None)
    sim.schedule(delay, lambda: None)
    sim.at(5, lambda: None)
