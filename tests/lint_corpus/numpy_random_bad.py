# lint-fixture: expect=entropy
import numpy as np


def jitter(values):
    np.random.seed(0)  # mutates the process-global legacy state
    noise = np.random.normal(0.0, 1.0, len(values))
    return [v + n for v, n in zip(values, noise)]
