# lint-fixture: expect=clean
import numpy as np

from repro.seeding import derive_seed


def jitter(values, seed: int):
    rng = np.random.default_rng(derive_seed(seed, "jitter"))
    noise = rng.normal(0.0, 1.0, len(values))
    return [v + n for v, n in zip(values, noise)]
