# lint-fixture: expect=layer-violation module=repro.placement.badimport
from repro.experiments.figures import figure_19


def run():
    return figure_19()
