# lint-fixture: expect=clean module=repro.placement.goodimport
from repro.network.topology import Deployment
from repro.workload.subscriptions import SubscriptionWorkloadConfig


def stats_inputs(deployment: Deployment, config: SubscriptionWorkloadConfig):
    return deployment, config
