# lint-fixture: expect=rng-stream
import numpy as np


def make_streams(seed: int):
    ambient = np.random.default_rng()
    arithmetic = np.random.default_rng(seed * 31 + 7)
    return ambient, arithmetic
