# lint-fixture: expect=clean
import numpy as np

from repro.seeding import derive_seed


def make_streams(seed: int):
    derived = np.random.default_rng(derive_seed(seed, "stream"))
    fixed = np.random.default_rng(0)
    return derived, fixed
