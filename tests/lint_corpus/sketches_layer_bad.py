# lint-fixture: expect=layer-violation module=repro.sketches.badimport
from repro.network.links import TrafficMeter


def meter():
    return TrafficMeter()
