# lint-fixture: expect=clean module=repro.sketches.goodimport
"""Good twin of sketches_layer_bad: the sketch layer sits above model
and below network, so the value model is fair game while anything
network-flavoured must arrive through the node hooks instead."""

from repro.model.events import SimpleEvent
from repro.model.intervals import Interval


def in_range(event: SimpleEvent, interval: Interval) -> bool:
    return interval.contains(event.value)
