# lint-fixture: expect=clean
import time


def stamp() -> float:
    return time.time()  # repro-lint: ignore[wall-clock] -- fixture: sanctioned wall-clock read
