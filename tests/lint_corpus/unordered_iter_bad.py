# lint-fixture: expect=unordered-iter


def emit(raw):
    ids = set(raw)
    out = []
    for sensor_id in ids:
        out.append(sensor_id)
    return out


def materialise(raw):
    return list(set(raw))


def route(operator):
    return [s for s in operator.sensors]
