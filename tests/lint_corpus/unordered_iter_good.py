# lint-fixture: expect=clean


def emit(raw):
    ids = set(raw)
    out = []
    for sensor_id in sorted(ids):
        out.append(sensor_id)
    return out


def membership(raw, needle):
    ids = set(raw)
    return needle in ids and len(ids) > 1


def reduce(raw):
    ids = set(raw)
    return any(x > 0 for x in ids), {x * 2 for x in ids}
