# lint-fixture: expect=unused-suppression


def add(a: int, b: int) -> int:
    return a + b  # repro-lint: ignore[wall-clock] -- fixture: nothing to silence here
