# lint-fixture: expect=wall-clock
import time


def stamp() -> float:
    return time.time()
