# lint-fixture: expect=clean


def stamp(sim) -> float:
    return sim.now
