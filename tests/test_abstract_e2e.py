"""End-to-end tests for abstract (region-scoped) subscriptions.

These exercise the full pipeline the Swiss Experiment scenario needs:
advertisement-based resolution, slot sensor sets spanning regions,
delta_l spatial correlation and split routing toward multiple stations.
"""

import pytest

from repro import Session
from repro.model import AbstractSubscription, SimpleEvent, bounding_rect
from repro.model.locations import RectRegion
from repro.model.intervals import Interval


def _sensor(deployment, group, attribute):
    return next(
        s
        for s in deployment.sensors_of_group(group)
        if s.attribute.name == attribute
    )


def quick_network(n_nodes: int, n_groups: int, seed: int):
    """FSF network + deployment via the session facade (non-deprecated)."""
    session = Session.create(approach="fsf", nodes=n_nodes, groups=n_groups, seed=seed)
    return session.network, session.deployment


def _publish(net, placement, value, ts, seq=0):
    event = SimpleEvent(
        placement.sensor_id,
        placement.attribute.name,
        placement.location,
        value,
        ts,
        seq,
    )
    net.sim.at(ts, lambda: net.publish(placement.node_id, event))
    return event


class TestAbstractEndToEnd:
    def test_region_scoped_delivery(self):
        net, dep = quick_network(n_nodes=30, n_groups=4, seed=3)
        site = dep.sensors_of_group(1)
        region = bounding_rect((s.location for s in site), margin=2.0)
        sub = AbstractSubscription.from_ranges(
            "watch",
            {"wind_speed": (10.0, 40.0), "relative_humidity": (80.0, 100.0)},
            region=region,
            delta_t=5.0,
        )
        net.register_subscription("r1", sub)
        net.run_to_quiescence()
        wind = _sensor(dep, 1, "wind_speed")
        humid = _sensor(dep, 1, "relative_humidity")
        t0 = net.sim.now + 50.0
        _publish(net, wind, 15.0, t0)
        _publish(net, humid, 90.0, t0 + 2.0)
        net.run_to_quiescence()
        delivered = net.delivery.delivered("watch")
        assert {k[0] for k in delivered} == {wind.sensor_id, humid.sensor_id}

    def test_out_of_region_sensor_never_contributes(self):
        net, dep = quick_network(n_nodes=30, n_groups=4, seed=3)
        site = dep.sensors_of_group(1)
        region = bounding_rect((s.location for s in site), margin=2.0)
        sub = AbstractSubscription.from_ranges(
            "watch", {"wind_speed": (10.0, 40.0)}, region=region, delta_t=5.0
        )
        net.register_subscription("r1", sub)
        net.run_to_quiescence()
        stranger = _sensor(dep, 3, "wind_speed")
        assert not region.contains(stranger.location)
        _publish(net, stranger, 15.0, net.sim.now + 10.0)
        net.run_to_quiescence()
        assert net.delivery.delivered("watch") == {}
        assert net.meter.event_units == 0

    def test_delta_l_rejects_distant_correlation(self):
        net, dep = quick_network(n_nodes=40, n_groups=4, seed=3)
        # Region spanning two stations; delta_l smaller than their
        # distance: cross-station pairs must not correlate.
        g0, g1 = dep.sensors_of_group(0), dep.sensors_of_group(1)
        region = bounding_rect(
            [s.location for s in g0 + g1], margin=2.0
        )
        sub = AbstractSubscription.from_ranges(
            "tight",
            {"wind_speed": (0.0, 40.0), "relative_humidity": (0.0, 100.0)},
            region=region,
            delta_t=5.0,
            delta_l=5.0,
        )
        net.register_subscription("r1", sub)
        net.run_to_quiescence()
        wind0 = _sensor(dep, 0, "wind_speed")
        humid1 = _sensor(dep, 1, "relative_humidity")
        assert wind0.location.distance_to(humid1.location) > 5.0
        t0 = net.sim.now + 20.0
        _publish(net, wind0, 10.0, t0)
        _publish(net, humid1, 50.0, t0 + 1.0)
        net.run_to_quiescence()
        assert net.delivery.delivered("tight") == {}

    def test_delta_l_accepts_colocated_correlation(self):
        net, dep = quick_network(n_nodes=40, n_groups=4, seed=3)
        g1 = dep.sensors_of_group(1)
        region = bounding_rect([s.location for s in g1], margin=2.0)
        sub = AbstractSubscription.from_ranges(
            "tight",
            {"wind_speed": (0.0, 40.0), "relative_humidity": (0.0, 100.0)},
            region=region,
            delta_t=5.0,
            delta_l=10.0,
        )
        net.register_subscription("r1", sub)
        net.run_to_quiescence()
        t0 = net.sim.now + 20.0
        _publish(net, _sensor(dep, 1, "wind_speed"), 10.0, t0)
        _publish(net, _sensor(dep, 1, "relative_humidity"), 50.0, t0 + 1.0)
        net.run_to_quiescence()
        assert len(net.delivery.delivered("tight")) == 2

    def test_abstract_without_sources_dropped(self):
        net, dep = quick_network(n_nodes=30, n_groups=4, seed=3)
        empty_region = RectRegion(Interval(1e6, 1e6 + 1), Interval(0, 1))
        sub = AbstractSubscription.from_ranges(
            "ghost", {"wind_speed": (0, 10)}, region=empty_region, delta_t=5.0
        )
        net.register_subscription("r1", sub)
        net.run_to_quiescence()
        assert net.dropped_subscriptions == ["ghost"]
