"""Regression tests for the advertisement retraction / re-flood path.

The seed system flooded advertisements exactly once at setup; churn
makes the advertisement channel live: a departing sensor's retraction
floods through the tree (every node forgets it and fences its events),
and a rejoining sensor's re-advertisement floods the same way a fresh
one does — reaching **every** broker that held it before the departure.
Message accounting must include this traffic: the figures would silently
undercount churn scenarios otherwise.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines.naive import naive_approach
from repro.experiments.runner import REPLAY_START, run_point, shifted_churn
from repro.metrics.report import render_traffic_accounting, traffic_accounting
from repro.model.events import SimpleEvent
from repro.network.network import Network
from repro.network.topology import build_deployment
from repro.protocols.registry import all_approaches
from repro.sim import Simulator
from repro.workload.sensorscope import (
    ChurnConfig,
    DynamicReplayConfig,
    build_dynamic_replay,
)
from repro.workload.subscriptions import (
    SubscriptionWorkloadConfig,
    generate_subscriptions,
)


@pytest.fixture
def arena():
    deployment = build_deployment(16, 2, seed=3)
    sim = Simulator(seed=3)
    network = Network(deployment, sim)
    naive_approach().populate(network)
    network.attach_all_sensors()
    network.run_to_quiescence()
    return deployment, network


def _holders(network: Network, sensor_id: str) -> dict[str, str]:
    """node -> next hop toward ``sensor_id``, for every node knowing it."""
    return {
        node_id: node.ads.next_hop(sensor_id)
        for node_id, node in network.nodes.items()
        if node.ads.knows(sensor_id)
    }


class TestRefloodReach:
    def test_rejoin_reaches_every_former_holder(self, arena):
        deployment, network = arena
        placement = deployment.sensors[0]
        before = _holders(network, placement.sensor_id)
        # Flooding reached the whole overlay at setup.
        assert set(before) == set(network.nodes)

        network.detach_sensor(placement.node_id, placement.sensor_id)
        network.run_to_quiescence()
        assert _holders(network, placement.sensor_id) == {}

        network.attach_sensor(placement.node_id, placement)
        network.run_to_quiescence()
        after = _holders(network, placement.sensor_id)
        # Every broker that held the advertisement before the departure
        # holds it again — with the identical reverse path.
        assert after == before

    def test_retraction_fences_every_store(self, arena):
        deployment, network = arena
        placement = deployment.sensors[0]
        # Stamped at the current instant — stored events never postdate
        # the clock (publications are scheduled at their timestamps).
        event = SimpleEvent(
            placement.sensor_id,
            placement.attribute.name,
            placement.location,
            float(placement.attribute.domain.lo),
            network.sim.now,
            seq=0,
        )
        host = network.nodes[placement.node_id]
        host.ingest(event)
        assert len(host.store) == 1

        network.detach_sensor(placement.node_id, placement.sensor_id)
        network.run_to_quiescence()
        for node in network.nodes.values():
            assert (
                node.store.events_for_sensor(
                    placement.sensor_id, -math.inf, math.inf
                )
                == ()
            )
        # The fence also blocks a forwarded copy of the old reading.
        assert not host.ingest(event)

    def test_detach_unknown_sensor_is_noop(self, arena):
        _, network = arena
        before = network.meter.snapshot()
        some_node = next(iter(network.nodes))
        network.detach_sensor(some_node, "no-such-sensor")
        network.run_to_quiescence()
        assert network.meter.snapshot() == before


class TestRefloodAccounting:
    def test_leave_and_rejoin_cost_two_floods(self, arena):
        deployment, network = arena
        placement = deployment.sensors[0]
        edges = deployment.graph.number_of_edges()
        base = network.meter.snapshot()

        network.detach_sensor(placement.node_id, placement.sensor_id)
        network.run_to_quiescence()
        after_retract = network.meter.snapshot().minus(base)
        # A flood crosses every tree edge exactly once.
        assert after_retract.advertisement_units == edges
        assert after_retract.event_units == 0
        assert after_retract.subscription_units == 0

        network.attach_sensor(placement.node_id, placement)
        network.run_to_quiescence()
        total = network.meter.snapshot().minus(base)
        assert total.advertisement_units == 2 * edges

    def test_run_point_measures_reflood_load(self):
        deployment = build_deployment(16, 2, seed=5)
        replay = build_dynamic_replay(
            deployment,
            DynamicReplayConfig(
                days=2, rounds_per_day=5, day_seconds=80.0, seed=6
            ),
            ChurnConfig(cycle_fraction=0.4, seed=7),
        )
        workload = generate_subscriptions(
            deployment,
            replay.medians,
            SubscriptionWorkloadConfig(
                n_subscriptions=4, attrs_min=2, attrs_max=4, seed=5
            ),
            spreads=replay.spreads,
        )
        shifted = replay.shifted(REPLAY_START)
        churn = shifted_churn(replay)
        assert churn is not None
        transitions = len(churn.transitions())
        edges = deployment.graph.number_of_edges()
        result = run_point(
            all_approaches()["naive"],
            deployment,
            workload,
            shifted,
            churn=churn,
        )
        # Every leave floods a retraction, every rejoin re-floods the
        # advertisement: one tree-wide flood per transition.
        assert result.reflood_load == transitions * edges
        # And the static path still measures zero there.
        static = run_point(
            all_approaches()["naive"], deployment, workload, shifted
        )
        assert static.reflood_load == 0

    def test_traffic_accounting_includes_reflood(self):
        class Point:
            subscription_load = 10
            event_load = 100
            advertisement_load = 30
            reflood_load = 12

        totals = traffic_accounting([Point(), Point()])
        assert totals["reflood_units"] == 24
        assert totals["advertisement_units"] == 60 + 24  # setup + re-flood
        assert totals["total_units"] == 20 + 200 + 60 + 24
        text = render_traffic_accounting("t", {"naive": [Point()]})
        assert "reflood units" in text and "advertisement units" in text

    def test_centralized_churn_unicasts_to_center(self):
        deployment = build_deployment(16, 2, seed=3)
        sim = Simulator(seed=3)
        network = Network(deployment, sim)
        all_approaches()["centralized"].populate(network)
        network.attach_all_sensors()
        network.run_to_quiescence()
        # No advertisement flooding at setup — Table II's contract.
        assert network.meter.advertisement_units == 0
        placement = deployment.sensors[0]
        hops = network.routing.distance(placement.node_id, network.center)
        network.detach_sensor(placement.node_id, placement.sensor_id)
        network.attach_sensor(placement.node_id, placement)
        network.run_to_quiescence()
        # Retraction + re-join notice, charged per hop toward the centre.
        assert network.meter.advertisement_units == 2 * hops
