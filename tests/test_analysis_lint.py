"""The linter's own suite: fixture corpus, suppressions, contract, self-host.

The corpus under ``tests/lint_corpus/`` is the executable
specification: every ``*_bad.py`` must trip exactly the rules its
``# lint-fixture:`` header names (driven through the real CLI, so the
exit-code gate contract is what is tested), every ``*_good.py`` must
come back clean.  The self-host test is the repository's blocking
gate: ``src``, ``tests``, ``benchmarks``, ``tools`` and ``examples``
lint clean, and the shipped ``layers.toml`` matches the actual
load-time import graph.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path

import pytest

from repro.analysis import (
    ContractError,
    LintConfig,
    lint_paths,
    lint_source,
    load_contract,
)
from repro.analysis.cli import ALL_RULES, main
from repro.analysis.contract import parse_contract
from repro.analysis.engine import (
    categorize,
    module_level_imports,
    module_name_for,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
CORPUS = Path(__file__).resolve().parent / "lint_corpus"

_HEADER = re.compile(
    r"#\s*lint-fixture:\s*expect=([a-z\-,]+)(?:\s+module=(\S+))?"
)


def fixture_cases() -> list[tuple[str, tuple[str, ...], str | None]]:
    cases = []
    for path in sorted(CORPUS.glob("*.py")):
        match = _HEADER.match(path.read_text())
        assert match, f"{path.name} lacks a lint-fixture header"
        expected = tuple(match.group(1).split(","))
        cases.append((path.name, expected, match.group(2)))
    return cases


def run_cli(argv: list[str], capsys) -> tuple[int, dict]:
    code = main(argv)
    out = capsys.readouterr().out
    return code, json.loads(out)


class TestFixtureCorpus:
    @pytest.mark.parametrize(
        "name,expected,module", fixture_cases(), ids=lambda v: str(v)[:40]
    )
    def test_fixture(self, name, expected, module, capsys):
        argv = ["--treat-as", "src", "--format", "json", str(CORPUS / name)]
        if module:
            argv = ["--module-name", module] + argv
        code, payload = run_cli(argv, capsys)
        rules = {f["rule"] for f in payload["findings"]}
        if expected == ("clean",):
            assert code == 0, f"{name}: unexpected findings {payload}"
            assert rules == set()
        else:
            assert code == 1, f"{name}: expected a non-zero exit"
            assert set(expected) <= rules, (
                f"{name}: wanted {expected}, got {sorted(rules)}"
            )

    def test_every_rule_has_a_bad_and_a_good_fixture(self):
        """Each non-engine rule appears in >=1 bad fixture; each bad
        fixture file has a good twin exercising the same area."""
        covered: set[str] = set()
        for _, expected, _ in fixture_cases():
            covered.update(expected)
        covered.discard("clean")
        checkable = set(ALL_RULES) - {"syntax-error"}
        assert checkable <= covered, (
            f"rules without a bad fixture: {sorted(checkable - covered)}"
        )
        names = {name for name, _, _ in fixture_cases()}
        for name in sorted(names):
            if name.endswith("_bad.py"):
                area = name.removesuffix("_bad.py")
                twins = [
                    n for n in names
                    if n.startswith(area.rsplit("_", 0)[0]) and n.endswith("_good.py")
                ]
                # suppression-hygiene fixtures share one good twin
                if "suppression" in name:
                    twins = [n for n in names if "suppression" in n and n.endswith("_good.py")]
                assert twins, f"{name} has no *_good.py twin"


class TestSuppressions:
    def test_roundtrip(self):
        code = (
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro-lint: ignore[wall-clock] -- test\n"
        )
        assert lint_source(code, category="src") == []

    def test_wrong_rule_does_not_suppress(self):
        code = (
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro-lint: ignore[entropy] -- wrong rule\n"
        )
        rules = {f.rule for f in lint_source(code, category="src")}
        # the wall-clock finding survives AND the suppression is unused
        assert rules == {"wall-clock", "unused-suppression"}

    def test_missing_reason_is_bad_suppression(self):
        code = (
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro-lint: ignore[wall-clock]\n"
        )
        rules = {f.rule for f in lint_source(code, category="src")}
        assert rules == {"wall-clock", "bad-suppression"}

    def test_unused_suppression_flagged(self):
        code = "x = 1  # repro-lint: ignore[wall-clock] -- nothing here\n"
        findings = lint_source(code, category="src")
        assert [f.rule for f in findings] == ["unused-suppression"]

    def test_syntax_in_docstring_is_inert(self):
        code = (
            '"""Docs quoting `# repro-lint: ignore[wall-clock] -- x`."""\n'
            "x = 1\n"
        )
        assert lint_source(code, category="src") == []

    def test_multiple_rules_one_comment(self):
        code = (
            "import os, time\n"
            "def f():\n"
            "    return os.getenv('X'), time.time()  "
            "# repro-lint: ignore[env-read,wall-clock] -- test both\n"
        )
        assert lint_source(code, category="src") == []

    def test_engine_rules_not_suppressible(self):
        code = (
            "x = 1  # repro-lint: ignore[unused-suppression] -- try to hide\n"
        )
        findings = lint_source(code, category="src")
        assert [f.rule for f in findings] == ["unused-suppression"]


class TestScoping:
    def test_tests_category_skips_determinism(self):
        code = "import time\nt = time.time()\n"
        assert lint_source(code, category="tests") == []

    def test_src_category_applies(self):
        code = "import time\nt = time.time()\n"
        assert [f.rule for f in lint_source(code, category="src")] == ["wall-clock"]

    def test_allowlisted_module_exempt(self):
        code = "import os\nv = os.environ.get('REPRO_X')\n"
        findings = lint_source(
            code, category="src", module="repro.experiments.cli"
        )
        assert findings == []

    def test_categorize(self):
        assert categorize("src/repro/sim/core.py") == "src"
        assert categorize("tests/test_sim.py") == "tests"
        assert categorize("benchmarks/test_micro.py") == "benchmarks"
        assert categorize("somewhere/else.py") == "other"

    def test_module_name(self):
        assert module_name_for("src/repro/sim/core.py") == "repro.sim.core"
        assert module_name_for("src/repro/__init__.py") == "repro"
        assert module_name_for("src/repro/analysis/__init__.py") == "repro.analysis"


class TestContract:
    def _base(self):
        return {
            "contract": {"root-package": "repro"},
            "layer": [
                {"name": "low", "modules": ["repro.low"], "may-import": []},
                {"name": "high", "modules": ["repro.high"],
                 "may-import": ["low"]},
            ],
        }

    def test_cycle_rejected(self):
        data = self._base()
        data["layer"][0]["may-import"] = ["high"]
        with pytest.raises(ContractError, match="cyclic"):
            parse_contract(data)

    def test_three_way_cycle_rejected(self):
        data = {
            "layer": [
                {"name": "a", "modules": ["repro.a"], "may-import": ["b"]},
                {"name": "b", "modules": ["repro.b"], "may-import": ["c"]},
                {"name": "c", "modules": ["repro.c"], "may-import": ["a"]},
            ]
        }
        with pytest.raises(ContractError, match="cyclic"):
            parse_contract(data)

    def test_unknown_layer_reference_rejected(self):
        data = self._base()
        data["layer"][1]["may-import"] = ["ghost"]
        with pytest.raises(ContractError, match="unknown"):
            parse_contract(data)

    def test_duplicate_ownership_rejected(self):
        data = self._base()
        data["layer"][1]["modules"] = ["repro.low"]
        with pytest.raises(ContractError, match="owned by both"):
            parse_contract(data)

    def test_duplicate_name_rejected(self):
        data = self._base()
        data["layer"][1]["name"] = "low"
        with pytest.raises(ContractError, match="duplicate"):
            parse_contract(data)

    def test_cyclic_toml_file_rejected(self, tmp_path):
        bad = tmp_path / "layers.toml"
        bad.write_text(
            "[[layer]]\n"
            'name = "a"\nmodules = ["repro.a"]\nmay-import = ["b"]\n'
            "[[layer]]\n"
            'name = "b"\nmodules = ["repro.b"]\nmay-import = ["a"]\n'
        )
        with pytest.raises(ContractError, match="cyclic"):
            load_contract(bad)

    def test_root_prefix_matches_only_init(self):
        contract = load_contract()
        assert contract.layer_of("repro") == "root"
        assert contract.layer_of("repro.brand_new_pkg.mod") is None

    def test_longest_prefix_wins(self):
        contract = load_contract()
        assert contract.layer_of("repro.network.node") == "network"
        assert contract.layer_of("repro.seeding") == "util"


class TestLayerRules:
    def test_upward_import_flagged(self):
        code = "from repro.network.messages import EventMessage\n"
        findings = lint_source(
            code, category="src", module="repro.model.bad"
        )
        assert [f.rule for f in findings] == ["layer-violation"]

    def test_downward_import_clean(self):
        code = "from repro.model.events import SimpleEvent\n"
        assert lint_source(
            code, category="src", module="repro.network.good"
        ) == []

    def test_type_checking_import_exempt(self):
        code = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.experiments.runner import RunResult\n"
        )
        assert lint_source(
            code, category="src", module="repro.model.good"
        ) == []

    def test_lazy_import_exempt(self):
        code = (
            "def late():\n"
            "    from repro.api.session import Session\n"
            "    return Session\n"
        )
        assert lint_source(
            code, category="src", module="repro.workload.good"
        ) == []

    def test_relative_import_resolved(self):
        code = "from ..network import routing\n"
        findings = lint_source(
            code, category="src", module="repro.model.bad"
        )
        assert [f.rule for f in findings] == ["layer-violation"]

    def test_same_layer_import_allowed(self):
        code = "from repro.baselines.naive import naive_approach\n"
        assert lint_source(
            code, category="src", module="repro.protocols.registry"
        ) == []


class TestSelfHost:
    """The blocking gate: the repository lints clean against itself."""

    def test_repository_is_clean(self):
        paths = [
            REPO_ROOT / p
            for p in ("src", "tests", "benchmarks", "tools", "examples")
            if (REPO_ROOT / p).exists()
        ]
        findings = lint_paths(paths, LintConfig.default())
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_contract_matches_actual_import_graph(self):
        """Every load-time repro->repro import edge is contract-allowed,
        and every repro module is assigned to a layer — recomputed from
        the AST here, independently of the lint pass."""
        contract = load_contract()
        src = REPO_ROOT / "src" / "repro"
        for path in sorted(src.rglob("*.py")):
            module = module_name_for(path)
            layer = contract.layer_of(module)
            assert layer is not None, f"{module} unassigned in layers.toml"
            tree = ast.parse(path.read_text())
            for node, typing_only in module_level_imports(tree):
                if typing_only:
                    continue
                targets = []
                if isinstance(node, ast.Import):
                    targets = [
                        a.name for a in node.names
                        if a.name.startswith("repro")
                    ]
                elif node.module and not node.level:
                    if node.module.startswith("repro"):
                        targets = [node.module]
                elif node.level:
                    parts = module.split(".")
                    if path.name != "__init__.py":
                        parts = parts[:-1]
                    parts = parts[: len(parts) - (node.level - 1)]
                    if node.module:
                        parts += node.module.split(".")
                    targets = [".".join(parts)]
                for target in targets:
                    dst = contract.layer_of(target)
                    assert dst is not None, f"{target} unassigned"
                    assert contract.allows(layer, dst), (
                        f"{module} ({layer}) -> {target} ({dst}) "
                        "violates layers.toml"
                    )


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out

    def test_unknown_rule_id_rejected(self, capsys):
        assert main(["--rules", "no-such-rule", "src"]) == 2

    def test_missing_contract_rejected(self, capsys):
        assert main(["--contract", "/no/such/layers.toml", "src"]) == 2

    def test_missing_path_rejected(self, capsys):
        assert main(["/no/such/dir"]) == 2

    def test_rules_filter(self, capsys):
        """--rules restricts reporting to the named rules."""
        bad = CORPUS / "wall_clock_bad.py"
        code, payload = run_cli(
            ["--treat-as", "src", "--rules", "entropy", "--format", "json",
             str(bad)], capsys,
        )
        assert code == 0 and payload["count"] == 0
        code, payload = run_cli(
            ["--treat-as", "src", "--rules", "wall-clock", "--format", "json",
             str(bad)], capsys,
        )
        assert code == 1 and payload["count"] == 1

    def test_text_format_clean_and_dirty(self, capsys):
        assert main(["--treat-as", "src", str(CORPUS / "wall_clock_good.py")]) == 0
        assert "clean" in capsys.readouterr().out
        assert main(["--treat-as", "src", str(CORPUS / "wall_clock_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "[wall-clock]" in out and "finding" in out
