"""Runtime sanitizer tests: ambient entropy raises, seeded streams pass."""

from __future__ import annotations

import os
import random
import time
import uuid

import numpy as np
import pytest

from repro.analysis import DeterminismViolation, forbid_nondeterminism
from repro.core import filter_split_forward_approach
from repro.model import IdentifiedSubscription
from repro.sim import Simulator

from deployments import line_deployment, make_network, publish


class TestForbidden:
    def test_wall_clock_raises(self):
        with forbid_nondeterminism():
            with pytest.raises(DeterminismViolation, match="time.time"):
                time.time()
            with pytest.raises(DeterminismViolation, match="monotonic"):
                time.monotonic()

    def test_global_random_raises(self):
        with forbid_nondeterminism():
            with pytest.raises(DeterminismViolation, match="random.random"):
                random.random()
            with pytest.raises(DeterminismViolation, match="random.shuffle"):
                random.shuffle([1, 2, 3])

    def test_uuid_and_urandom_raise(self):
        with forbid_nondeterminism():
            with pytest.raises(DeterminismViolation, match="uuid.uuid4"):
                uuid.uuid4()
            with pytest.raises(DeterminismViolation, match="os.urandom"):
                os.urandom(8)

    def test_error_message_points_at_the_fix(self):
        with forbid_nondeterminism():
            with pytest.raises(DeterminismViolation, match="derive_seed"):
                time.time()


class TestAllowed:
    def test_seeded_random_instance_allowed(self):
        with forbid_nondeterminism():
            rng = random.Random(5)
            assert rng.random() == random.Random(5).random()

    def test_numpy_default_rng_allowed(self):
        with forbid_nondeterminism():
            rng = np.random.default_rng(7)
            assert rng.integers(0, 10) == np.random.default_rng(7).integers(0, 10)

    def test_deterministic_uuid5_allowed(self):
        with forbid_nondeterminism():
            assert uuid.uuid5(uuid.NAMESPACE_DNS, "x") == uuid.uuid5(
                uuid.NAMESPACE_DNS, "x"
            )


class TestRestore:
    def test_originals_restored_on_exit(self):
        originals = (time.time, random.random, uuid.uuid4, os.urandom)
        with forbid_nondeterminism():
            assert time.time is not originals[0]
        assert (time.time, random.random, uuid.uuid4, os.urandom) == originals

    def test_restored_after_internal_exception(self):
        original = time.time
        with pytest.raises(ValueError):
            with forbid_nondeterminism():
                raise ValueError("boom")
        assert time.time is original

    def test_nesting_restores_cleanly(self):
        original = random.random
        with forbid_nondeterminism():
            with forbid_nondeterminism():
                pass
            with pytest.raises(DeterminismViolation):
                random.random()
        assert random.random is original


class TestSimulationUnderSanitizer:
    def test_simulator_runs_clean(self):
        """The agenda kernel takes no ambient time or entropy."""
        with forbid_nondeterminism():
            sim = Simulator(seed=3)
            fired: list[float] = []
            sim.at(1.0, lambda: fired.append(sim.now))
            sim.at(2.5, lambda: fired.append(sim.now))
            sim.run()
            assert fired == [1.0, 2.5]

    def test_network_scenario_runs_clean(self):
        with forbid_nondeterminism():
            net = make_network(line_deployment(), filter_split_forward_approach())
            net.register_subscription(
                "u2",
                IdentifiedSubscription.from_ranges(
                    "s", {"a": ("t", 0.0, 10.0), "b": ("t", 0.0, 10.0)}, 5.0
                ),
            )
            net.run_to_quiescence()
            publish(net, "a", 1.0, ts=100.0)
            publish(net, "b", 1.0, ts=101.0)
            net.run_to_quiescence()
            delivered = net.delivery.delivered("s")
            assert {k[0] for k in delivered} == {"a", "b"}
            assert net.meter.event_units > 0
