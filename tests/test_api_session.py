"""The live query-session facade: builder, session, handles, shims.

``repro.api`` is *the* public way to use the system; these tests pin

* the fluent :class:`Query` builder's compilation to model objects
  (identified vs abstract classification, validation errors);
* :class:`Session` push-based ingestion and explicit time control,
  including bit-identical equivalence with a hand-driven network;
* :class:`QueryHandle` results (structured matches), stats and
  cancellation semantics;
* the deprecation shims kept for the old entry points.
"""

from __future__ import annotations

import math
import warnings

import pytest

from repro import (
    IdentifiedSubscription,
    Query,
    QueryError,
    ReproDeprecationWarning,
    Session,
    SimpleEvent,
    quick_network,
)
from repro.model import AbstractSubscription, Location, bounding_rect
from repro.model.locations import CircleRegion, RectRegion
from repro.network.network import Network
from repro.network.topology import build_deployment
from repro.protocols.registry import all_approaches
from repro.sim import Simulator


def small_session(approach="fsf", seed=11, **kwargs):
    return Session.create(approach=approach, nodes=24, groups=3, seed=seed, **kwargs)


def pair_of_sensors(session, group=0):
    sensors = session.deployment.sensors_of_group(group)
    ambient = next(s for s in sensors if s.attribute.name == "ambient_temperature")
    surface = next(s for s in sensors if s.attribute.name == "surface_temperature")
    return ambient, surface


def freeze_query(session):
    ambient, surface = pair_of_sensors(session)
    return (
        Query()
        .named("freeze-watch")
        .where(ambient.sensor_id, -5.0, 5.0)
        .where(surface.sensor_id, -10.0, 10.0)
        .within(5.0)
    )


class TestQueryBuilder:
    def test_identified_compilation(self):
        session = small_session()
        ambient, surface = pair_of_sensors(session)
        sub = freeze_query(session).build(session.deployment)
        assert isinstance(sub, IdentifiedSubscription)
        assert sub.sub_id == "freeze-watch"
        assert sub.sensor_ids == {ambient.sensor_id, surface.sensor_id}
        assert sub.delta_t == 5.0
        assert sub.filter_for(ambient.sensor_id).attribute == "ambient_temperature"
        assert sub.filter_for(surface.sensor_id).interval.lo == -10.0

    def test_abstract_compilation_with_near_location(self):
        session = small_session()
        center = session.deployment.sensors[0].location
        sub = (
            Query()
            .named("storm")
            .where("wind_speed", 12.0, 40.0)
            .where("relative_humidity", 85.0, 100.0)
            .within(4.0)
            .near(center, delta_l=200.0)
        ).build(session.deployment)
        assert isinstance(sub, AbstractSubscription)
        assert sub.attributes == {"wind_speed", "relative_humidity"}
        assert sub.delta_l == 200.0
        assert isinstance(sub.region, CircleRegion)
        assert sub.region.center == center and sub.region.radius == 200.0

    def test_abstract_with_explicit_region_and_default_region(self):
        session = small_session()
        region = RectRegion.around(Location(0.0, 0.0), 30.0)
        sub = (
            Query().named("r").where("wind_speed", 0.0, 50.0).near(region, 10.0)
        ).build(session.deployment)
        assert sub.region is region and sub.delta_l == 10.0
        # Without near(), the region spans the whole deployment.
        sub2 = (Query().named("u").where("wind_speed", 0.0, 50.0)).build(
            session.deployment
        )
        assert math.isinf(sub2.delta_l)
        assert all(
            sub2.region.contains(p.location) for p in session.deployment.sensors
        )

    def test_builder_is_immutable(self):
        base = Query().within(7.0)
        extended = base.where("wind_speed", 0.0, 1.0)
        assert base.clauses == () and len(extended.clauses) == 1

    def test_builder_validation(self):
        session = small_session()
        ambient, _ = pair_of_sensors(session)
        with pytest.raises(QueryError, match="empty range"):
            Query().where("wind_speed", 5.0, 1.0)
        with pytest.raises(QueryError, match="duplicate clause"):
            Query().where("wind_speed", 0.0, 1.0).where("wind_speed", 2.0, 3.0)
        with pytest.raises(QueryError, match="at least one"):
            Query().named("empty").build(session.deployment)
        with pytest.raises(QueryError, match="unknown targets"):
            Query().named("x").where("no_such_thing", 0.0, 1.0).build(
                session.deployment
            )
        with pytest.raises(QueryError, match="cannot mix"):
            (
                Query()
                .named("mix")
                .where(ambient.sensor_id, 0.0, 1.0)
                .where("wind_speed", 0.0, 1.0)
            ).build(session.deployment)
        with pytest.raises(QueryError, match="abstract"):
            (
                Query()
                .named("spatial-identified")
                .where(ambient.sensor_id, 0.0, 1.0)
                .near(Location(0.0, 0.0), 5.0)
            ).build(session.deployment)
        with pytest.raises(QueryError, match="finite delta_l"):
            Query().near(Location(0.0, 0.0))
        with pytest.raises(QueryError, match="no name"):
            Query().where("wind_speed", 0.0, 1.0).build(session.deployment)


class TestSession:
    def test_create_resolves_every_approach(self):
        for key in all_approaches():
            session = Session.create(approach=key, nodes=18, groups=2, seed=3)
            assert session.approach.key == key
            assert len(session.network.nodes) == 18
        with pytest.raises(ValueError, match="unknown approach"):
            Session.create(approach="nope")

    def test_ingest_builds_and_publishes(self):
        session = small_session()
        ambient, _ = pair_of_sensors(session)
        event = session.ingest(ambient.sensor_id, 1.25)
        assert event.attribute == "ambient_temperature"
        assert event.location == ambient.location
        assert event.timestamp == session.now
        assert event.seq == 0
        assert session.ingest(ambient.sensor_id, 2.0).seq == 1
        with pytest.raises(KeyError):
            session.ingest("ghost", 0.0)

    def test_future_ingest_rides_the_agenda(self):
        session = small_session()
        handle = session.submit(freeze_query(session), at="r2")
        ambient, surface = pair_of_sensors(session)
        t0 = session.now + 50.0
        session.ingest(ambient.sensor_id, 0.0, timestamp=t0)
        session.ingest(surface.sensor_id, 0.0, timestamp=t0 + 1.0)
        # Nothing happens until time passes.
        assert handle.stats().delivered_events == 0
        session.advance(10.0)
        assert handle.stats().delivered_events == 0
        session.drain()
        assert handle.stats().delivered_events == 2
        assert handle.stats().complex_deliveries >= 1

    def test_time_control_validation(self):
        session = small_session()
        with pytest.raises(ValueError):
            session.advance(-1.0)
        with pytest.raises(ValueError):
            session.run_until(session.now - 1.0)
        before = session.now
        assert session.advance(3.5) == pytest.approx(before + 3.5)
        assert session.run_until(session.now + 1.0) == pytest.approx(before + 4.5)

    def test_facade_matches_hand_driven_network(self):
        """Session-driven runs are bit-identical to the manual protocol."""
        seed = 7
        deployment = build_deployment(24, 3, seed=seed)
        # Manual run: the pre-facade way.
        manual = Network(deployment, Simulator(seed=seed))
        all_approaches()["fsf"].populate(manual)
        manual.attach_all_sensors()
        manual.run_to_quiescence()
        sensors = deployment.sensors_of_group(1)[:3]
        sub = IdentifiedSubscription.from_ranges(
            "q",
            {s.sensor_id: (s.attribute.name, -1e6, 1e6) for s in sensors},
            delta_t=5.0,
        )
        manual.register_subscription("r1", sub)
        manual.run_to_quiescence()
        t0 = manual.sim.now + 20.0
        for i, s in enumerate(sensors):
            event = SimpleEvent(
                s.sensor_id, s.attribute.name, s.location, 1.0, t0 + 0.5 * i, 0
            )
            manual.sim.at(
                event.timestamp, lambda e=event, p=s: manual.publish(p.node_id, e)
            )
        manual.run_to_quiescence()

        # Facade run on an equal deployment.
        session = Session.create(approach="fsf", nodes=24, groups=3, seed=seed)
        handle = session.submit(sub, at="r1")
        t0 = session.now + 20.0
        for i, s in enumerate(sensors):
            session.ingest(s.sensor_id, 1.0, timestamp=t0 + 0.5 * i)
        session.drain()

        assert session.traffic.snapshot() == manual.meter.snapshot()
        assert set(session.delivery.delivered("q")) == set(manual.delivery.delivered("q"))
        assert handle.stats().delivered_events == len(manual.delivery.delivered("q"))

    def test_submit_rejects_duplicate_live_ids(self):
        session = small_session()
        session.submit(freeze_query(session))
        with pytest.raises(QueryError, match="already live"):
            session.submit(freeze_query(session))

    def test_submit_unknown_node(self):
        session = small_session()
        with pytest.raises(KeyError):
            session.submit(freeze_query(session), at="nowhere")

    def test_failed_resubmit_leaves_old_incarnation_intact(self):
        """Validation failures must not wipe the previous incarnation."""
        session = small_session()
        ambient, surface = pair_of_sensors(session)
        handle = session.submit(freeze_query(session), at="r2")
        session.ingest(ambient.sensor_id, 1.0, timestamp=session.now + 5.0)
        session.ingest(surface.sensor_id, -1.0, timestamp=session.now + 6.0)
        session.drain()
        handle.cancel()
        fence = dict(session.cancellations)
        with pytest.raises(KeyError):
            session.submit(freeze_query(session), at="bogus-node")
        assert session.cancellations == fence
        assert handle.stats().delivered_events == 2
        assert len(handle.matches()) == 1

    def test_auto_ids_skip_named_collisions(self):
        session = small_session()
        ambient, _ = pair_of_sensors(session)
        base = Query().where(ambient.sensor_id, -5.0, 5.0).within(5.0)
        session.submit(base.named("q00001"))
        first = session.submit(base)   # auto: q00000
        second = session.submit(base)  # auto must skip live q00001
        assert first.sub_id == "q00000"
        assert second.sub_id == "q00002"

    def test_settled_units_not_billed_for_pending_floods(self):
        """A settled submit after a settle=False one drains the pending
        flood first, so each handle's units are its own registration's."""
        seed = 13
        reference = small_session(seed=seed)
        expected_a = reference.submit(
            freeze_query(reference), at="r2"
        ).stats().registration_units

        session = small_session(seed=seed)
        a = session.submit(freeze_query(session), at="r2", settle=False)
        # b targets another group so a's flood can never cover it.
        other, _ = pair_of_sensors(session, group=1)
        b_query = Query().named("b").where(other.sensor_id, -5.0, 5.0).within(5.0)
        b = session.submit(b_query, at="r2")
        assert a.stats().registration_units == 0  # unsettled: unattributable
        assert b.stats().registration_units > 0
        # b's units exclude a's flood entirely.
        solo = small_session(seed=seed)
        solo.submit(b_query, at="r2")
        assert (
            b.stats().registration_units
            == solo.handles["b"].stats().registration_units
        )
        assert expected_a > 0  # sanity: a's flood did cost something

    def test_auto_naming_and_active_queries(self):
        session = small_session()
        ambient, surface = pair_of_sensors(session)
        q = Query().where(ambient.sensor_id, -5.0, 5.0).within(5.0)
        h1, h2 = session.submit(q), session.submit(q)
        assert h1.sub_id != h2.sub_id
        assert session.active_queries() == sorted([h1.sub_id, h2.sub_id])
        h1.cancel()
        assert session.active_queries() == [h2.sub_id]


class TestQueryHandle:
    def test_structured_matches(self):
        session = small_session()
        handle = session.submit(freeze_query(session), at="r2")
        ambient, surface = pair_of_sensors(session)
        t0 = session.now + 100.0
        e1 = session.ingest(ambient.sensor_id, 1.5, timestamp=t0)
        e2 = session.ingest(surface.sensor_id, -3.0, timestamp=t0 + 1.5)
        session.drain()
        matches = session.handles["freeze-watch"].matches()
        assert len(matches) == 1
        (match,) = matches
        assert match.sub_id == "freeze-watch"
        assert match.trigger == e2
        assert match.timestamp == e2.timestamp
        assert match.events == (e1, e2)
        assert handle.events() == [e1, e2]

    def test_match_records_exclude_disjoint_combinations(self):
        """A ComplexMatch only lists members of combinations containing
        its trigger: a spatially disjoint cluster sharing the window is
        a different instance, not extra members."""
        session = Session.create(approach="fsf", nodes=30, groups=4, seed=3)
        clusters = [
            session.deployment.sensors_of_group(1),
            session.deployment.sensors_of_group(3),
        ]
        handle = session.submit(
            Query()
            .named("pairs")
            .where("wind_speed", 0.0, 100.0)
            .where("relative_humidity", 0.0, 100.0)
            .within(10.0)
            .near(
                bounding_rect(
                    (p.location for p in session.deployment.sensors), margin=1.0
                ),
                delta_l=5.0,  # within a group, never across groups
            )
        )
        t0 = session.now + 20.0
        by_cluster = []
        for i, cluster in enumerate(clusters):
            wind = next(p for p in cluster if p.attribute.name == "wind_speed")
            humid = next(
                p for p in cluster if p.attribute.name == "relative_humidity"
            )
            by_cluster.append(
                {
                    session.ingest(
                        wind.sensor_id, 10.0, timestamp=t0 + 0.1 * i
                    ).key,
                    session.ingest(
                        humid.sensor_id, 50.0, timestamp=t0 + 1.0 + 0.1 * i
                    ).key,
                }
            )
        session.drain()
        matches = handle.matches()
        assert len(matches) == 2  # one instance per cluster
        for match in matches:
            keys = {e.key for e in match.events}
            assert keys in by_cluster, (keys, by_cluster)
            assert match.trigger.key in keys

    def test_out_of_range_reading_matches_nothing(self):
        session = small_session()
        handle = session.submit(freeze_query(session), at="r2")
        ambient, _ = pair_of_sensors(session)
        session.ingest(ambient.sensor_id, -25.0, timestamp=session.now + 10.0)
        session.drain()
        assert handle.matches() == []
        assert handle.stats().delivered_events == 0

    def test_dropped_query_handle(self):
        """Absent sources: the handle reports the drop, cancel is a no-op."""
        session = small_session()
        sub = IdentifiedSubscription.from_ranges(
            "ghost", {"never-deployed": ("t", 0.0, 1.0)}, delta_t=5.0
        )
        handle = session.submit(sub)
        assert not handle.accepted and not handle.active
        assert handle.cancel() is False
        assert handle.stats().registration_units == 0

    def test_cancel_lifecycle(self):
        session = small_session()
        handle = session.submit(freeze_query(session), at="r2")
        assert handle.active and handle.stats().registration_units > 0
        assert handle.cancel() is True
        assert not handle.active
        assert handle.cancelled_at is not None
        assert handle.stats().cancellation_units > 0
        assert handle.cancel() is False  # idempotent
        # Resubmitting under the same id is allowed once cancelled.
        again = session.submit(freeze_query(session), at="r2")
        assert again.active

    def test_resubmitted_id_is_a_fresh_incarnation(self):
        """Reusing a cancelled id must not inherit fence or history."""
        session = small_session()
        ambient, surface = pair_of_sensors(session)
        first = session.submit(freeze_query(session), at="r2")
        old_pair = [
            session.ingest(ambient.sensor_id, 1.0, timestamp=session.now + 5.0),
            session.ingest(surface.sensor_id, -1.0, timestamp=session.now + 6.0),
        ]
        session.drain()
        assert len(first.matches()) == 1
        first.cancel()
        second = session.submit(freeze_query(session), at="r2")
        pair = [
            session.ingest(ambient.sensor_id, 2.0, timestamp=session.now + 5.0),
            session.ingest(surface.sensor_id, -2.0, timestamp=session.now + 6.0),
        ]
        session.drain()
        # Only the new incarnation's deliveries are visible...
        matches = second.matches()
        assert len(matches) == 1
        assert matches[0].events == tuple(pair)
        assert second.stats().delivered_events == 2
        # ...and the oracle's truth is fenced to the new incarnation's
        # lifetime: the first pair's instance belongs to the cancelled
        # incarnation, not to the resubmitted query.
        truth = session.truth(old_pair + pair)["freeze-watch"]
        assert truth.n_instances == 1
        assert truth.participants == {e.key for e in pair}

    def test_resubmit_backfill_is_truth_not_false_positive(self):
        """A fresh incarnation may correlate with still-valid earlier
        events (matcher backfill) — the oracle must count those members
        so recall is 1.0 with zero false positives, not penalised."""
        from repro.metrics.recall import measure_recall

        session = small_session()
        ambient, surface = pair_of_sensors(session)
        first = session.submit(freeze_query(session), at="r2")
        e1 = session.ingest(ambient.sensor_id, 1.0, timestamp=session.now + 5.0)
        session.drain()
        first.cancel()
        second = session.submit(freeze_query(session), at="r2")
        # Within delta_t of the pre-resubmit event: the new incarnation
        # legitimately completes the pair from the stored history.
        e2 = session.ingest(
            surface.sensor_id, -1.0, timestamp=e1.timestamp + 2.0
        )
        session.drain()
        assert second.stats().delivered_events == 2
        (match,) = second.matches()
        assert match.events == (e1, e2)
        truths = session.truth([e1, e2])
        assert truths["freeze-watch"].n_instances == 1
        report = measure_recall(truths, session.delivery)
        assert report.recall == 1.0
        assert report.false_positive_rate == 0.0

    def test_truth_fences_cancelled_queries(self):
        session = small_session()
        handle = session.submit(freeze_query(session), at="r2")
        ambient, surface = pair_of_sensors(session)
        t0 = session.now + 10.0
        events = [
            session.ingest(ambient.sensor_id, 0.0, timestamp=t0),
            session.ingest(surface.sensor_id, 0.0, timestamp=t0 + 1.0),
        ]
        session.drain()
        handle.cancel()
        # Post-cancel readings: real events, but no truth for the query.
        late = [
            session.ingest(ambient.sensor_id, 0.0, timestamp=session.now + 5.0),
            session.ingest(surface.sensor_id, 0.0, timestamp=session.now + 6.0),
        ]
        session.drain()
        truths = session.truth(events + late)
        truth = truths["freeze-watch"]
        assert truth.n_instances == 1  # the pre-cancel instance only
        assert all(key in {e.key for e in events} for key in truth.participants)
        assert handle.stats().delivered_events == 2  # nothing post-cancel

    def test_stats_frozen_at_cancel(self):
        """The satellite contract: a retired query's accounting freezes
        at the cancellation instant — result streams still in flight
        (or a later incarnation reusing the id) never accrue to it.
        The delivered *history* views stay live."""
        session = small_session()
        handle = session.submit(freeze_query(session), at="r2")
        ambient, surface = pair_of_sensors(session)
        t0 = session.now + 10.0
        e1 = session.ingest(ambient.sensor_id, 1.0, timestamp=t0)
        e2 = session.ingest(surface.sensor_id, -1.0, timestamp=t0 + 1.0)
        session.drain()
        assert handle.cancel()
        frozen = handle.stats()
        assert frozen.delivered_events == 2 and frozen.matches == 1
        assert not frozen.active and frozen.cancellation_units > 0
        # A straggler landing in the log after the teardown (the
        # cancel-while-matching race) must not change the stats...
        straggler = SimpleEvent(
            ambient.sensor_id,
            ambient.attribute.name,
            ambient.location,
            2.0,
            timestamp=session.now + 1.0,
            seq=999,
        )
        session.delivery.record_events("freeze-watch", [straggler])
        session.delivery.record_complex("freeze-watch")
        assert handle.stats() == frozen
        # ...while the history views keep reading the live log.
        assert straggler in handle.events()
        assert handle.events()[:2] == [e1, e2]

    def test_stats_frozen_under_unsettled_cancel(self):
        """cancel(settle=False) freezes at the issue instant: matches
        still in flight at the teardown are not accounted."""
        session = small_session()
        handle = session.submit(freeze_query(session), at="r2")
        ambient, surface = pair_of_sensors(session)
        session.ingest(ambient.sensor_id, 1.0)
        session.ingest(surface.sensor_id, -1.0)
        # Nothing delivered yet (the events are mid-flight); cancel now.
        assert handle.cancel(settle=False)
        frozen = handle.stats()
        assert frozen.delivered_events == 0
        session.drain()
        assert handle.stats() == frozen

    def test_stats_live_while_active(self):
        session = small_session()
        handle = session.submit(freeze_query(session), at="r2")
        ambient, surface = pair_of_sensors(session)
        assert handle.stats().delivered_events == 0
        session.ingest(ambient.sensor_id, 1.0)
        session.ingest(surface.sensor_id, -1.0)
        session.drain()
        assert handle.stats().delivered_events == 2


class TestReentrancy:
    """Programmatic driving surfaced the gap: submitting (or
    cancelling) from inside a delivery callback or mid-``drain`` used
    to die with an opaque ``SimulationError: run() is not reentrant``
    somewhere inside the settle.  Now: ``settle=True`` raises a clear
    :class:`QueryError` up front, ``settle=False`` works."""

    def test_submit_mid_drain_with_settle_raises_query_error(self):
        session = small_session()
        query = freeze_query(session)
        errors: list[Exception] = []

        def mid_drain_submit():
            with pytest.raises(QueryError, match="settle=False"):
                session.submit(query)
            errors.append(True)  # reached: the guard fired cleanly

        session.network.sim.at(session.now + 1.0, mid_drain_submit)
        session.drain()
        assert errors
        assert "freeze-watch" not in session.handles

    def test_cancel_mid_drain_with_settle_raises_query_error(self):
        session = small_session()
        handle = session.submit(freeze_query(session))

        def mid_drain_cancel():
            with pytest.raises(QueryError, match="settle=False"):
                handle.cancel()

        session.network.sim.at(session.now + 1.0, mid_drain_cancel)
        session.drain()
        assert handle.active  # the guarded cancel never went through

    def test_submit_mid_drain_with_settle_false_works(self):
        """An unsettled mid-drain submit registers, floods, and the
        query then delivers like any other."""
        session = small_session()
        ambient, surface = pair_of_sensors(session)
        query = freeze_query(session)
        t0 = session.now + 50.0

        session.network.sim.at(
            session.now + 1.0,
            lambda: session.submit(query, settle=False),
        )
        session.ingest(ambient.sensor_id, 1.5, timestamp=t0)
        session.ingest(surface.sensor_id, -3.0, timestamp=t0 + 1.5)
        session.drain()
        handle = session.handles["freeze-watch"]
        assert handle.active
        assert handle.stats().delivered_events == 2
        assert len(handle.matches()) == 1

    def test_cancel_mid_drain_with_settle_false_works(self):
        session = small_session()
        handle = session.submit(freeze_query(session))
        session.network.sim.at(
            session.now + 1.0, lambda: handle.cancel(settle=False)
        )
        session.drain()
        assert not handle.active
        assert handle.cancelled_at is not None


class TestDeprecationShims:
    def test_quick_network_warns_and_delegates(self):
        with pytest.warns(ReproDeprecationWarning, match="Session.create"):
            network, deployment = quick_network(n_nodes=24, n_groups=3, seed=5)
        assert isinstance(network, Network)
        assert deployment.n_nodes == 24

    def test_inject_subscription_warns_and_delegates(self):
        session = small_session(seed=5)
        sub = freeze_query(session).build(session.deployment)
        with pytest.warns(ReproDeprecationWarning, match="register_subscription"):
            session.network.inject_subscription("r2", sub)
        session.drain()
        assert "freeze-watch" in session.delivery.registered

    def test_facade_emits_no_deprecation_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            session = small_session(seed=6)
            handle = session.submit(freeze_query(session), at="r2")
            ambient, _ = pair_of_sensors(session)
            session.ingest(ambient.sensor_id, 1.0)
            session.drain()
            handle.cancel()
