"""Behavioural tests for the four comparison systems."""

import pytest

from repro.baselines import (
    centralized_approach,
    multijoin_approach,
    naive_approach,
    operator_placement_approach,
)
from repro.baselines.multijoin import JOIN, LEAF, SPLIT, TRANSIT
from repro.model import IdentifiedSubscription
from repro.network.node import LOCAL

from deployments import fork_deployment, line_deployment, make_network, publish


def sub(sub_id, ranges, delta_t=5.0):
    return IdentifiedSubscription.from_ranges(
        sub_id, {k: ("t", lo, hi) for k, (lo, hi) in ranges.items()}, delta_t
    )


# ---------------------------------------------------------------------------
# Naive
# ---------------------------------------------------------------------------
class TestNaive:
    def test_no_filtering(self, line):
        net = make_network(line, naive_approach())
        net.register_subscription("u2", sub("s1", {"a": (0, 10)}))
        net.run_to_quiescence()
        units = net.meter.subscription_units
        net.register_subscription("u2", sub("s2", {"a": (0, 10)}))  # identical
        net.run_to_quiescence()
        assert net.meter.subscription_units == 2 * units

    def test_result_sets_duplicated_per_subscription(self, line):
        net = make_network(line, naive_approach())
        net.register_subscription("u2", sub("s1", {"a": (0, 10)}))
        net.register_subscription("u2", sub("s2", {"a": (0, 20)}))
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0)
        net.run_to_quiescence()
        # The same event pays once per overlapping stream per link:
        # 2 streams x 3 links.
        assert net.meter.event_units == 6
        assert net.delivery.delivered_count("s1") == 1
        assert net.delivery.delivered_count("s2") == 1

    def test_correlation_still_enforced(self, line):
        net = make_network(line, naive_approach())
        net.register_subscription("u2", sub("s", {"a": (0, 10), "b": (0, 10)}))
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0)
        publish(net, "b", 5.0, ts=300.0)  # uncorrelated
        net.run_to_quiescence()
        assert net.delivery.delivered("s") == {}


# ---------------------------------------------------------------------------
# Distributed operator placement
# ---------------------------------------------------------------------------
class TestOperatorPlacement:
    def test_pairwise_coverage_stops_forwarding(self, line):
        net = make_network(line, operator_placement_approach())
        net.register_subscription("u2", sub("wide", {"a": (0, 20)}))
        net.run_to_quiescence()
        units = net.meter.subscription_units
        net.register_subscription("u2", sub("narrow", {"a": (5, 10)}))
        net.run_to_quiescence()
        assert net.meter.subscription_units == units
        assert [op.subscription_id for op in net.nodes["u2"].stores[LOCAL].covered] == [
            "narrow"
        ]

    def test_union_coverage_not_detected(self, line):
        """Pairwise filtering cannot use two operators jointly."""
        net = make_network(line, operator_placement_approach())
        net.register_subscription("u2", sub("l", {"a": (0, 6)}))
        net.register_subscription("u2", sub("r", {"a": (5, 10)}))
        net.run_to_quiescence()
        units = net.meter.subscription_units
        net.register_subscription("u2", sub("m", {"a": (2, 8)}))
        net.run_to_quiescence()
        assert net.meter.subscription_units > units

    def test_covered_stream_regenerated_at_coverage_node(self, line):
        net = make_network(line, operator_placement_approach())
        net.register_subscription("u2", sub("wide", {"a": (0, 20)}))
        net.register_subscription("u2", sub("narrow", {"a": (5, 10)}))
        net.run_to_quiescence()
        publish(net, "a", 7.0, ts=100.0)
        net.run_to_quiescence()
        assert net.delivery.delivered_count("wide") == 1
        assert net.delivery.delivered_count("narrow") == 1
        # wide's stream: 3 links; narrow was covered at u2 itself, so its
        # stream is regenerated only at the user's node: 0 extra links.
        assert net.meter.event_units == 3

    def test_stream_duplication_when_both_travel(self, line):
        net = make_network(line, operator_placement_approach())
        net.register_subscription("u2", sub("s1", {"a": (0, 10)}))
        net.register_subscription("u2", sub("s2", {"a": (2, 20)}))  # not covered
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0)
        net.run_to_quiescence()
        assert net.meter.event_units == 6  # 2 streams x 3 links


# ---------------------------------------------------------------------------
# Distributed multi-join
# ---------------------------------------------------------------------------
class TestMultiJoin:
    def test_roles_on_the_line(self, line):
        net = make_network(line, multijoin_approach())
        net.register_subscription(
            "u2", sub("s", {"a": (0, 10), "b": (0, 10), "c": (0, 10)})
        )
        net.run_to_quiescence()
        # u2/u1/hub hold the whole multi-join in transit; s_a is the
        # first divergence (local sensor + onward paths) and splits.
        assert net.nodes["u1"].roles["s[a,b,c]"] == TRANSIT
        s_a = net.nodes["s_a"]
        assert s_a.roles["s[a,b,c]"] == SPLIT
        join_roles = [r for r in s_a.roles.values() if r == JOIN]
        assert len(join_roles) == 3  # ring of three binary joins
        # Below the divergence only simple filters travel.
        assert all(
            op.is_simple for op in net.nodes["s_b"].stores["s_a"].all_operators()
        )

    def test_subscription_load_higher_than_simple_splitting(self, line):
        mj = make_network(line, multijoin_approach())
        op_net = make_network(line_deployment(), operator_placement_approach())
        s = sub("s", {"a": (0, 10), "b": (0, 10), "c": (0, 10)})
        for net in (mj, op_net):
            net.register_subscription("u2", s)
            net.run_to_quiescence()
        assert (
            mj.meter.subscription_units > op_net.meter.subscription_units
        ), "binary joins dispatch more filters from the divergence node"

    def test_false_positive_delivered(self, line):
        """Pairwise sanctioning forwards events with no full match.

        a1@100 pairs with b@104 (|dt| < 5) so every binary join on its
        path sanctions it — but the only full match is {a2@103, b@104,
        c@107}; a1 takes part in no complete window, yet it is hauled
        all the way to the user (the paper's false-positive traffic).
        """
        net = make_network(line, multijoin_approach())
        net.register_subscription(
            "u2", sub("s", {"a": (0, 10), "b": (0, 10), "c": (0, 10)})
        )
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0, seq=0)  # the false positive
        publish(net, "a", 5.0, ts=103.0, seq=1)
        publish(net, "b", 5.0, ts=104.0)
        publish(net, "c", 5.0, ts=107.0)
        net.run_to_quiescence()
        delivered = net.delivery.delivered("s")
        assert ("a", 1) in delivered and ("b", 0) in delivered
        assert ("c", 0) in delivered
        assert ("a", 0) in delivered, "false positive reaches the user"

    def test_broken_ring_false_positive_decays_in_transit(self, line):
        """An event whose sanctioning partner cannot travel is dropped
        at the first transit re-check instead of reaching the user."""
        net = make_network(line, multijoin_approach())
        net.register_subscription(
            "u2", sub("s", {"a": (0, 10), "b": (0, 10), "c": (0, 10)})
        )
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0)
        publish(net, "b", 5.0, ts=101.0)  # c absent: b never sanctioned
        net.run_to_quiescence()
        delivered = net.delivery.delivered("s")
        assert delivered == {}
        # a was sanctioned at the divergence node and crossed at least
        # one link before decaying.
        assert net.meter.event_units >= 2

    def test_true_match_fully_delivered(self, line):
        net = make_network(line, multijoin_approach())
        net.register_subscription(
            "u2", sub("s", {"a": (0, 10), "b": (0, 10), "c": (0, 10)})
        )
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0)
        publish(net, "b", 5.0, ts=101.0)
        publish(net, "c", 5.0, ts=102.0)
        net.run_to_quiescence()
        delivered = net.delivery.delivered("s")
        assert {k[0] for k in delivered} == {"a", "b", "c"}

    def test_two_attribute_join_is_exact(self, line):
        net = make_network(line, multijoin_approach())
        net.register_subscription("u2", sub("s", {"a": (0, 10), "b": (0, 10)}))
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0)
        publish(net, "b", 50.0, ts=101.0)  # b out of range
        net.run_to_quiescence()
        assert net.delivery.delivered("s") == {}

    def test_shared_raw_streams_deduplicated(self, line):
        net = make_network(line, multijoin_approach())
        net.register_subscription("u2", sub("s1", {"a": (0, 10), "b": (0, 10)}))
        net.register_subscription("u2", sub("s2", {"a": (0, 12), "b": (0, 12)}))
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0)
        publish(net, "b", 5.0, ts=101.0)
        net.run_to_quiescence()
        # Per-link dedup: each event crosses each link at most once.
        for link, count in net.meter.per_link_events.items():
            assert count <= 2, (link, count)


# ---------------------------------------------------------------------------
# Centralized
# ---------------------------------------------------------------------------
class TestCentralized:
    def test_no_advertisement_traffic(self, line):
        net = make_network(line, centralized_approach())
        assert net.meter.advertisement_units == 0

    def test_subscription_unicast_to_center(self, line):
        net = make_network(line, centralized_approach())
        center = net.center
        net.register_subscription("u2", sub("s", {"a": (0, 10)}))
        net.run_to_quiescence()
        assert net.meter.subscription_units == net.routing.distance("u2", center)
        assert len(net.nodes[center].stores[LOCAL].uncovered) == 1

    def test_every_event_hauled_to_center(self, line):
        net = make_network(line, centralized_approach())
        center = net.center
        publish(net, "c", 999.0, ts=100.0)  # matches nothing, still pays
        net.run_to_quiescence()
        assert net.meter.event_units == net.routing.distance("s_c", center)

    def test_matching_and_result_delivery(self, line):
        net = make_network(line, centralized_approach())
        center = net.center
        net.register_subscription("u2", sub("s", {"a": (0, 10), "b": (0, 10)}))
        net.run_to_quiescence()
        base = net.meter.event_units
        publish(net, "a", 5.0, ts=100.0)
        publish(net, "b", 5.0, ts=101.0)
        net.run_to_quiescence()
        delivered = net.delivery.delivered("s")
        assert {k[0] for k in delivered} == {"a", "b"}
        raw_cost = net.routing.distance("s_a", center) + net.routing.distance(
            "s_b", center
        )
        result_cost = 2 * net.routing.distance(center, "u2")
        assert net.meter.event_units - base == raw_cost + result_cost

    def test_per_subscription_result_sets(self, line):
        net = make_network(line, centralized_approach())
        net.register_subscription("u2", sub("s1", {"a": (0, 10)}))
        net.register_subscription("u2", sub("s2", {"a": (0, 20)}))
        net.run_to_quiescence()
        base = net.meter.event_units
        publish(net, "a", 5.0, ts=100.0)
        net.run_to_quiescence()
        center = net.center
        per_result = net.routing.distance(center, "u2")
        raw = net.routing.distance("s_a", center)
        assert net.meter.event_units - base == raw + 2 * per_result

    def test_absent_source_dropped(self, line):
        net = make_network(line, centralized_approach())
        net.register_subscription("u2", sub("s", {"zzz": (0, 1)}))
        net.run_to_quiescence()
        assert net.dropped_subscriptions == ["s"]

    def test_recall_is_perfect(self, line):
        net = make_network(line, centralized_approach())
        net.register_subscription("u2", sub("s", {"a": (0, 10), "b": (0, 10)}))
        net.run_to_quiescence()
        publish(net, "a", 1.0, ts=100.0)
        publish(net, "b", 2.0, ts=101.0)
        publish(net, "a", 3.0, ts=103.0, seq=1)
        net.run_to_quiescence()
        assert net.delivery.delivered_count("s") == 3
