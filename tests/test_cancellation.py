"""Machine-checked cancellation equivalence.

``handle.cancel()`` / ``Network.cancel_subscription`` threads an
:class:`UnsubscribeMessage` along exactly the links the subscription's
operators travelled, removing them and repairing coverage decisions.
This suite pins the guarantees, across all four distributed approaches
plus the centralized baseline and both matching modes:

* **settled cancellation is exact** — submit → quiesce → cancel →
  quiesce → replay is bit-identical to never having subscribed: same
  replay traffic, same survivor deliveries, same per-node stored
  operators and registered matchers (100 seeded scenarios); coverage
  flags match too except where a re-forwarded operator landed behind a
  survivor that covers it, which the suite re-verifies as safe
  (see :func:`assert_equivalent_stores`);
* **any cancellation leaves zero footprint of the cancelled query** —
  no stored operator, matcher, role, ring join, dispatched filter or
  forwarded-path memory anywhere, and zero post-cancel deliveries,
  even when the cancel chases the subscription flood mid-flight;
* **mid-flood cancellation is safe** — the pairwise approaches never
  lose a survivor's delivery relative to never-subscribed (coverage
  falls back to covering supersets); FSF's union coverage may re-roll
  its documented gap, which the suite tracks but does not forbid;
* **the oracle fences cancelled queries exactly like departed
  sensors**, identically in both truth passes.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from deployments import line_deployment
from repro.core.filter_split_forward import FSFConfig
from repro.experiments.runner import REPLAY_START
from repro.metrics.oracle import compute_truth
from repro.model.subscriptions import IdentifiedSubscription
from repro.network.messages import UnsubscribeMessage
from repro.network.network import Network
from repro.network.topology import build_deployment
from repro.protocols.registry import all_approaches
from repro.sim import Simulator
from repro.workload.sensorscope import ReplayConfig, build_replay
from repro.workload.subscriptions import (
    SubscriptionWorkloadConfig,
    generate_subscriptions,
)

APPROACH_KEYS = ("fsf", "naive", "operator_placement", "multijoin", "centralized")

# Exact set filtering removes the probabilistic filter's sampling noise:
# with sampling, the rng stream itself diverges between a run that ever
# saw the cancelled subscription and one that did not, so bit-identity
# is only meaningful for the exact check (the safety properties below
# run the probabilistic default too).
EXACT_FSF = FSFConfig(exact_filtering=True)


def arena(seed: int):
    """One seeded scenario: tiny deployment, short replay, 8 queries."""
    deployment = build_deployment(16, 2, seed=seed)
    replay = build_replay(deployment, ReplayConfig(rounds=12, seed=seed * 5 + 3))
    workload = generate_subscriptions(
        deployment,
        replay.medians,
        SubscriptionWorkloadConfig(
            n_subscriptions=8, attrs_min=2, attrs_max=4, seed=seed
        ),
        spreads=replay.spreads,
    )
    return deployment, replay, workload


def run_arena(
    seed,
    approach_key,
    matching,
    cancel_ids,
    register_cancelled,
    mid_flood=False,
    fsf_config=EXACT_FSF,
):
    """One live run; cancels ``cancel_ids`` (settled or mid-flood), then
    replays the events and returns everything observable."""
    deployment, replay, workload = arena(seed)
    sim = Simulator(seed=deployment.seed)
    network = Network(deployment, sim, matching=matching)
    all_approaches(fsf_config)[approach_key].populate(network)
    network.attach_all_sensors()
    network.run_to_quiescence()
    for placed in workload:
        if placed.subscription.sub_id in cancel_ids and not register_cancelled:
            continue
        network.register_subscription(placed.node_id, placed.subscription)
        if not mid_flood:
            network.run_to_quiescence()
    for placed in workload:
        if placed.subscription.sub_id in cancel_ids and register_cancelled:
            network.cancel_subscription(placed.node_id, placed.subscription.sub_id)
            if not mid_flood:
                network.run_to_quiescence()
    network.run_to_quiescence()
    before_replay = network.meter.snapshot()
    shifted = replay.shifted(REPLAY_START)
    node_of = {s.sensor_id: s.node_id for s in deployment.sensors}
    sim.schedule_timeline(
        (e.timestamp, lambda e=e: network.publish(node_of[e.sensor_id], e))
        for e in shifted
    )
    network.run_to_quiescence()
    return {
        "network": network,
        "replay_traffic": network.meter.snapshot().minus(before_replay),
        "delivered": {
            sub_id: set(network.delivery.delivered(sub_id))
            for sub_id in network.delivery.subscriptions()
        },
        "complex": dict(network.delivery.complex_deliveries),
        "dropped": sorted(network.dropped_subscriptions),
    }


def stored_state(network):
    """Per-node stored operators with coverage flags.

    Compared as sorted multisets: repair re-forwards a restored
    operator's fragments *after* the unsubscribe reached the node, so a
    downstream store can hold the identical records at a different list
    position than the never-subscribed run — arrival order below a
    repair is deliberately not part of the guarantee (coverage checks
    consult the whole uncovered set, so position never changes a
    decision's outcome, only which equivalent cover is named).
    """
    state = {}
    for node_id in sorted(network.nodes):
        node = network.nodes[node_id]
        for origin in sorted(node.stores):
            records = node.stores[origin].records()
            if records:
                state[(node_id, origin)] = sorted(
                    ((r.operator, r.covered) for r in records),
                    key=lambda pair: (
                        pair[0].op_id,
                        pair[1],
                        tuple((s.interval.lo, s.interval.hi) for s in pair[0].slots),
                    ),
                )
    return state


def assert_equivalent_stores(run_network, base_network, context):
    """Post-cancel stores == never-subscribed stores, modulo safe flags.

    The same operators must be stored at the same (node, origin); a
    coverage flag may differ only when a re-forwarded operator arrived
    behind a survivor that covers it (the covering superset pulls at
    least its events, so decisions/traffic/deliveries — asserted
    bit-identical separately — cannot change).  Any flagged-covered
    record must name a live same-signature cover in its own store.
    """
    run_state = stored_state(run_network)
    base_state = stored_state(base_network)
    assert set(run_state) == set(base_state), context
    for key in run_state:
        run_ops = [op for op, _ in run_state[key]]
        base_ops = [op for op, _ in base_state[key]]
        assert run_ops == base_ops, (context, key)
        if run_state[key] == base_state[key]:
            continue
        node_id, origin = key
        for (op, run_covered), (_, base_covered) in zip(
            run_state[key], base_state[key]
        ):
            if run_covered == base_covered:
                continue
            # Whichever run holds the flag covered must justify it with
            # the approach's own coverage check against its live store.
            network = run_network if run_covered else base_network
            node = network.nodes[node_id]
            store = node.stores[origin]
            record = next(
                r for r in store.records() if r.operator == op and r.covered
            )
            assert node.recheck_coverage(record, store), (context, key, op.op_id)


def matcher_state(network):
    """Registered incremental matchers per node (None in reference mode)."""
    state = {}
    for node_id, node in network.nodes.items():
        if node.matching is not None:
            state[node_id] = sorted(
                op.op_id for op in node.matching._matchers
            )
    return state


def assert_no_trace(network, sub_id):
    """The cancelled query left zero footprint anywhere in the network."""
    for node_id, node in network.nodes.items():
        where = f"node {node_id}"
        for origin, store in node.stores.items():
            assert not any(
                r.operator.subscription_id == sub_id for r in store.records()
            ), f"store[{origin}] at {where}"
        assert not any(
            sub.sub_id == sub_id for sub, _ in node.local_subscriptions
        ), where
        assert not any(
            entry[0].sub_id == sub_id
            for bucket in node._local_by_sensor.values()
            for entry in bucket
        ), where
        assert sub_id not in node._forwarded_subs, where
        if node.matching is not None:
            assert not any(
                op.subscription_id == sub_id for op in node.matching._matchers
            ), where
            assert not any(
                op.subscription_id == sub_id for op in node.matching._refs
            ), where
        for attr in ("roles", "_ring_cache"):
            mapping = getattr(node, attr, None)
            if mapping:
                assert not any(
                    key.startswith(f"{sub_id}[") for key in mapping
                ), f"{attr} at {where}"
        dispatched = getattr(node, "_dispatched_filters", None)
        if dispatched:
            for records in dispatched.values():
                assert not any(
                    r.operator.subscription_id == sub_id for r in records
                ), f"dispatched filters at {where}"


# ---------------------------------------------------------------------------
# message + unit mechanics
# ---------------------------------------------------------------------------
class TestUnsubscribeMessage:
    def test_unit_accounting(self):
        message = UnsubscribeMessage("q1")
        assert message.subscription_units == 1
        assert message.event_units == 0
        assert message.advertisement_units == 0

    def test_cancel_retraces_the_forward_paths(self, line):
        """On the line topology the teardown costs exactly the placement."""
        sim = Simulator(seed=0)
        network = Network(line_deployment(), sim)
        all_approaches()["fsf"].populate(network)
        network.attach_all_sensors()
        network.run_to_quiescence()
        sub = IdentifiedSubscription.from_ranges(
            "q", {"a": ("t", 0.0, 10.0), "b": ("t", 0.0, 10.0)}, delta_t=5.0
        )
        network.register_subscription("u2", sub)
        network.run_to_quiescence()
        placed = network.meter.snapshot().subscription_units
        assert placed > 0
        network.cancel_subscription("u2", "q")
        network.run_to_quiescence()
        total = network.meter.snapshot().subscription_units
        assert total == 2 * placed  # same links, one unit each, back out
        assert_no_trace(network, "q")

    def test_cancel_unknown_subscription(self, line):
        network = Network(line_deployment(), Simulator(seed=0))
        all_approaches()["fsf"].populate(network)
        network.attach_all_sensors()
        network.run_to_quiescence()
        assert network.cancel_subscription("u2", "ghost") is False


# ---------------------------------------------------------------------------
# settled cancellation == never subscribed (100 seeded scenarios)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("chunk", range(10))
def test_settled_cancel_equals_never_subscribed(chunk):
    """submit → cancel → replay, bit-identical to never-subscribed.

    Approaches round-robin over the seeds (all five covered each chunk),
    all three matching modes every seed; compared: replay traffic,
    survivor deliveries and complex counts, per-node stored operators +
    coverage flags, registered matcher sets, and the cancelled queries'
    zero deliveries + zero footprint.
    """
    for seed in range(chunk * 10, chunk * 10 + 10):
        cancel_ids = {f"q{i:05d}" for i in ((seed % 3), 3 + (seed % 4), 7)}
        approach = APPROACH_KEYS[seed % len(APPROACH_KEYS)]
        for matching in ("incremental", "columnar", "reference"):
            run = run_arena(seed, approach, matching, cancel_ids, True)
            base = run_arena(seed, approach, matching, cancel_ids, False)
            context = (seed, approach, matching)
            assert run["replay_traffic"] == base["replay_traffic"], context
            survivors = {k for k in base["delivered"] if k not in cancel_ids}
            for sub_id in survivors:
                assert run["delivered"].get(sub_id, set()) == base[
                    "delivered"
                ].get(sub_id, set()), (context, sub_id)
            assert {
                k: v for k, v in run["complex"].items() if k not in cancel_ids
            } == base["complex"], context
            assert_equivalent_stores(run["network"], base["network"], context)
            assert matcher_state(run["network"]) == matcher_state(
                base["network"]
            ), context
            for sub_id in cancel_ids:
                assert not run["delivered"].get(sub_id), (context, sub_id)
                assert_no_trace(run["network"], sub_id)


# ---------------------------------------------------------------------------
# mid-flood cancellation is safe
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("chunk", range(5))
def test_mid_flood_cancel_is_safe(chunk):
    """Cancel while the operator flood is still in flight.

    The unsubscribe chases the operator messages one hop behind; once
    everything quiesces the cancelled query has zero footprint and zero
    deliveries.  For the pairwise approaches a survivor never loses a
    delivery relative to never-subscribed (coverage falls back to a
    covering superset, which pulls at least the same events); FSF's
    union coverage may re-roll its documented recall gap either way.
    """
    for seed in range(chunk * 10, chunk * 10 + 10):
        cancel_ids = {f"q{i:05d}" for i in (seed % 4, 4 + seed % 4)}
        approach = APPROACH_KEYS[seed % len(APPROACH_KEYS)]
        run = run_arena(seed, approach, "incremental", cancel_ids, True, mid_flood=True)
        base = run_arena(seed, approach, "incremental", cancel_ids, False)
        columnar = run_arena(seed, approach, "columnar", cancel_ids, True, mid_flood=True)
        reference = run_arena(seed, approach, "reference", cancel_ids, True, mid_flood=True)
        context = (seed, approach)
        # All three matching modes agree message-for-message even mid-flood.
        assert run["replay_traffic"] == reference["replay_traffic"], context
        assert run["delivered"] == reference["delivered"], context
        assert columnar["replay_traffic"] == reference["replay_traffic"], context
        assert columnar["delivered"] == reference["delivered"], context
        for sub_id in cancel_ids:
            assert not run["delivered"].get(sub_id), (context, sub_id)
            assert_no_trace(run["network"], sub_id)
        if approach != "fsf":
            survivors = {k for k in base["delivered"] if k not in cancel_ids}
            for sub_id in survivors:
                lost = base["delivered"].get(sub_id, set()) - run[
                    "delivered"
                ].get(sub_id, set())
                assert not lost, (context, sub_id)


def test_probabilistic_fsf_cancel_footprint():
    """The safety guarantees hold for the probabilistic filter too."""
    for seed in (1, 4, 9):
        cancel_ids = {"q00002", "q00005"}
        run = run_arena(
            seed, "fsf", "incremental", cancel_ids, True, fsf_config=None
        )
        for sub_id in cancel_ids:
            assert not run["delivered"].get(sub_id)
            assert_no_trace(run["network"], sub_id)


# ---------------------------------------------------------------------------
# post-cancel silence (property)
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    value_a=st.floats(0.0, 10.0),
    value_b=st.floats(0.0, 10.0),
    gap=st.floats(0.0, 4.0),
    approach=st.sampled_from(APPROACH_KEYS),
)
def test_post_cancel_publications_never_deliver(value_a, value_b, gap, approach):
    """Whatever correlates after the cancel settles, the user is gone."""
    network = Network(line_deployment(), Simulator(seed=0))
    all_approaches(EXACT_FSF)[approach].populate(network)
    network.attach_all_sensors()
    network.run_to_quiescence()
    sub = IdentifiedSubscription.from_ranges(
        "q", {"a": ("t", 0.0, 10.0), "b": ("t", 0.0, 10.0)}, delta_t=5.0
    )
    network.register_subscription("u2", sub)
    network.run_to_quiescence()
    network.cancel_subscription("u2", "q")
    network.run_to_quiescence()
    deployment = network.deployment
    t0 = network.sim.now + 10.0
    for sensor_id, value, offset in (("a", value_a, 0.0), ("b", value_b, gap)):
        placement = next(
            s for s in deployment.sensors if s.sensor_id == sensor_id
        )
        from repro.model import SimpleEvent

        event = SimpleEvent(
            sensor_id, "t", placement.location, value, t0 + offset, seq=0
        )
        network.sim.at(
            event.timestamp,
            lambda e=event, p=placement: network.publish(p.node_id, e),
        )
    network.run_to_quiescence()
    assert not network.delivery.delivered("q")
    assert network.delivery.complex_deliveries["q"] == 0


# ---------------------------------------------------------------------------
# oracle fencing
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("method", ["engine", "columnar", "reference"])
def test_oracle_fences_cancelled_subscriptions(method):
    """Truth with a cancellation == truth over the pre-cancel events,
    in both truth passes — exactly the departed-sensor fence contract."""
    for seed in (0, 5, 11):
        deployment, replay, workload = arena(seed)
        shifted = replay.shifted(REPLAY_START)
        subs = [p.subscription for p in workload]
        cutoff = shifted[len(shifted) // 2].timestamp
        cancelled = {subs[0].sub_id: cutoff, subs[3].sub_id: cutoff}
        fenced = compute_truth(
            subs, deployment, shifted, method=method, cancellations=cancelled
        )
        plain = compute_truth(subs, deployment, shifted, method=method)
        truncated = compute_truth(
            subs,
            deployment,
            [e for e in shifted if e.timestamp <= cutoff],
            method=method,
        )
        for sub in subs:
            if sub.sub_id in cancelled:
                assert fenced[sub.sub_id].triggers == truncated[sub.sub_id].triggers
                assert (
                    fenced[sub.sub_id].participants
                    == truncated[sub.sub_id].participants
                )
                # Fencing only removes truth.
                assert fenced[sub.sub_id].triggers <= plain[sub.sub_id].triggers
            else:
                assert fenced[sub.sub_id].triggers == plain[sub.sub_id].triggers


def test_oracle_engine_equals_reference_with_cancellations():
    for seed in (2, 7):
        deployment, replay, workload = arena(seed)
        shifted = replay.shifted(REPLAY_START)
        subs = [p.subscription for p in workload]
        cutoff = shifted[len(shifted) // 3].timestamp
        cancelled = {subs[1].sub_id: cutoff, subs[6].sub_id: cutoff}
        reference = compute_truth(
            subs, deployment, shifted, method="reference", cancellations=cancelled
        )
        for method in ("engine", "columnar"):
            truth = compute_truth(
                subs, deployment, shifted, method=method, cancellations=cancelled
            )
            for sub_id in truth:
                assert truth[sub_id].triggers == reference[sub_id].triggers, (
                    method,
                    sub_id,
                )
                assert (
                    truth[sub_id].participants == reference[sub_id].participants
                ), (method, sub_id)
