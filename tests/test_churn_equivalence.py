"""Machine-checked equivalence of the whole system under churn.

The dynamic workload (multi-day drifting replay + scheduled sensor
leave/rejoin) exercises paths the static replay never touches:
advertisement retraction floods, re-floods, store fences and the
churn-aware oracle.  This suite drives 150+ seeded dynamic scenarios
through

* both node-level matchers — ``Network(matching="incremental")`` vs
  ``Network(matching="reference")`` must produce identical deliveries
  and identical traffic, message for message;
* both oracle passes — ``compute_truth(method="engine")`` vs
  ``method="reference"`` must produce identical triggers and
  participants with a churn schedule fencing departed sensors;

plus hypothesis properties pinning the fence semantics itself: a
sensor's events never take part in a match computed after its scheduled
departure, and fencing only ever *removes* truth (churn-aware triggers
are a subset of the churn-blind ones over the same event set).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.runner import REPLAY_START, shifted_churn
from repro.matching.engine import MatchingEngine
from repro.metrics.oracle import compute_truth, oracle_operator
from repro.network.eventstore import EventStore
from repro.network.network import Network
from repro.network.topology import build_deployment
from repro.protocols.registry import all_approaches
from repro.sim import Simulator
from repro.workload.sensorscope import (
    ChurnConfig,
    DynamicReplayConfig,
    build_dynamic_replay,
)
from repro.workload.subscriptions import (
    SubscriptionWorkloadConfig,
    generate_subscriptions,
)

# Round-robin over the distributed approaches so the 150-scenario sweep
# covers every protocol's event path, not just one.
_APPROACH_KEYS = ("fsf", "naive", "multijoin", "operator_placement")


def churn_arena(seed: int):
    """One seeded dynamic scenario: tiny deployment, 2 drifting days,
    40% of sensors cycling, a handful of subscriptions."""
    deployment = build_deployment(14, 2, seed=seed)
    replay = build_dynamic_replay(
        deployment,
        DynamicReplayConfig(
            days=2,
            rounds_per_day=6,
            day_seconds=100.0,
            drift_per_day=2.0,
            jitter=1.5,
            seed=seed * 7 + 1,
        ),
        ChurnConfig(cycle_fraction=0.4, seed=seed * 13 + 2),
    )
    workload = generate_subscriptions(
        deployment,
        replay.medians,
        SubscriptionWorkloadConfig(
            n_subscriptions=5, attrs_min=2, attrs_max=4, seed=seed
        ),
        spreads=replay.spreads,
    )
    return deployment, replay, workload


def run_churn_network(deployment, replay, workload, matching, approach_key):
    """One live run; returns everything observable about its outcome."""
    sim = Simulator(seed=deployment.seed)
    network = Network(deployment, sim, matching=matching)
    all_approaches()[approach_key].populate(network)
    network.attach_all_sensors()
    network.run_to_quiescence()
    for placed in workload:
        network.register_subscription(placed.node_id, placed.subscription)
        network.run_to_quiescence()
    shifted = replay.shifted(REPLAY_START)
    node_of = {s.sensor_id: s.node_id for s in deployment.sensors}
    sim.schedule_timeline(
        (e.timestamp, lambda e=e: network.publish(node_of[e.sensor_id], e))
        for e in shifted
    )
    churn = shifted_churn(replay)
    if churn is not None:
        network.schedule_churn(churn)
    network.run_to_quiescence()
    delivered = {
        sub_id: set(network.delivery.delivered(sub_id))
        for sub_id in network.delivery.subscriptions()
    }
    return (
        delivered,
        dict(network.delivery.complex_deliveries),
        network.meter.snapshot(),
        sorted(network.dropped_subscriptions),
    )


# 150 seeds, chunked so a failure names a reproducible seed range (the
# convention of the matcher and oracle equivalence suites).
@pytest.mark.parametrize("chunk", range(15))
def test_engine_equals_reference_under_churn(chunk):
    """Three-way node matcher equivalence: the incremental engine, the
    columnar shared-lane engine and the reference window scan must
    produce identical deliveries and identical traffic, message for
    message, under churn (fences, retraction floods, re-floods)."""
    instances = 0
    for seed in range(chunk * 10, chunk * 10 + 10):
        deployment, replay, workload = churn_arena(seed)
        assert replay.churn.cycling_sensors, seed  # churn actually on
        approach_key = _APPROACH_KEYS[seed % len(_APPROACH_KEYS)]
        engine = run_churn_network(
            deployment, replay, workload, "incremental", approach_key
        )
        columnar = run_churn_network(
            deployment, replay, workload, "columnar", approach_key
        )
        reference = run_churn_network(
            deployment, replay, workload, "reference", approach_key
        )
        assert engine == reference, (seed, approach_key)
        assert columnar == reference, (seed, approach_key)
        instances += sum(len(keys) for keys in engine[0].values())
    # An all-empty chunk would mean the scenarios stopped testing
    # anything — the generators are tuned so deliveries genuinely occur.
    assert instances > 0


@pytest.mark.parametrize("chunk", range(15))
def test_oracle_engine_equals_reference_under_churn(chunk):
    """Offline truth equivalence with the churn fence applied."""
    triggers = 0
    for seed in range(chunk * 10, chunk * 10 + 10):
        deployment, replay, workload = churn_arena(seed)
        subs = [p.subscription for p in workload]
        shifted = replay.shifted(REPLAY_START)
        churn = shifted_churn(replay)
        assert churn is not None, seed
        engine = compute_truth(
            subs, deployment, shifted, method="engine", churn=churn
        )
        reference = compute_truth(
            subs, deployment, shifted, method="reference", churn=churn
        )
        assert set(engine) == set(reference)
        for sub_id in engine:
            assert engine[sub_id].triggers == reference[sub_id].triggers, (
                seed,
                sub_id,
            )
            assert (
                engine[sub_id].participants == reference[sub_id].participants
            ), (seed, sub_id)
        triggers += sum(t.n_instances for t in engine.values())
    assert triggers > 0


# ---------------------------------------------------------------------------
# fence-semantics properties
# ---------------------------------------------------------------------------
_property_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=st.integers(min_value=0, max_value=100_000))
@_property_settings
def test_departed_sensor_events_never_match_after_departure(seed):
    """Store-level fence property, both matchers at once.

    Replaying the campaign through one shared :class:`EventStore`
    (fences applied exactly at the scheduled departures, as the
    retraction flood does online), no ``matches_involving`` answer —
    incremental or reference — may contain a participant whose sensor
    departed at or before the query, with a timestamp from before that
    departure.
    """
    deployment, replay, workload = churn_arena(seed)
    operators = [
        oracle_operator(p.subscription, deployment) for p in workload
    ]
    store = EventStore(validity=1e9)
    engine = MatchingEngine(store)
    matchers = [engine.matcher(op) for op in operators]
    departures = replay.churn.departures()
    next_dep = 0
    fenced: dict[str, float] = {}
    checked = 0
    for event in replay.events:
        while next_dep < len(departures) and (
            departures[next_dep][0] <= event.timestamp
        ):
            when, sensor_id = departures[next_dep]
            fenced[sensor_id] = when
            store.fence_sensor(sensor_id, when)
            next_dep += 1
        if not store.add(event, now=event.timestamp):
            continue
        for operator, matcher in zip(operators, matchers):
            participants = matcher.matches_involving(event)
            for members in participants.values():
                for member in members:
                    fence = fenced.get(member.sensor_id)
                    assert fence is None or member.timestamp > fence, (
                        seed,
                        member,
                        fence,
                    )
                    checked += 1
    # At least some scenarios must produce matches, or the property is
    # vacuous across the whole hypothesis run — assert per-arena events
    # flowed (matches may legitimately be absent for an individual seed).
    assert replay.n_events > 0


@given(seed=st.integers(min_value=0, max_value=100_000))
@_property_settings
def test_churn_truth_is_subset_of_churn_blind_truth(seed):
    """Fencing only removes instances: over the *same* event set, every
    churn-aware trigger (and participant) is also credited by the
    churn-blind oracle."""
    deployment, replay, workload = churn_arena(seed)
    subs = [p.subscription for p in workload]
    shifted = replay.shifted(REPLAY_START)
    churn = shifted_churn(replay)
    with_fence = compute_truth(
        subs, deployment, shifted, method="engine", churn=churn
    )
    without_fence = compute_truth(
        subs, deployment, shifted, method="engine", churn=None
    )
    for sub_id, truth in with_fence.items():
        assert truth.triggers <= without_fence[sub_id].triggers, sub_id
        assert truth.participants <= without_fence[sub_id].participants, sub_id


def test_fence_rejects_stragglers_and_unfence_readmits():
    """Unit pin of the store fence: pre-departure history is dropped and
    cannot re-enter; post-rejoin events flow again after unfencing."""
    from repro.model.events import SimpleEvent
    from repro.model.locations import Location

    store = EventStore(validity=1e9)
    loc = Location(0.0, 0.0)
    early = SimpleEvent("d", "t", loc, 1.0, 10.0, seq=0)
    assert store.add(early, now=10.0)
    removed = store.fence_sensor("d", now=20.0)
    assert removed == [early.key]
    assert store.events_for_sensor("d", float("-inf"), float("inf")) == ()
    # A forwarded copy of pre-departure history bounces off the fence.
    assert not store.add(early, now=21.0)
    straggler = SimpleEvent("d", "t", loc, 1.0, 19.0, seq=1)
    assert not store.add(straggler, now=21.0)
    # After the re-join advertisement lifts the fence, new readings flow.
    store.unfence_sensor("d")
    fresh = SimpleEvent("d", "t", loc, 1.0, 30.0, seq=2)
    assert store.add(fresh, now=30.0)
    assert list(store.events_for_sensor("d", 0.0, 100.0)) == [fresh]
