"""Slot-sharing properties of the columnar matching engine.

The columnar engine collapses near-duplicate operators onto shared
refcounted structures: one :class:`~repro.matching.batch.SharedTimeline`
per ``(attribute, sensor set)`` group, one refcounted
:class:`~repro.matching.batch.Lane` per distinct filter interval.  None
of that sharing may ever be *observable* — these hypothesis properties
pin it:

* a shared engine holding a whole family of near-duplicate operators
  answers every probe exactly like isolated single-operator engines fed
  the same event stream (sharing ≡ no sharing);
* randomly ordered cancel/retire sequences (including double
  registrations held by the retain/release refcount) never disturb the
  survivors' answers, and releasing the last sharer really tears the
  shared state down;
* ``drop_sensor`` churn fences *every* sharer of the dropped sensor's
  timelines at once — no matcher, however it shares lanes, ever reports
  a fenced member.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.matching.columnar import ColumnarEngine
from repro.matching.engine import MatchingEngine
from repro.model import (
    Interval,
    Location,
    SimpleEvent,
    matches_involving as reference_matches_involving,
)
from repro.model.operators import CorrelationOperator, Slot
from repro.network.eventstore import EventStore

from test_matching_engine import random_events, random_operator

_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def variant_family(rng, base: CorrelationOperator, n: int):
    """``n`` near-duplicates of ``base`` exercising every sharing tier.

    Each variant keeps the base's ``(attribute, sensors)`` slot groups
    (same SharedTimelines) and is one of: an exact clone (every lane
    shared, refcount > 1), an interval jitter (same timeline, private
    lanes), or a ``delta_t`` jitter (same lanes, different window).
    """
    family = []
    for i in range(n):
        kind = int(rng.integers(0, 3))
        slots = []
        for slot in base.slots:
            interval = slot.interval
            if kind == 1:
                interval = type(interval)(
                    interval.lo + float(rng.integers(-2, 3)) * 0.5,
                    interval.hi + float(rng.integers(-2, 3)) * 0.5,
                )
                if interval.hi < interval.lo:
                    interval = type(interval)(interval.hi, interval.lo)
            slots.append(
                Slot(slot.slot_id, slot.attribute, interval, slot.sensors)
            )
        delta_t = base.delta_t
        if kind == 2:
            delta_t = base.delta_t + float(rng.integers(0, 4)) * 0.5
        family.append(
            CorrelationOperator(
                f"q{i}", "user", tuple(slots), delta_t, base.delta_l
            )
        )
    return family


def canonical(answer) -> dict[str, list]:
    """A ``matches_involving`` result reduced to comparable event keys."""
    return {
        slot_id: sorted(e.key for e in members)
        for slot_id, members in answer.items()
    }


def solo_arenas(family):
    """One isolated (store, engine, matcher) per operator — the
    no-sharing baseline every shared answer is compared against."""
    arenas = []
    for op in family:
        store = EventStore(validity=1e9)
        engine = ColumnarEngine(store)
        arenas.append((store, engine, engine.matcher(op)))
    return arenas


@given(seed=st.integers(min_value=0, max_value=100_000))
@_settings
def test_shared_timelines_equal_unshared(seed):
    """Sharing ≡ no sharing, probe for probe.

    One engine holds the whole near-duplicate family (lanes shared,
    refcounts > 1); each family member also runs alone in a private
    engine.  Every arrival must produce identical per-operator answers
    through both ``matches_involving`` and the bulk ``iter_matched``
    path the node uses."""
    rng = np.random.default_rng(seed)
    base = random_operator(rng)
    family = variant_family(rng, base, int(rng.integers(2, 6)))
    events = random_events(rng, base, n=int(rng.integers(25, 45)))

    shared_store = EventStore(validity=1e9)
    shared = ColumnarEngine(shared_store)
    op_of = {id(shared.matcher(op)): op for op in family}
    solos = solo_arenas(family)

    matched_any = 0
    for event in events:
        added = shared_store.add(event, now=event.timestamp)
        for store, _engine, _matcher in solos:
            assert store.add(event, now=event.timestamp) == added
        if not added:
            continue
        bulk = {
            op_of[id(matcher)].subscription_id: sorted(
                {m.key for m in members}
            )
            for matcher, members in shared.iter_matched(event)
        }
        for op, (_store, _engine, solo_matcher) in zip(family, solos):
            shared_answer = canonical(
                shared.matches_involving(op, event)
            )
            solo_answer = canonical(solo_matcher.matches_involving(event))
            assert shared_answer == solo_answer, (seed, op.subscription_id)
            if solo_answer:
                matched_any += 1
                # The bulk path reports exactly the matching operators,
                # with the union of the per-slot member lists.
                assert bulk.get(op.subscription_id) == sorted(
                    {k for keys in solo_answer.values() for k in keys}
                ), (seed, op.subscription_id)
            else:
                assert op.subscription_id not in bulk, (
                    seed,
                    op.subscription_id,
                )
    assert len(events) > 0


@given(seed=st.integers(min_value=0, max_value=100_000))
@_settings
def test_random_cancel_orders_never_disturb_survivors(seed):
    """Seeded random cancel/retire order over the shared family.

    Some operators are registered twice (retain/release refcount > 1);
    releases interleave with the event stream in a random order.  After
    every release the survivors must keep answering exactly like their
    isolated baselines, and draining every registration must tear the
    shared state down to nothing."""
    rng = np.random.default_rng(seed)
    base = random_operator(rng)
    family = variant_family(rng, base, int(rng.integers(3, 6)))
    events = random_events(rng, base, n=int(rng.integers(25, 40)))

    shared_store = EventStore(validity=1e9)
    shared = ColumnarEngine(shared_store)
    registrations = []  # one entry per retained reference
    for op in family:
        shared.matcher(op)
        registrations.append(op)
        if rng.random() < 0.4:  # a second sharer of the same operator
            shared.retain(op)
            registrations.append(op)
    solos = solo_arenas(family)

    order = list(rng.permutation(len(registrations)))
    release_at = {}  # event step -> registration indices released there
    for idx in order:
        release_at.setdefault(int(rng.integers(0, len(events))), []).append(idx)

    live = {op.subscription_id for op in family}
    refs = {}
    for op in registrations:
        refs[op.subscription_id] = refs.get(op.subscription_id, 0) + 1

    for step, event in enumerate(events):
        for idx in release_at.get(step, ()):
            op = registrations[idx]
            shared.release(op)
            refs[op.subscription_id] -= 1
            if refs[op.subscription_id] == 0:
                live.discard(op.subscription_id)
        added = shared_store.add(event, now=event.timestamp)
        for store, _engine, _matcher in solos:
            assert store.add(event, now=event.timestamp) == added
        if not added:
            continue
        for op, (_store, _engine, solo_matcher) in zip(family, solos):
            if op.subscription_id not in live:
                continue
            assert canonical(
                shared.matches_involving(op, event)
            ) == canonical(solo_matcher.matches_involving(event)), (
                seed,
                op.subscription_id,
                step,
            )
    # Drain the remaining registrations: the shared structures vanish.
    for idx in order:
        op = registrations[idx]
        if refs[op.subscription_id] > 0:
            shared.release(op)
            refs[op.subscription_id] -= 1
    assert shared.n_matchers == 0
    assert not shared._groups
    assert not any(shared._groups_by_sensor.values())


@given(seed=st.integers(min_value=0, max_value=100_000))
@_settings
def test_drop_sensor_fences_all_sharers(seed):
    """One ``fence_sensor`` call fences every operator sharing the
    sensor's timelines: answers stay identical to isolated engines
    fenced the same way, and no answer ever contains a member from the
    dropped sensor at or before the fence."""
    rng = np.random.default_rng(seed)
    base = random_operator(rng)
    family = variant_family(rng, base, int(rng.integers(2, 6)))
    events = random_events(rng, base, n=int(rng.integers(25, 45)))

    shared_store = EventStore(validity=1e9)
    shared = ColumnarEngine(shared_store)
    matchers = [shared.matcher(op) for op in family]
    solos = solo_arenas(family)

    sensors = sorted({s for slot in base.slots for s in slot.sensors})
    fenced_sensor = sensors[int(rng.integers(0, len(sensors)))]
    fence_step = int(rng.integers(5, len(events)))
    fence_time = None

    for step, event in enumerate(events):
        if step == fence_step:
            fence_time = max(e.timestamp for e in events[:step]) if step else 0.0
            shared_store.fence_sensor(fenced_sensor, fence_time)
            for store, _engine, _matcher in solos:
                store.fence_sensor(fenced_sensor, fence_time)
        added = shared_store.add(event, now=event.timestamp)
        for store, _engine, _matcher in solos:
            assert store.add(event, now=event.timestamp) == added
        if not added:
            continue
        for op, matcher, (_store, _engine, solo_matcher) in zip(
            family, matchers, solos
        ):
            answer = canonical(shared.matches_involving(op, event))
            assert answer == canonical(
                solo_matcher.matches_involving(event)
            ), (seed, op.subscription_id, step)
            if fence_time is None:
                continue
            for members in matcher.matches_involving(event).values():
                for member in members:
                    assert not (
                        member.sensor_id == fenced_sensor
                        and member.timestamp <= fence_time
                    ), (seed, op.subscription_id, member)
    assert math.isfinite(events[-1].timestamp)


@given(seed=st.integers(min_value=0, max_value=100_000))
@_settings
def test_mixed_dtype_subround_timestamps_three_way(seed):
    """Dtype-pin regression: jittered sub-round timestamps built from
    ``int`` / numpy-scalar constructors answer identically three ways.

    Replay rounds produce integer round boundaries, fault jitter
    produces ``np.float64`` offsets a fraction of a round wide; the
    ``SimpleEvent`` float pin guarantees the columnar engine's float64
    timestamp columns, the incremental engine's bisect tuples and the
    reference scan all see the same IEEE-754 value.  Without the pin, a
    stray int timestamp compares differently through tuple ordering
    than through ``searchsorted``, and the three answers drift at exact
    window edges."""
    rng = np.random.default_rng(seed)
    operator = CorrelationOperator(
        "q",
        "user",
        [
            Slot("a", "t", Interval(0, 10), frozenset({"a"})),
            Slot("b", "t", Interval(0, 10), frozenset({"b", "b2"})),
        ],
        delta_t=3.0,
    )
    loc = Location(0.0, 0.0)
    raw_kinds = (int, float, np.int64, np.float64)
    events = []
    for i in range(40):
        round_no = int(rng.integers(0, 12))
        if rng.random() < 0.5:
            ts = raw_kinds[int(rng.integers(0, 2))](round_no)  # on-round
        else:  # sub-round jitter, sometimes a numpy scalar
            jitter = float(rng.integers(1, 8)) / 8.0
            kind = raw_kinds[2 + int(rng.integers(0, 2))]
            ts = np.float64(round_no) + np.float64(jitter)
            ts = kind(ts) if kind is np.float64 else np.float64(ts)
        sensor = ("a", "b", "b2")[int(rng.integers(0, 3))]
        value = float(rng.integers(-2, 13))
        events.append(SimpleEvent(sensor, "t", loc, value, ts, i))

    inc_store = EventStore(validity=1e9)
    col_store = EventStore(validity=1e9)
    incremental = MatchingEngine(inc_store)
    columnar = ColumnarEngine(col_store)
    incremental.register(operator)
    col_matcher = columnar.matcher(operator)
    compared = 0
    for event in events:
        assert type(event.timestamp) is float
        added = inc_store.add(event, now=event.timestamp)
        assert col_store.add(event, now=event.timestamp) == added
        if not added:
            continue
        want = canonical(reference_matches_involving(operator, inc_store, event))
        assert canonical(incremental.matches_involving(operator, event)) == want
        assert canonical(col_matcher.matches_involving(event)) == want
        compared += 1
    assert compared > 0
