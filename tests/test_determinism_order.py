"""Regression tests for the hash-order hazards the linter uncovered.

These lock in the ``sorted(...)`` bookkeeping fixes: per-sensor index
insertion order must be the lexicographic sensor order, never the
``PYTHONHASHSEED``-dependent iteration order of a ``frozenset``.  Each
test builds an operator whose sensor ids are deliberately chosen so
that set-iteration order and sorted order disagree under typical hash
seeds, then asserts the index keys (and bucket contents after partial
removal) are in sorted order.
"""

from __future__ import annotations

from repro.core import filter_split_forward_approach
from repro.matching import MatchingEngine
from repro.model import IdentifiedSubscription, Interval
from repro.model.operators import CorrelationOperator, Slot
from repro.network.eventstore import EventStore
from repro.network.node import SubscriptionStore

from deployments import line_deployment, make_network

SENSOR_IDS = ("d9_z", "d0_a", "d5_m", "d2_k", "d7_b", "d1_q", "d4_x")


def abstract_operator(sub_id: str = "q") -> CorrelationOperator:
    """One abstract slot fillable by many sensors + one identified slot."""
    wide = Slot("attr0", "attr0", Interval(0.0, 10.0), frozenset(SENSOR_IDS))
    single = Slot("d3_s", "t", Interval(0.0, 10.0), frozenset({"d3_s"}))
    return CorrelationOperator(sub_id, "user", [wide, single], 5.0, float("inf"))


def test_subscription_store_by_sensor_is_sorted():
    store = SubscriptionStore()
    store.add(abstract_operator(), covered=False)
    keys = list(store._by_sensor)
    assert keys == sorted(keys)
    assert set(keys) == set(SENSOR_IDS) | {"d3_s"}


def test_subscription_store_removal_keeps_sorted_buckets():
    store = SubscriptionStore()
    store.add(abstract_operator("qa"), covered=False)
    store.add(abstract_operator("qb"), covered=True)
    store.remove_subscription("qa")
    keys = list(store._by_sensor)
    assert keys == sorted(keys)
    assert all(
        r.operator.subscription_id == "qb"
        for bucket in store._by_sensor.values()
        for r in bucket
    )
    store.remove_subscription("qb")
    assert store._by_sensor == {}


#: Registration walks slots in declaration order and each slot's sensor
#: frozenset in sorted order, so the index key order is fully determined
#: by the operator — never by PYTHONHASHSEED.
EXPECTED_INDEX_ORDER = sorted(SENSOR_IDS) + ["d3_s"]


def test_matching_engine_ingest_index_is_sorted():
    engine = MatchingEngine(EventStore(validity=100.0))
    engine.retain(abstract_operator())
    assert list(engine._ingest_index) == EXPECTED_INDEX_ORDER


def test_matching_engine_release_drains_index():
    engine = MatchingEngine(EventStore(validity=100.0))
    operator = abstract_operator()
    engine.retain(operator)
    engine.release(operator)
    assert engine._ingest_index == {}


def test_operator_matcher_by_sensor_is_sorted():
    engine = MatchingEngine(EventStore(validity=100.0))
    matcher = engine.retain(abstract_operator())
    assert list(matcher._by_sensor) == EXPECTED_INDEX_ORDER


def test_node_local_by_sensor_is_sorted():
    net = make_network(line_deployment(), filter_split_forward_approach())
    subscription = IdentifiedSubscription.from_ranges(
        "s",
        {k: ("t", 0.0, 10.0) for k in ("c", "a", "b")},
        delta_t=5.0,
    )
    net.register_subscription("u2", subscription)
    net.run_to_quiescence()
    node = net.nodes["u2"]
    assert list(node._local_by_sensor) == ["a", "b", "c"]
    assert node.unsubscribe("s")
    net.run_to_quiescence()
    assert node._local_by_sensor == {}


def test_registration_order_is_hash_seed_independent():
    """The visible symptom the fixes remove: two stores built from the
    same operator expose identical index ordering — byte-identical
    bookkeeping regardless of how the frozenset happens to iterate."""
    first = SubscriptionStore()
    first.add(abstract_operator(), covered=False)
    second = SubscriptionStore()
    second.add(abstract_operator(), covered=False)
    assert list(first._by_sensor) == list(second._by_sensor)
