"""Tests for the per-node event store U (validity, ordering, dedup)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model import Location, SimpleEvent
from repro.network.eventstore import EventStore


def ev(sensor="d1", ts=0.0, seq=0, value=1.0):
    return SimpleEvent(sensor, "t", Location(0, 0), value, ts, seq)


class TestAdd:
    def test_add_and_contains(self):
        store = EventStore(validity=10.0)
        assert store.add(ev(seq=1), now=0.0)
        assert ("d1", 1) in store and len(store) == 1

    def test_duplicate_rejected(self):
        store = EventStore(validity=10.0)
        assert store.add(ev(seq=1), now=0.0)
        assert not store.add(ev(seq=1), now=0.0)
        assert len(store) == 1

    def test_expired_on_arrival_rejected(self):
        store = EventStore(validity=10.0)
        assert not store.add(ev(ts=0.0), now=20.0)

    def test_validity_positive(self):
        with pytest.raises(ValueError):
            EventStore(validity=0.0)

    def test_latest_timestamp(self):
        store = EventStore(validity=100.0)
        store.add(ev(ts=5.0, seq=0), now=5.0)
        store.add(ev(ts=3.0, seq=1), now=5.0)
        assert store.latest_timestamp == 5.0


class TestWindowQueries:
    def test_half_open_window(self):
        store = EventStore(validity=100.0)
        for i, ts in enumerate([1.0, 2.0, 3.0, 4.0]):
            store.add(ev(ts=ts, seq=i), now=ts)
        hits = store.events_for_sensor("d1", after=1.0, until=3.0)
        assert [e.timestamp for e in hits] == [2.0, 3.0]

    def test_unknown_sensor_empty(self):
        store = EventStore(validity=10.0)
        assert store.events_for_sensor("zzz", 0.0, 100.0) == ()

    def test_per_sensor_isolation(self):
        store = EventStore(validity=100.0)
        store.add(ev("a", ts=1.0), now=1.0)
        store.add(ev("b", ts=2.0), now=2.0)
        assert [e.sensor_id for e in store.events_for_sensor("a", 0, 10)] == ["a"]


class TestPruning:
    def test_prune_removes_expired(self):
        store = EventStore(validity=5.0)
        store.add(ev(ts=0.0, seq=0), now=0.0)
        store.add(ev("d2", ts=8.0, seq=1), now=8.0)
        removed = store.prune(now=10.0)
        assert removed == [("d1", 0)]
        assert len(store) == 1

    def test_insert_prunes_lazily(self):
        store = EventStore(validity=5.0)
        store.add(ev(ts=0.0, seq=0), now=0.0)
        store.add(ev(ts=100.0, seq=1), now=100.0)
        assert ("d1", 0) not in store

    def test_prune_empty_store(self):
        store = EventStore(validity=5.0)
        assert store.prune(now=100.0) == []


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b"]), st.floats(0, 50, allow_nan=False)),
        max_size=20,
    )
)
def test_window_query_matches_bruteforce(raw):
    store = EventStore(validity=1000.0)
    events = []
    for i, (sensor, ts) in enumerate(raw):
        e = ev(sensor, ts=ts, seq=i)
        events.append(e)
        store.add(e, now=ts)
    for after, until in [(0.0, 25.0), (10.0, 10.0), (-5.0, 60.0)]:
        got = {e.key for e in store.events_for_sensor("a", after, until)}
        want = {
            e.key
            for e in events
            if e.sensor_id == "a" and after < e.timestamp <= until
        }
        assert got == want


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=30))
def test_store_never_holds_expired_events_after_prune(stamps):
    store = EventStore(validity=10.0)
    now = 0.0
    for i, ts in enumerate(sorted(stamps)):
        now = max(now, ts)
        store.add(ev(ts=ts, seq=i), now=now)
    store.prune(now)
    for event in store.all_events():
        assert now - event.timestamp <= 10.0
