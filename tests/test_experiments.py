"""Tests for the experiment harness: runner, figures, tables, CLI."""

import pytest

from repro.experiments import figures
from repro.experiments.cli import main as cli_main
from repro.experiments.runner import REPLAY_START, run_series
from repro.experiments.tables import (
    fig3_deployment,
    render_table_2,
    render_table_i,
    run_fig3_walkthrough,
    table_i_subscriptions,
)
from repro.protocols.registry import (
    all_approaches,
    distributed_approaches,
    table_ii,
)
from repro.workload.scenarios import SMALL, Scenario
from repro.network.topology import build_deployment


@pytest.fixture(scope="module")
def tiny_scenario():
    return Scenario(
        key="tiny",
        title="tiny",
        deployment_factory=lambda seed: build_deployment(24, 3, seed=seed),
        paper_subscription_counts=(60, 120),
        attrs_min=3,
        attrs_max=5,
    )


class TestRunner:
    def test_series_shape(self, tiny_scenario):
        series = run_series(tiny_scenario, distributed_approaches(), scale=0.1)
        assert series.counts == [6, 12]
        for key, runs in series.results.items():
            assert [r.n_subscriptions for r in runs] == [6, 12]
            assert all(r.approach == key for r in runs)

    def test_loads_monotone_in_subscriptions(self, tiny_scenario):
        series = run_series(tiny_scenario, distributed_approaches(), scale=0.1)
        for key, runs in series.results.items():
            assert runs[0].subscription_load <= runs[1].subscription_load, key

    def test_recall_series_accessor(self, tiny_scenario):
        series = run_series(tiny_scenario, distributed_approaches(), scale=0.1)
        recalls = series.recall_series("fsf")
        assert len(recalls) == 2 and all(0.0 <= r <= 1.0 for r in recalls)


class TestTables:
    def test_table_i_text(self):
        text = render_table_i()
        assert "50 < a < 80" in text and "5 < c < 15" in text

    def test_table_i_subscriptions_structure(self):
        subs = table_i_subscriptions()
        assert [s.sub_id for s in subs] == ["s1", "s2", "s3"]
        assert subs[2].sensor_ids == {"a", "b", "c"}

    def test_table_ii_rows(self):
        rows = table_ii()
        assert len(rows) == 5
        names = [r[0] for r in rows]
        assert "Filter-Split-Forward" in names and "Centralized" in names
        fsf = next(r for r in rows if r[0] == "Filter-Split-Forward")
        assert fsf[1] == "Set filtering"
        assert fsf[2] == "Simple"
        assert fsf[3] == "Per neighbor"
        assert "Set filtering" in render_table_2()

    def test_fig3_deployment_is_paper_topology(self):
        dep = fig3_deployment()
        assert dep.n_nodes == 6
        assert sorted(s.sensor_id for s in dep.sensors) == ["a", "b", "c"]
        dep.validate()

    def test_fig3_walkthrough_filters_s3(self):
        w = run_fig3_walkthrough(exact_filtering=True)
        assert any("s3" in op for op in w.covered["n6"])
        assert w.subscription_units == 8


class TestCli:
    def test_table_targets(self, capsys):
        assert cli_main(["table1"]) == 0
        assert "Sensor a" in capsys.readouterr().out
        assert cli_main(["table2"]) == 0
        assert "Filter-Split-Forward" in capsys.readouterr().out

    def test_fig3_target(self, capsys):
        assert cli_main(["fig3"]) == 0
        assert "n6" in capsys.readouterr().out

    def test_output_file(self, tmp_path, capsys):
        out = tmp_path / "t.txt"
        assert cli_main(["table2", "--output", str(out)]) == 0
        assert "Set filtering" in out.read_text()

    def test_invalid_target_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["fig99"])

    def test_churn_figure_target(self, capsys):
        figures.clear_cache()
        try:
            assert cli_main(["fig13", "--scale", "0.05"]) == 0
            out = capsys.readouterr().out
            assert "Event load under churn" in out
            # The satellite contract: accounting includes re-flood traffic.
            assert "reflood units" in out
            assert cli_main(["fig14", "--scale", "0.05"]) == 0
            assert "recall" in capsys.readouterr().out
        finally:
            figures.clear_cache()

    def test_list_target(self, capsys):
        """--list enumerates families, figures and presets without
        running anything (the discoverability satellite)."""
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "Scenario families" in out
        for key in ("small", "medium", "large_network", "large_sources",
                    "churn", "admit_retire"):
            assert f"\n{key}: " in out or out.startswith(f"{key}: ")
        assert "fig15" in out and "fig16" in out
        assert "query lifecycle" in out
        assert "Scale presets" in out and "smoke" in out and "nightly" in out

    def test_no_target_rejected_without_list(self):
        with pytest.raises(SystemExit):
            cli_main([])

    def test_cli_choices_track_figure_registry(self, capsys, monkeypatch):
        """Registering a figure is sufficient to make it a CLI target.

        The choices list is derived from ``ALL_FIGURES`` at parse time,
        so the catalog can never drift ahead of the CLI again (fig21/22
        were the near-miss that motivated this).
        """
        stub = lambda scale=None: figures.FigureResult(  # noqa: E731
            "98", "stub", "x", (1,), {"fsf": (0.0,)}
        )
        monkeypatch.setitem(figures.ALL_FIGURES, "98", stub)
        assert cli_main(["fig98"]) == 0
        assert "Figure 98" in capsys.readouterr().out

    def test_admit_retire_figure_targets(self, capsys, monkeypatch):
        """fig15/fig16 render at smoke scale with teardown traffic
        reported separately from registration (one admit rate here;
        the full sweep runs in the admit-retire-smoke CI job)."""
        monkeypatch.setattr(figures, "ADMIT_RATE_AXIS", (0.05,))
        figures.clear_cache()
        try:
            assert cli_main(["fig15", "--scale", "0.05"]) == 0
            out = capsys.readouterr().out
            assert "Steady-state recall" in out
            assert "retired" in out
            assert cli_main(["fig16", "--scale", "0.05"]) == 0
            out = capsys.readouterr().out
            assert "Traffic split" in out
            assert "- teardown" in out and "- registration" in out
            assert "metered" in out
        finally:
            figures.clear_cache()


class TestFigureHarness:
    def test_all_figures_registered(self):
        assert sorted(figures.ALL_FIGURES, key=int) == [
            "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14",
            "15", "16", "17", "18", "19", "20", "21", "22",
        ]
        # The beyond-paper families are gated behind --churn/--beyond
        # (and --faults / --placement / --approx for just their pair)
        # for bulk targets.
        assert set(figures.CHURN_FIGURES) == {"13", "14"}
        assert set(figures.ADMIT_RETIRE_FIGURES) == {"15", "16"}
        assert set(figures.FAULTS_FIGURES) == {"17", "18"}
        assert set(figures.PLACEMENT_FIGURES) == {"19", "20"}
        assert set(figures.SKETCHES_FIGURES) == {"21", "22"}
        assert set(figures.BEYOND_PAPER_FIGURES) == {
            "13", "14", "15", "16", "17", "18", "19", "20", "21", "22",
        }
        # Every beyond-paper figure documents its CLI gate (--list).
        assert set(figures.FIGURE_GATES) == set(figures.BEYOND_PAPER_FIGURES)

    def test_catalog_covers_every_figure(self):
        """The anti-drift contract: every registered figure has a
        scenario blurb, and every beyond-paper figure names its gate
        flag — a figure can't be registered but undiscoverable."""
        assert set(figures.FIGURE_SCENARIOS) == set(figures.ALL_FIGURES)
        catalog = figures.render_catalog()
        for fig_id in figures.ALL_FIGURES:
            assert f"fig{fig_id}:" in catalog
        for fig_id, gate in figures.FIGURE_GATES.items():
            assert gate.startswith("--")

    def test_figure_result_render(self):
        result = figures.FigureResult(
            "99", "demo", "x", (1, 2), {"fsf": (1.0, 2.0)}, notes="n"
        )
        text = result.render()
        assert "Figure 99" in text and "Filter-Split-Forward" in text and "n" in text

    def test_scenario_series_cached(self, tiny_scenario, monkeypatch):
        figures.clear_cache()
        calls = []
        real = figures.run_series

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(figures, "run_series", spy)
        figures.scenario_series(tiny_scenario, scale=0.1)
        figures.scenario_series(tiny_scenario, scale=0.1)
        assert len(calls) == 1
        figures.clear_cache()
