"""Seeded transport fault injection — the :class:`FaultPlan` lane.

Four guarantee families:

* **plan semantics** — validation, truthiness, per-link lookup,
  hashability (plans ride inside scenario memo keys);
* **seeded determinism** — the same plan produces bit-identical series,
  a different fault seed genuinely changes the run;
* **null-fault bit-identity** — ``FaultPlan.none()`` is machine-checked
  identical to running with no plan at all, across all five approaches
  and both matching modes (the tentpole acceptance criterion);
* **crash/recover + livelock diagnosis** — broker outages lose volatile
  state and re-enter via the re-flood path; budget exhaustion names the
  pending loop and the busiest links.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from deployments import line_deployment

from repro.experiments.runner import run_program, run_series
from repro.metrics.oracle import compute_truth
from repro.network.faults import FaultPlan, LinkFault, OutageWindow
from repro.network.network import LivelockError, Network
from repro.network.reliability import ReliabilityConfig
from repro.network.topology import build_deployment
from repro.protocols.registry import all_approaches
from repro.sim import Simulator
from repro.workload.program import REPLAY_START, WorkloadProgram
from repro.workload.scenarios import Scenario
from repro.workload.sensorscope import (
    ChurnConfig,
    DynamicReplayConfig,
    ReplayConfig,
    build_replay,
)
from repro.workload.subscriptions import (
    SubscriptionWorkloadConfig,
    generate_subscriptions,
)


def tiny_faults_scenario(**overrides) -> Scenario:
    defaults = dict(
        key="tiny-faults",
        title="tiny faulty scenario",
        deployment_factory=lambda seed: build_deployment(24, 3, seed=seed),
        paper_subscription_counts=(60,),
        attrs_min=3,
        attrs_max=5,
        faults=FaultPlan(default=LinkFault(drop=0.1, jitter=0.02), seed=5),
        reliability=ReliabilityConfig(),
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestPlanSemantics:
    def test_link_fault_rejects_bad_values(self):
        with pytest.raises(ValueError, match="drop"):
            LinkFault(drop=-0.1)
        with pytest.raises(ValueError, match="drop"):
            LinkFault(drop=float("nan"))
        with pytest.raises(ValueError, match="probability"):
            LinkFault(drop=1.5)
        with pytest.raises(ValueError, match="jitter"):
            LinkFault(jitter=-1.0)

    def test_outage_window_rejects_bad_values(self):
        with pytest.raises(ValueError, match="domain"):
            OutageWindow(domain=(), start=0.0, end=1.0)
        with pytest.raises(ValueError, match="end after"):
            OutageWindow(domain=("hub",), start=5.0, end=5.0)
        with pytest.raises(ValueError, match="NaN"):
            OutageWindow(domain=("hub",), start=float("nan"), end=1.0)
        with pytest.raises(ValueError, match="before program t=0"):
            OutageWindow(domain=("hub",), start=-1.0, end=1.0)

    def test_truthiness(self):
        assert not FaultPlan.none()
        assert not FaultPlan(links=(("a", "b", LinkFault()),))
        assert FaultPlan(default=LinkFault(drop=0.1))
        assert FaultPlan(links=(("a", "b", LinkFault(delay=0.5)),))
        assert FaultPlan(outages=(OutageWindow(("hub",), 0.0, 1.0),))

    def test_per_link_lookup_falls_back_to_default(self):
        bad = LinkFault(drop=0.5)
        plan = FaultPlan(
            default=LinkFault(drop=0.01), links=(("u1", "hub", bad),)
        )
        assert plan.link_fault("u1", "hub") is bad
        # Directed: the reverse link keeps the default.
        assert plan.link_fault("hub", "u1") == LinkFault(drop=0.01)
        assert plan.link_faults() == {("u1", "hub"): bad}

    def test_plans_are_hashable_memo_keys(self):
        a = FaultPlan(default=LinkFault(drop=0.1), seed=97)
        b = FaultPlan(default=LinkFault(drop=0.1), seed=97)
        assert a == b and hash(a) == hash(b)
        assert {a: "x"}[b] == "x"
        assert hash(replace(a, seed=98)) != hash(a) or replace(a, seed=98) != a

    def test_validate_against_rejects_unknown_domain_nodes(self):
        deployment = line_deployment()
        plan = FaultPlan(outages=(OutageWindow(("nowhere",), 0.0, 1.0),))
        with pytest.raises(ValueError, match="nowhere"):
            plan.validate_against(deployment)
        FaultPlan(outages=(OutageWindow(("hub",), 0.0, 1.0),)).validate_against(
            deployment
        )

    def test_sensor_down_windows_maps_hosted_sensors(self):
        deployment = line_deployment()
        plan = FaultPlan(
            outages=(OutageWindow(("s_a", "s_b"), 10.0, 20.0),)
        )
        assert plan.sensor_down_windows(deployment) == (
            ("a", 10.0, 20.0),
            ("b", 10.0, 20.0),
        )

    def test_churn_and_outages_cannot_combine(self):
        """Their oracle fences would overlap on the same sensors — the
        program rejects the combination instead of mis-crediting."""
        with pytest.raises(ValueError, match="churn"):
            WorkloadProgram(
                subscriptions=SubscriptionWorkloadConfig(n_subscriptions=5),
                dynamic=DynamicReplayConfig(days=1),
                churn=ChurnConfig(cycle_fraction=0.3),
                faults=FaultPlan(
                    outages=(OutageWindow(("hub",), 10.0, 20.0),)
                ),
            )

    def test_oracle_outage_fence_only_removes_truth(self):
        deployment = line_deployment()
        replay = build_replay(deployment, ReplayConfig(rounds=6, seed=3))
        workload = generate_subscriptions(
            deployment,
            replay.medians,
            SubscriptionWorkloadConfig(
                n_subscriptions=5, attrs_min=2, attrs_max=3, seed=2
            ),
            spreads=replay.spreads,
        )
        subs = [p.subscription for p in workload]
        events = replay.shifted(REPLAY_START)
        span = events[-1].timestamp - REPLAY_START
        fences = [("a", REPLAY_START + span * 0.25, REPLAY_START + span * 0.75)]
        fenced = compute_truth(subs, deployment, events, outages=fences)
        full = compute_truth(subs, deployment, events)
        for sub_id, truth in fenced.items():
            assert truth.triggers <= full[sub_id].triggers, sub_id
            assert truth.participants <= full[sub_id].participants, sub_id
        # The fence genuinely bites on this workload: sensor `a` events
        # inside the window exist, so some truth disappears.
        assert any(
            fenced[sub_id].triggers < full[sub_id].triggers for sub_id in full
        )


class TestSeededDeterminism:
    def test_same_plan_same_series(self):
        scenario = tiny_faults_scenario()
        approaches = {
            k: v for k, v in all_approaches().items() if k in ("naive", "fsf")
        }
        a = run_series(scenario, approaches, scale=0.1)
        b = run_series(scenario, approaches, scale=0.1)
        assert a.results == b.results
        # The plan genuinely bit: losses occurred and were metered.
        assert all(
            r.dropped_messages > 0 for runs in a.results.values() for r in runs
        )

    def test_different_fault_seed_changes_the_run(self):
        scenario = tiny_faults_scenario()
        reseeded = replace(
            scenario, faults=replace(scenario.faults, seed=1234)
        )
        approaches = {"naive": all_approaches()["naive"]}
        a = run_series(scenario, approaches, scale=0.1)
        b = run_series(reseeded, approaches, scale=0.1)
        assert a.results != b.results


class TestNullFaultBitIdentity:
    """``FaultPlan.none()`` must be indistinguishable from no plan."""

    @pytest.mark.parametrize("matching", ["incremental", "reference"])
    @pytest.mark.parametrize(
        "key", ["naive", "operator_placement", "multijoin", "fsf", "centralized"]
    )
    def test_none_plan_is_bit_identical(self, key, matching):
        scenario = tiny_faults_scenario(faults=None, reliability=None)
        deployment = scenario.deployment()
        base = scenario.program(8).with_prefix(8)
        source = base.source(deployment)
        compiled = base.compile(deployment, source)
        truths = compiled.truth()
        null_plan = replace(compiled, faults=FaultPlan.none())
        approach = all_approaches()[key]
        plain = run_program(approach, compiled, truths=truths, matching=matching)
        nulled = run_program(
            approach, null_plan, truths=truths, matching=matching
        )
        assert plain == nulled
        assert nulled.retransmission_load == 0
        assert nulled.refresh_load == 0
        assert nulled.dropped_messages == 0


class TestCrashRecover:
    def _network(self, reliability=None):
        deployment = line_deployment()
        network = Network(
            deployment, Simulator(seed=0), reliability=reliability
        )
        all_approaches()["naive"].populate(network)
        network.attach_all_sensors()
        network.run_to_quiescence()
        return network

    def test_crash_loses_volatile_state_and_gates_publish(self):
        network = self._network()
        node = network.nodes["s_b"]
        assert node.ads.get("a") is not None  # learned via the flood
        network.crash_node("s_b")
        assert "s_b" in network.down
        assert node.ads.get("a") is None
        assert node.ads.get("b") is None  # even its own advertisement
        # Readings die at a down host (what the oracle fences out).
        before = network.sim.processed_events
        from repro.model.events import SimpleEvent
        from repro.model.locations import Location

        network.publish(
            "s_b", SimpleEvent("b", "t", Location(1.0, 0.0), 1.0, 50.0, seq=9)
        )
        network.run_to_quiescence()
        assert network.sim.processed_events == before

    def test_crash_is_idempotent_and_validates(self):
        network = self._network()
        with pytest.raises(ValueError, match="unknown node"):
            network.crash_node("nowhere")
        network.crash_node("s_b")
        network.crash_node("s_b")  # no-op, no double bookkeeping
        assert network.down == {"s_b"}

    def test_recover_refloods_local_sensors(self):
        network = self._network()
        network.crash_node("s_b")
        network.recover_node("s_b")
        network.run_to_quiescence()
        node = network.nodes["s_b"]
        assert node.ads.get("b") is not None  # re-advertised
        assert network.nodes["hub"].ads.get("b") is not None
        # Remote state does NOT return on its own — that is the refresh
        # layer's job (see test_reliability).
        assert node.ads.get("a") is None

    def test_refresh_round_restores_remote_state_after_recovery(self):
        network = self._network(reliability=ReliabilityConfig())
        network.crash_node("s_b")
        network.recover_node("s_b")
        network.run_to_quiescence()
        network.schedule_refresh([(network.sim.now + 1.0, 1)])
        network.run_to_quiescence()
        node = network.nodes["s_b"]
        assert node.ads.get("a") is not None
        assert node.ads.get("c") is not None

    def test_refresh_requires_reliability(self):
        network = self._network()
        with pytest.raises(ValueError, match="reliability"):
            network.schedule_refresh([(100.0, 1)])


class TestLivelockDiagnosis:
    def test_budget_exhaustion_names_the_loop(self):
        network = Network(line_deployment(), Simulator(seed=0))
        all_approaches()["naive"].populate(network)
        network.attach_all_sensors()
        network.run_to_quiescence()

        def heartbeat():
            network.sim.schedule(1.0, heartbeat)

        network.sim.schedule(0.0, heartbeat)
        with pytest.raises(LivelockError, match="max_events=7") as exc_info:
            network.run_to_quiescence(max_events=7)
        error = exc_info.value
        assert "hottest pending actions" in str(error)
        assert "heartbeat" in str(error)
        assert error.pending_actions  # the structured diagnosis survives
        assert isinstance(error.busiest_links, list)
        # The ad flood left real traffic, so links are named with units.
        assert "units" in str(error)
